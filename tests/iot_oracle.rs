//! Oracle suite for the IoT/telemetry domain: hand-derived single-event
//! expectations, matcher-vs-reference agreement for every engine on
//! generated workloads, and pinned deterministic aggregate counts.

use std::sync::Arc;

use proptest::prelude::*;

use s_topss::core::{semantic_match, ClosureLimits};
use s_topss::prelude::*;
use s_topss::workload::iot::{generate_iot, IotDomain, IotWorkloadConfig};
use s_topss::workload::iot_fixture;

fn fixture(
    seed: u64,
    subs: usize,
    pubs: usize,
) -> (Interner, IotDomain, Vec<Subscription>, Vec<Event>) {
    let mut interner = Interner::new();
    let domain = IotDomain::build(&mut interner);
    let w = generate_iot(
        &domain,
        &IotWorkloadConfig { subscriptions: subs, publications: pubs, seed, ..Default::default() },
    );
    (interner, domain, w.subscriptions, w.publications)
}

fn matcher_for(config: Config, domain: &IotDomain, interner: &Interner) -> SToPSS {
    SToPSS::new(
        config,
        Arc::new(domain.ontology.clone()),
        SharedInterner::from_interner(interner.clone()),
    )
}

/// `(device, thermometer)` vs a subscription on the *general* term
/// `(sensor, environmental)`: the match needs synonym resolution (device
/// is an alias of sensor) AND a hierarchy walk (thermometer is-a
/// environmental) — each stage alone is not enough.
#[test]
fn alias_plus_shallow_hierarchy_match_derived_by_hand() {
    let mut interner = Interner::new();
    let domain = IotDomain::build(&mut interner);
    let environmental = interner.get("environmental").unwrap();
    let thermometer = interner.get("thermometer").unwrap();
    let sub = Subscription::new(SubId(1), vec![Predicate::eq(domain.attr_sensor, environmental)]);
    let event = Event::new().with(domain.attr_device, Value::Sym(thermometer));

    let count = |stages: StageMask| {
        let m = matcher_for(
            Config::default().with_stages(stages).with_provenance(false),
            &domain,
            &interner,
        );
        m.subscribe(sub.clone());
        m.publish(&event).len()
    };
    assert_eq!(count(StageMask::syntactic()), 0, "different attribute spelling + general term");
    assert_eq!(count(StageMask::SYNONYM), 0, "alias resolves but thermometer != environmental");
    assert_eq!(count(StageMask::HIERARCHY), 0, "hierarchy alone cannot bridge the alias");
    assert_eq!(count(StageMask::SYNONYM.with(StageMask::HIERARCHY)), 1, "both stages together");
}

/// `(temp_f, 86)` satisfies `(temperature, >=, 30)` only through the
/// Fahrenheit→Celsius mapping: (86 − 32) × 5 / 9 = 30, integer math.
#[test]
fn fahrenheit_mapping_match_derived_by_hand() {
    let mut interner = Interner::new();
    let domain = IotDomain::build(&mut interner);
    let sub = Subscription::new(
        SubId(1),
        vec![Predicate::new(domain.attr_temperature, Operator::Ge, Value::Int(30))],
    );
    let m = matcher_for(Config::default(), &domain, &interner);
    m.subscribe(sub);

    let at = |f: i64| m.publish(&Event::new().with(domain.attr_temp_f, Value::Int(f))).len();
    assert_eq!(at(86), 1, "30 °C exactly meets the bound");
    assert_eq!(at(85), 0, "29 °C (integer division) misses it");
    let matches = m.publish(&Event::new().with(domain.attr_temp_f, Value::Int(104)));
    assert_eq!(matches.len(), 1, "40 °C");
    assert_eq!(matches[0].origin, MatchOrigin::Mapping, "provenance names the mapping stage");
}

/// The low-battery mapping turns a numeric reading into a status term a
/// subscription can equality-match.
#[test]
fn low_battery_alert_derived_by_hand() {
    let mut interner = Interner::new();
    let domain = IotDomain::build(&mut interner);
    let sub = Subscription::new(
        SubId(1),
        vec![Predicate::eq(domain.attr_status, domain.term_low_battery)],
    );
    let m = matcher_for(Config::default(), &domain, &interner);
    m.subscribe(sub);
    let at = |pct: i64| m.publish(&Event::new().with(domain.attr_battery, Value::Int(pct))).len();
    assert_eq!(at(20), 1, "boundary fires");
    assert_eq!(at(21), 0, "just above does not");
}

/// Pinned aggregate counts for the default IoT fixture. These are the
/// domain's goldens: any change to the generator, the `.sto` source, or
/// the matcher semantics shows up here first.
#[test]
fn default_fixture_counts_are_pinned() {
    let f = iot_fixture(200, 2_000, 2003);
    let count = |config: Config| {
        let m = f.matcher(config.with_provenance(false));
        f.publications.iter().map(|e| m.publish(e).len()).sum::<usize>()
    };
    let semantic = count(Config::default());
    let syntactic = count(Config::syntactic());
    assert_eq!(semantic, 76_360);
    assert_eq!(syntactic, 13_295);
    assert!(semantic > syntactic * 3, "IoT aliasing/mappings dominate raw matches");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Generated IoT workloads: matcher == reference oracle for every
    /// engine kind.
    #[test]
    fn iot_matcher_agrees_with_oracle(seed in 0u64..1_000) {
        let (interner, domain, subs, events) = fixture(seed, 30, 25);
        let source = Arc::new(domain.ontology);
        let limits = ClosureLimits::default();
        let tolerance = Tolerance::full();

        for engine in EngineKind::ALL {
            let config = Config { engine, track_provenance: false, ..Config::default() };
            let matcher = SToPSS::new(
                config,
                source.clone(),
                SharedInterner::from_interner(interner.clone()),
            );
            for sub in &subs {
                matcher.subscribe(sub.clone());
            }
            for event in &events {
                let mut got: Vec<SubId> = matcher.publish(event).iter().map(|m| m.sub).collect();
                got.sort_unstable();
                let mut want: Vec<SubId> = subs
                    .iter()
                    .filter(|s| {
                        semantic_match(s, event, source.as_ref(), &tolerance, 2003, &interner, &limits)
                    })
                    .map(|s| s.id())
                    .collect();
                want.sort_unstable();
                prop_assert_eq!(&got, &want, "engine {} diverged on seed {}", engine.name(), seed);
            }
        }
    }
}
