//! Churn differential: a live matcher fed an interleaved
//! subscribe/unsubscribe/publish stream must produce, at every publish,
//! exactly the match set of a fresh matcher built from the then-live
//! subscription set — across all four domains, both churn modes, and the
//! single-threaded and sharded backends. Divergence means unsubscribe
//! residue or lost subscriptions.

use s_topss::prelude::*;
use s_topss::workload::{
    churn_scenario, geo_fixture, iot_fixture, jobfinder_fixture, market_fixture,
    replay_interleaved, replay_interleaved_sharded, replay_sequential, ChurnMode, ChurnOp, Fixture,
};

fn domains() -> Vec<(&'static str, Fixture)> {
    vec![
        ("jobfinder", jobfinder_fixture(30, 20, 11)),
        ("iot", iot_fixture(30, 20, 11)),
        ("market", market_fixture(30, 20, 11)),
        ("geo", geo_fixture(30, 20, 11)),
    ]
}

/// The tentpole differential: interleaved ≡ sequential, every domain ×
/// every churn mode, single-threaded backend.
#[test]
fn interleaved_replay_equals_sequential_everywhere() {
    for (name, fixture) in domains() {
        for mode in [ChurnMode::UnsubscribeHeavy, ChurnMode::FlashCrowd] {
            let scenario = churn_scenario(&fixture, mode, 150, 42);
            assert!(scenario.publishes > 0, "{name}/{mode:?}: stream has publishes");
            let config = Config::default();
            let interleaved = replay_interleaved(&fixture, &scenario, config);
            let sequential = replay_sequential(&fixture, &scenario, config);
            assert_eq!(
                interleaved, sequential,
                "{name}/{mode:?}: live matcher diverged from the rebuilt oracle"
            );
        }
    }
}

/// The same differential over the sharded backend (4 shards): churn must
/// not interact with shard-local subscription tables.
#[test]
fn sharded_interleaved_replay_equals_sequential() {
    for (name, fixture) in domains() {
        for mode in [ChurnMode::UnsubscribeHeavy, ChurnMode::FlashCrowd] {
            let scenario = churn_scenario(&fixture, mode, 150, 42);
            let sequential = replay_sequential(&fixture, &scenario, Config::default());
            let sharded =
                replay_interleaved_sharded(&fixture, &scenario, Config::default().with_shards(4));
            assert_eq!(sharded, sequential, "{name}/{mode:?}: sharded backend diverged");
        }
    }
}

/// Flash-crowd streams really do spike: the live subscription count
/// during the stream reaches several times the post-exodus level, and
/// unsubscribe-heavy streams are dominated by table mutations.
#[test]
fn churn_modes_have_their_advertised_shape() {
    let fixture = jobfinder_fixture(30, 20, 11);
    let crowd = churn_scenario(&fixture, ChurnMode::FlashCrowd, 200, 7);
    let mut live = 0i64;
    let mut peak = 0i64;
    for op in &crowd.ops {
        match op {
            ChurnOp::Subscribe(_) => live += 1,
            ChurnOp::Unsubscribe(_) => live -= 1,
            ChurnOp::Publish(_) => {}
        }
        peak = peak.max(live);
    }
    assert!(live >= 0, "never unsubscribes a dead id");
    assert!(peak >= live * 2 && peak >= 5, "flash crowd spikes: peak {peak}, final {live}");

    let heavy = churn_scenario(&fixture, ChurnMode::UnsubscribeHeavy, 200, 7);
    let unsubs = heavy.ops.iter().filter(|op| matches!(op, ChurnOp::Unsubscribe(_))).count();
    let publishes = heavy.ops.iter().filter(|op| matches!(op, ChurnOp::Publish(_))).count();
    assert!(unsubs > publishes, "unsubscribes ({unsubs}) dominate publishes ({publishes})");
}
