//! Churn differential: the control plane must leave no trace and tear no
//! snapshot.
//!
//! Single-threaded half: a live matcher fed an interleaved
//! subscribe/unsubscribe/ontology-swap/publish stream must produce, at
//! every publish, exactly the match set of a fresh matcher built from the
//! then-live subscription set under the then-current ontology — across
//! all four domains, both churn modes, and the single-threaded and
//! sharded backends. Divergence means unsubscribe residue, lost
//! subscriptions, or stale-ontology leakage.
//!
//! Concurrent half (the epoch-snapshot control-plane pin): the same
//! control streams run on a thread *racing* publisher threads against
//! one live matcher. Every publication is stamped with the control epoch
//! of the snapshot it matched against, so the racy execution linearizes;
//! the harness (see `stopss_workload::churn`) asserts each publication
//! byte-identical to a fresh oracle at its epoch, and that a sequential
//! replay of the linearized stream reproduces the live matcher's final
//! statistics exactly. At the broker layer, the same race must conserve
//! match accounting: every match is delivered, failed, or orphaned.

use std::sync::Arc;

use s_topss::prelude::*;
use s_topss::workload::{
    churn_scenario, geo_fixture, iot_fixture, jobfinder_fixture, market_fixture, replay_concurrent,
    replay_concurrent_sharded, replay_interleaved, replay_interleaved_sharded, replay_sequential,
    ChurnMode, ChurnOp, Fixture,
};

fn domains() -> Vec<(&'static str, Fixture)> {
    vec![
        ("jobfinder", jobfinder_fixture(30, 20, 11)),
        ("iot", iot_fixture(30, 20, 11)),
        ("market", market_fixture(30, 20, 11)),
        ("geo", geo_fixture(30, 20, 11)),
    ]
}

/// The single-threaded differential: interleaved ≡ sequential, every
/// domain × every churn mode (now including live ontology swaps),
/// single-threaded backend.
#[test]
fn interleaved_replay_equals_sequential_everywhere() {
    for (name, fixture) in domains() {
        for mode in [ChurnMode::UnsubscribeHeavy, ChurnMode::FlashCrowd] {
            let scenario = churn_scenario(&fixture, mode, 150, 42);
            assert!(scenario.publishes > 0, "{name}/{mode:?}: stream has publishes");
            let config = Config::default();
            let interleaved = replay_interleaved(&fixture, &scenario, config);
            let sequential = replay_sequential(&fixture, &scenario, config);
            assert_eq!(
                interleaved, sequential,
                "{name}/{mode:?}: live matcher diverged from the rebuilt oracle"
            );
        }
    }
}

/// The same differential over the sharded backend (4 shards): churn must
/// not interact with shard-local subscription tables.
#[test]
fn sharded_interleaved_replay_equals_sequential() {
    for (name, fixture) in domains() {
        for mode in [ChurnMode::UnsubscribeHeavy, ChurnMode::FlashCrowd] {
            let scenario = churn_scenario(&fixture, mode, 150, 42);
            let sequential = replay_sequential(&fixture, &scenario, Config::default());
            let sharded =
                replay_interleaved_sharded(&fixture, &scenario, Config::default().with_shards(4));
            assert_eq!(sharded, sequential, "{name}/{mode:?}: sharded backend diverged");
        }
    }
}

/// The tentpole differential: publisher threads racing the control
/// stream (subscribe/unsubscribe/ontology-edit) against one live
/// single-threaded matcher linearize — every concurrent publication is
/// byte-identical to the sequential oracle at its stamped epoch, and the
/// linearized replay reproduces the live stats exactly. Every domain ×
/// every churn mode.
#[test]
fn concurrent_interleavings_linearize_everywhere() {
    for (name, fixture) in domains() {
        for mode in [ChurnMode::UnsubscribeHeavy, ChurnMode::FlashCrowd] {
            let scenario = churn_scenario(&fixture, mode, 150, 42);
            let summary = replay_concurrent(&fixture, &scenario, Config::default(), 3);
            assert!(
                summary.publishes > 0 && summary.control_ops > 0,
                "{name}/{mode:?}: the race actually ran ({summary:?})"
            );
        }
    }
}

/// The concurrent differential over the sharded backend, shards {1, 4} ×
/// barrier (`parallelism = 1`) / pipelined (`parallelism = 4`, which
/// forces stage overlap and chunk-granular snapshot resolution on 4
/// shards). Covers the broker-shaped batch path: publisher threads feed
/// multi-chunk batches through `publish_batch_detailed` while control
/// ops swap snapshots underneath.
#[test]
fn concurrent_sharded_interleavings_linearize() {
    let fixture = jobfinder_fixture(30, 20, 11);
    for mode in [ChurnMode::UnsubscribeHeavy, ChurnMode::FlashCrowd] {
        let scenario = churn_scenario(&fixture, mode, 150, 42);
        for shards in [1usize, 4] {
            for parallelism in [1usize, 4] {
                let config = Config::default().with_shards(shards).with_parallelism(parallelism);
                let summary = replay_concurrent_sharded(&fixture, &scenario, config, 3);
                assert!(
                    summary.publishes > 0,
                    "{mode:?}/shards={shards}/par={parallelism}: ran ({summary:?})"
                );
            }
        }
    }
}

/// Broker-level conservation under concurrent churn: publishers race
/// subscription churn and an ontology edit; with a lossless transport,
/// every reported match must end up delivered or orphaned — an
/// undercount means the control plane lost a notification.
#[test]
fn broker_concurrent_churn_conserves_accounting() {
    for shards in [1usize, 4] {
        let fixture = jobfinder_fixture(12, 8, 11);
        let config = BrokerConfig {
            matcher: Config::default().with_shards(shards),
            udp_loss: 0.0,
            ..BrokerConfig::default()
        };
        let broker = Broker::new(config, fixture.source.clone(), fixture.interner.clone());
        let anchor = broker.register_client("anchor", TransportKind::Tcp);
        for sub in &fixture.subscriptions {
            broker.subscribe(anchor, sub.predicates().to_vec()).unwrap();
        }
        let scenario = churn_scenario(&fixture, ChurnMode::UnsubscribeHeavy, 100, 7);
        let broker = Arc::new(broker);

        let publishers: Vec<_> = (0..2)
            .map(|_| {
                let broker = broker.clone();
                let events = fixture.publications.clone();
                std::thread::spawn(move || {
                    let mut matches = 0usize;
                    for _ in 0..5 {
                        matches += broker.publish_batch(&events);
                    }
                    matches
                })
            })
            .collect();
        let churner = {
            let broker = broker.clone();
            let scenario = scenario.clone();
            std::thread::spawn(move || {
                let client = broker.register_client("churn", TransportKind::Tcp);
                let mut live: Vec<(SubId, SubId)> = Vec::new(); // (scenario id, broker id)
                for op in &scenario.ops {
                    match op {
                        ChurnOp::Subscribe(sub) => {
                            let id = broker.subscribe(client, sub.predicates().to_vec()).unwrap();
                            live.push((sub.id(), id));
                        }
                        ChurnOp::Unsubscribe(id) => {
                            let idx = live.iter().position(|(s, _)| s == id).expect("live id");
                            let (_, broker_id) = live.swap_remove(idx);
                            assert_eq!(broker.unsubscribe(client, broker_id), Ok(true));
                        }
                        ChurnOp::SetOntology(idx) => {
                            broker.set_ontology(scenario.ontologies[*idx].clone());
                        }
                        ChurnOp::Publish(_) => {}
                    }
                }
            })
        };

        let matches: usize = publishers.into_iter().map(|h| h.join().unwrap()).sum();
        churner.join().unwrap();
        let orphaned = broker.orphaned_matches();
        let broker = Arc::try_unwrap(broker).ok().expect("sole owner");
        let stats = broker.shutdown();
        assert_eq!(
            stats.total_delivered() + stats.total_failures() + orphaned,
            matches as u64,
            "shards={shards}: every match is delivered, failed, or orphaned"
        );
    }
}

/// Flash-crowd streams really do spike: the live subscription count
/// during the stream reaches several times the post-exodus level, and
/// unsubscribe-heavy streams are dominated by table mutations.
#[test]
fn churn_modes_have_their_advertised_shape() {
    let fixture = jobfinder_fixture(30, 20, 11);
    let crowd = churn_scenario(&fixture, ChurnMode::FlashCrowd, 200, 7);
    let mut live = 0i64;
    let mut peak = 0i64;
    for op in &crowd.ops {
        match op {
            ChurnOp::Subscribe(_) => live += 1,
            ChurnOp::Unsubscribe(_) => live -= 1,
            ChurnOp::Publish(_) | ChurnOp::SetOntology(_) => {}
        }
        peak = peak.max(live);
    }
    assert!(live >= 0, "never unsubscribes a dead id");
    assert!(peak >= live * 2 && peak >= 5, "flash crowd spikes: peak {peak}, final {live}");

    let heavy = churn_scenario(&fixture, ChurnMode::UnsubscribeHeavy, 200, 7);
    let unsubs = heavy.ops.iter().filter(|op| matches!(op, ChurnOp::Unsubscribe(_))).count();
    let publishes = heavy.ops.iter().filter(|op| matches!(op, ChurnOp::Publish(_))).count();
    assert!(unsubs > publishes, "unsubscribes ({unsubs}) dominate publishes ({publishes})");
}
