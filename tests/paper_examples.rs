//! Every worked example in the S-ToPSS paper, as executable assertions.
//!
//! Section references are to: Petrovic, Burcea, Jacobsen — "S-ToPSS:
//! Semantic Toronto Publish/Subscribe System", VLDB 2003.

use std::sync::Arc;

use s_topss::prelude::*;
use s_topss::workload::JOBFINDER_STO;

fn jobs_world() -> (Interner, Ontology) {
    let mut interner = Interner::new();
    let ontology = parse_ontology(JOBFINDER_STO, &mut interner).unwrap();
    (interner, ontology)
}

/// §1: S: (university = Toronto) ∧ (degree = PhD) ∧ (professional
/// experience ≥ 4) must match E: (school, Toronto)(degree, PhD)
/// (work experience, true)(graduation year, 1990).
#[test]
fn section_1_job_finder_example() {
    let (mut interner, ontology) = jobs_world();
    let sub = SubscriptionBuilder::new(&mut interner)
        .term_eq("university", "toronto")
        .term_eq("degree", "phd")
        .pred("professional experience", Operator::Ge, 4i64)
        .build(SubId(1));
    let event = EventBuilder::new(&mut interner)
        .term("school", "toronto")
        .term("degree", "phd")
        .pair("work experience", true)
        .pair("graduation year", 1990i64)
        .build();

    assert!(!sub.matches(&event, &interner), "no current pub/sub system matches this");

    let matcher =
        SToPSS::new(Config::default(), Arc::new(ontology), SharedInterner::from_interner(interner));
    matcher.subscribe(sub);
    let matches = matcher.publish(&event);
    assert_eq!(matches.len(), 1, "S-ToPSS must match the paper's flagship example");
    assert_eq!(matches[0].origin, MatchOrigin::Mapping);
}

/// §1: "if someone is interested in a 'car', the system will not return
/// notifications about 'vehicles' or 'automobiles'" — S-ToPSS fixes the
/// synonym half ('automobile') via the synonym stage and keeps the
/// 'vehicle' half correct under rule R2 (a general event must not match a
/// specific interest).
#[test]
fn section_1_car_vehicle_automobile() {
    let mut interner = Interner::new();
    let mut ontology = Ontology::new("motors");
    let car = interner.intern("car");
    let automobile = interner.intern("automobile");
    let vehicle = interner.intern("vehicle");
    ontology.synonyms.add_synonym(car, automobile, &interner).unwrap();
    ontology.taxonomy.add_isa(car, vehicle, &interner).unwrap();

    let sub = SubscriptionBuilder::new(&mut interner).term_eq("item", "car").build(SubId(1));
    let sub_general =
        SubscriptionBuilder::new(&mut interner).term_eq("item", "vehicle").build(SubId(2));
    let automobile_event = EventBuilder::new(&mut interner).term("item", "automobile").build();
    let vehicle_event = EventBuilder::new(&mut interner).term("item", "vehicle").build();
    let car_event = EventBuilder::new(&mut interner).term("item", "car").build();

    let matcher =
        SToPSS::new(Config::default(), Arc::new(ontology), SharedInterner::from_interner(interner));
    matcher.subscribe(sub);
    matcher.subscribe(sub_general);

    let matches = matcher.publish(&automobile_event);
    assert!(
        matches.iter().any(|m| m.sub == SubId(1) && m.origin == MatchOrigin::Synonym),
        "automobile is a synonym of car: {matches:?}"
    );

    let matches = matcher.publish(&vehicle_event);
    assert!(
        !matches.iter().any(|m| m.sub == SubId(1)),
        "rule R2: a 'vehicle' event is more general than the 'car' interest"
    );
    assert!(matches.iter().any(|m| m.sub == SubId(2)));

    let matches = matcher.publish(&car_event);
    assert!(
        matches.iter().any(
            |m| m.sub == SubId(2) && matches!(m.origin, MatchOrigin::Hierarchy { distance: 1 })
        ),
        "rule R1: a 'car' event matches the general 'vehicle' interest: {matches:?}"
    );
}

/// §1: "if a company recruiter is interested in a 'mainframe developer',
/// the matching engine should return … any resumes that mention 'COBOL
/// programming' and years '1960-1980'."
#[test]
fn section_1_mainframe_developer_inference() {
    let (mut interner, ontology) = jobs_world();
    let sub = SubscriptionBuilder::new(&mut interner)
        .term_eq("position", "mainframe_developer")
        .build(SubId(1));
    let cobol_resume = EventBuilder::new(&mut interner)
        .term("skill", "cobol")
        .pair("first programming year", 1972i64)
        .build();
    let young_cobol_resume = EventBuilder::new(&mut interner)
        .term("skill", "cobol")
        .pair("first programming year", 1999i64)
        .build();

    let matcher =
        SToPSS::new(Config::default(), Arc::new(ontology), SharedInterner::from_interner(interner));
    matcher.subscribe(sub);

    let matches = matcher.publish(&cobol_resume);
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].origin, MatchOrigin::Mapping);

    assert!(
        matcher.publish(&young_cobol_resume).is_empty(),
        "COBOL outside 1960-1980 is not mainframe-era evidence"
    );
}

/// §3.1, synonym stage: S: (university = Toronto) ∧ (professional
/// experience ≥ 4) matches E: (school, Toronto)(professional experience, 5).
#[test]
fn section_3_1_synonym_stage() {
    let (mut interner, ontology) = jobs_world();
    let sub = SubscriptionBuilder::new(&mut interner)
        .term_eq("university", "toronto")
        .pred("professional experience", Operator::Ge, 4i64)
        .build(SubId(1));
    let event = EventBuilder::new(&mut interner)
        .term("school", "toronto")
        .pair("professional experience", 5i64)
        .build();

    let matcher =
        SToPSS::new(Config::default(), Arc::new(ontology), SharedInterner::from_interner(interner));
    matcher.subscribe(sub);
    let matches = matcher.publish(&event);
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].origin, MatchOrigin::Synonym);
}

/// §3.1, mapping stage: E carries (graduation year, 1993) and two jobs;
/// professional experience = present date − graduation year = 10 ≥ 4.
#[test]
fn section_3_1_mapping_stage() {
    let (mut interner, ontology) = jobs_world();
    let sub = SubscriptionBuilder::new(&mut interner)
        .term_eq("university", "toronto")
        .pred("professional experience", Operator::Ge, 4i64)
        .build(SubId(1));
    let event = EventBuilder::new(&mut interner)
        .term("school", "toronto")
        .pair("graduation year", 1993i64)
        .term("job1", "ibm")
        .term("period1", "1994-1997")
        .term("job2", "microsoft")
        .term("period2", "1999-present")
        .build();

    // The paper evaluates "present date − graduation year" at demo time
    // (2003): 10 years of experience.
    let config = Config { now_year: 2003, ..Config::default() };
    let matcher = SToPSS::new(config, Arc::new(ontology), SharedInterner::from_interner(interner));
    matcher.subscribe(sub);
    let matches = matcher.publish(&event);
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].origin, MatchOrigin::Mapping);
}

/// §3.2, entry-level recruiter: bounded generality — "some experience
/// with Java, but not … Java experts". With the skill taxonomy
/// `java -> jvm_programming -> programming`, a subscriber for
/// `jvm_programming` with distance 1 accepts java candidates but a
/// subscriber for the *top-level* `skill` with distance 1 does not see
/// leaf publications.
#[test]
fn section_3_2_bounded_generality() {
    let (mut interner, ontology) = jobs_world();
    let jvm_sub =
        SubscriptionBuilder::new(&mut interner).term_eq("skill", "jvm_programming").build(SubId(1));
    let top_sub = SubscriptionBuilder::new(&mut interner).term_eq("skill", "skill").build(SubId(2));
    let java_resume = EventBuilder::new(&mut interner).term("skill", "java").build();

    let matcher =
        SToPSS::new(Config::default(), Arc::new(ontology), SharedInterner::from_interner(interner));
    matcher.subscribe_with_tolerance(jvm_sub, Tolerance::bounded(1));
    matcher.subscribe_with_tolerance(top_sub, Tolerance::bounded(1));

    let matches = matcher.publish(&java_resume);
    assert!(matches.iter().any(|m| m.sub == SubId(1)), "java is one level below jvm_programming");
    assert!(
        !matches.iter().any(|m| m.sub == SubId(2)),
        "java is three levels below 'skill'; a distance-1 tolerance excludes it"
    );
}

/// §3.2: "the inclusion of any of the three stages improves semantic
/// matching" — each stage alone adds matches the others cannot.
#[test]
fn section_3_2_stages_are_independent() {
    let (mut interner, ontology) = jobs_world();
    let synonym_sub =
        SubscriptionBuilder::new(&mut interner).term_eq("university", "uoft").build(SubId(1));
    let hierarchy_sub =
        SubscriptionBuilder::new(&mut interner).term_eq("skill", "programming").build(SubId(2));
    let mapping_sub = SubscriptionBuilder::new(&mut interner)
        .pred("professional experience", Operator::Ge, 4i64)
        .build(SubId(3));

    let synonym_event = EventBuilder::new(&mut interner).term("school", "uoft").build();
    let hierarchy_event = EventBuilder::new(&mut interner).term("skill", "rust").build();
    let mapping_event = EventBuilder::new(&mut interner).pair("graduation year", 1990i64).build();

    let shared = SharedInterner::from_interner(interner);
    let source = Arc::new(ontology);
    let run = |stages: StageMask| -> Vec<(u64, bool)> {
        let config = Config { stages, ..Config::default() };
        let matcher = SToPSS::new(config, source.clone(), shared.clone());
        matcher.subscribe(synonym_sub.clone());
        matcher.subscribe(hierarchy_sub.clone());
        matcher.subscribe(mapping_sub.clone());
        [(1u64, &synonym_event), (2, &hierarchy_event), (3, &mapping_event)]
            .into_iter()
            .map(|(id, event)| (id, matcher.publish(event).iter().any(|m| m.sub == SubId(id))))
            .collect()
    };

    assert_eq!(run(StageMask::syntactic()), vec![(1, false), (2, false), (3, false)]);
    assert_eq!(run(StageMask::SYNONYM), vec![(1, true), (2, false), (3, false)]);
    assert_eq!(run(StageMask::HIERARCHY), vec![(1, false), (2, true), (3, false)]);
    assert_eq!(run(StageMask::MAPPING), vec![(1, false), (2, false), (3, true)]);
    assert_eq!(run(StageMask::all()), vec![(1, true), (2, true), (3, true)]);
}
