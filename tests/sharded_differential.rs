//! Differential suite: the sharded matcher is observably identical to the
//! single-threaded matcher.
//!
//! `ShardedSToPSS` promises byte-identical results — match sets,
//! provenance, ordering, and aggregated `MatcherStats` — for every shard
//! count, because shards partition subscriptions while the
//! engine-independent event-side work runs once in the shared semantic
//! front-end (see `stopss_core::sharded` and `stopss_core::frontend`
//! module docs; `crates/core/tests/frontend_differential.rs` pins the
//! hoisted artifact against per-shard recomputation directly). This suite
//! pins the end-to-end promise on generated workloads (the realistic
//! job-finder domain and a synthetic taxonomy domain), swept across every
//! syntactic engine × every strategy × representative stage masks × shard
//! counts {1, 2, 8}, with per-subscription tolerances in the mix, plus
//! determinism regressions (repeat publication, batch vs per-event
//! feeding, and one golden match-set).

use s_topss::core::{Config, Match, SToPSS, ShardedSToPSS, StageMask, Strategy, Tolerance};
use s_topss::matching::EngineKind;
use s_topss::workload::{
    jobfinder_fixture, synthetic_fixture, Fixture, SyntheticConfig, SyntheticWorkload,
};

/// Stage masks exercising every stage alone and in combination with the
/// stage-interleaving cases (hierarchy ⇄ mapping) that stress the closure.
fn representative_masks() -> [StageMask; 5] {
    [
        StageMask::syntactic(),
        StageMask::SYNONYM,
        StageMask::SYNONYM.with(StageMask::HIERARCHY),
        StageMask::HIERARCHY.with(StageMask::MAPPING),
        StageMask::all(),
    ]
}

/// Tolerances assigned round-robin so shards hold a mix of verify-needing
/// and default-tolerance subscriptions.
fn tolerance_for(k: usize) -> Option<Tolerance> {
    match k % 5 {
        3 => Some(Tolerance::bounded(1)),
        4 => Some(Tolerance::syntactic()),
        _ => None,
    }
}

fn subscribe_single(fixture: &Fixture, matcher: &SToPSS) {
    for (k, sub) in fixture.subscriptions.iter().enumerate() {
        match tolerance_for(k) {
            Some(t) => matcher.subscribe_with_tolerance(sub.clone(), t),
            None => matcher.subscribe(sub.clone()),
        };
    }
}

fn subscribe_sharded(fixture: &Fixture, matcher: &ShardedSToPSS) {
    for (k, sub) in fixture.subscriptions.iter().enumerate() {
        match tolerance_for(k) {
            Some(t) => matcher.subscribe_with_tolerance(sub.clone(), t),
            None => matcher.subscribe(sub.clone()),
        };
    }
}

/// Publishes the whole fixture through both matchers and asserts exact
/// agreement on matches + provenance per event and on aggregated stats.
fn assert_differential(fixture: &Fixture, config: Config, label: &str) {
    let single = SToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
    let sharded = ShardedSToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
    subscribe_single(fixture, &single);
    subscribe_sharded(fixture, &sharded);
    assert_eq!(single.len(), sharded.len(), "{label}: subscription counts");
    for (k, event) in fixture.publications.iter().enumerate() {
        let want = single.publish(event);
        let got = sharded.publish(event);
        assert_eq!(got, want, "{label}: event #{k} diverged");
    }
    assert_eq!(sharded.stats(), single.stats(), "{label}: aggregated stats diverged");
}

/// Sweeps engines × strategies × masks × shard counts. The
/// single-threaded reference is computed once per configuration and
/// reused against every shard count.
fn sweep(fixture: &Fixture, masks: &[StageMask], shard_counts: &[usize]) {
    for engine in EngineKind::ALL {
        for strategy in Strategy::ALL {
            for &stages in masks {
                let config = Config::default()
                    .with_engine(engine)
                    .with_strategy(strategy)
                    .with_stages(stages);
                let single = SToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
                subscribe_single(fixture, &single);
                let want: Vec<Vec<Match>> =
                    fixture.publications.iter().map(|e| single.publish(e)).collect();
                for &shards in shard_counts {
                    let label = format!(
                        "engine={} strategy={} stages={:?} shards={}",
                        engine.name(),
                        strategy.name(),
                        stages,
                        shards
                    );
                    let sharded = ShardedSToPSS::new(
                        config.with_shards(shards),
                        fixture.source.clone(),
                        fixture.interner.clone(),
                    );
                    subscribe_sharded(fixture, &sharded);
                    let got = sharded.publish_batch(&fixture.publications);
                    assert_eq!(got, want, "{label}: match sets diverged");
                    assert_eq!(
                        sharded.stats(),
                        single.stats(),
                        "{label}: aggregated stats diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn jobfinder_sharded_equals_single_across_engines_strategies_masks() {
    let fixture = jobfinder_fixture(100, 24, 42);
    sweep(&fixture, &representative_masks(), &[1, 2, 8]);
}

#[test]
fn synthetic_sharded_equals_single_across_engines_strategies_masks() {
    let shape = SyntheticConfig { attrs: 3, depth: 3, fanout: 2, ..Default::default() };
    let workload = SyntheticWorkload {
        subscriptions: 80,
        publications: 16,
        general_term_bias: 0.7,
        seed: 7,
        ..Default::default()
    };
    let fixture = synthetic_fixture(&shape, &workload);
    sweep(&fixture, &representative_masks(), &[1, 2, 8]);
}

#[test]
fn constrained_parallelism_is_equivalent_too() {
    let fixture = jobfinder_fixture(80, 20, 11);
    for parallelism in [1usize, 2, 5] {
        let config = Config::default().with_shards(8).with_parallelism(parallelism);
        assert_differential(&fixture, config, &format!("parallelism={parallelism}"));
    }
}

/// Pipelined-vs-barrier equivalence across engines × strategies × stage
/// masks: `publish_batch` now overlaps stage 1 of chunk k+1 with stage 2
/// of chunk k, and must stay byte-identical — matches, provenance,
/// ordering, aggregated stats — to both the explicit two-stage barrier
/// (`frontend().prepare_batch()` + `publish_prepared_batch()`) and the
/// single-threaded matcher. The batch spans several pipeline chunks so
/// the overlap actually engages.
#[test]
fn pipelined_equals_barrier_across_engines_strategies_masks() {
    let fixture = jobfinder_fixture(100, 72, 42);
    for engine in EngineKind::ALL {
        for strategy in Strategy::ALL {
            for stages in representative_masks() {
                // Explicit parallelism forces the stage overlap even on
                // single-core hosts (`Config::pipeline_overlap`).
                let config = Config::default()
                    .with_engine(engine)
                    .with_strategy(strategy)
                    .with_stages(stages)
                    .with_shards(4)
                    .with_parallelism(2);
                let label = format!(
                    "engine={} strategy={} stages={stages:?}",
                    engine.name(),
                    strategy.name()
                );
                let single = SToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
                subscribe_single(&fixture, &single);
                let want: Vec<Vec<Match>> =
                    fixture.publications.iter().map(|e| single.publish(e)).collect();

                let barrier =
                    ShardedSToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
                subscribe_sharded(&fixture, &barrier);
                let prepared = barrier.frontend().prepare_batch(&fixture.publications);
                let from_barrier: Vec<Vec<Match>> = barrier
                    .publish_prepared_batch(&prepared)
                    .into_iter()
                    .map(|r| r.matches)
                    .collect();

                let pipelined =
                    ShardedSToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
                subscribe_sharded(&fixture, &pipelined);
                let from_pipeline = pipelined.publish_batch(&fixture.publications);

                assert_eq!(from_barrier, want, "{label}: barrier vs single");
                assert_eq!(from_pipeline, want, "{label}: pipelined vs single");
                assert_eq!(barrier.stats(), single.stats(), "{label}: barrier stats");
                assert_eq!(pipelined.stats(), single.stats(), "{label}: pipelined stats");
            }
        }
    }
}

/// The pipeline under a constrained worker budget (including the
/// budget-1 case, where `publish_batch` must fall back to the barrier)
/// stays equivalent too.
#[test]
fn pipelined_constrained_parallelism_is_equivalent() {
    let fixture = jobfinder_fixture(80, 70, 11);
    let single = SToPSS::new(Config::default(), fixture.source.clone(), fixture.interner.clone());
    subscribe_single(&fixture, &single);
    let want: Vec<Vec<Match>> = fixture.publications.iter().map(|e| single.publish(e)).collect();
    for parallelism in [1usize, 2, 5] {
        let config = Config::default().with_shards(8).with_parallelism(parallelism);
        let sharded = ShardedSToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
        subscribe_sharded(&fixture, &sharded);
        let got = sharded.publish_batch(&fixture.publications);
        assert_eq!(got, want, "parallelism={parallelism}");
        assert_eq!(sharded.stats(), single.stats(), "parallelism={parallelism} stats");
    }
}

// ---------------------------------------------------------------------
// Determinism regressions.

#[test]
fn same_fixture_published_twice_yields_identical_ordered_results() {
    let fixture = jobfinder_fixture(120, 30, 9);
    let config = Config::default().with_shards(8);
    let run = || {
        let matcher = fixture.sharded_matcher(config);
        let sets: Vec<Vec<Match>> =
            fixture.publications.iter().map(|e| matcher.publish(e)).collect();
        (sets, matcher.stats())
    };
    let (first, first_stats) = run();
    let (second, second_stats) = run();
    assert_eq!(first, second, "thread scheduling must not leak into results");
    assert_eq!(first_stats, second_stats);
}

#[test]
fn publish_batch_equals_per_event_publish() {
    let fixture = jobfinder_fixture(120, 30, 9);
    let config = Config::default().with_shards(8);
    let per_event = fixture.sharded_matcher(config);
    let sequential: Vec<Vec<Match>> =
        fixture.publications.iter().map(|e| per_event.publish(e)).collect();
    for batch_size in [1usize, 7, 30] {
        let batched = fixture.sharded_matcher(config);
        let got = fixture.feed_batches(&batched, batch_size);
        assert_eq!(got, sequential, "batch_size={batch_size}");
        assert_eq!(batched.stats(), per_event.stats(), "batch_size={batch_size} stats");
    }
}

/// One pinned golden match-set: catches accidental nondeterminism (or a
/// silent semantics change) that the self-comparing tests above could
/// miss if both runs drifted together.
#[test]
fn golden_match_set_is_pinned() {
    let fixture = jobfinder_fixture(40, 10, 2003);
    let matcher = fixture.sharded_matcher(Config::default().with_shards(8));
    let got: Vec<Vec<u64>> = fixture
        .publications
        .iter()
        .map(|e| matcher.publish(e).iter().map(|m| m.sub.0).collect())
        .collect();
    let want: Vec<Vec<u64>> = vec![
        // Golden, recorded from the verified single-threaded behaviour of
        // the seed (jobfinder fixture: 40 subs, 10 pubs, seed 2003).
        vec![24, 35],
        vec![14, 24, 35],
        vec![16, 24, 29, 35, 37],
        vec![24, 26],
        vec![24, 33],
        vec![1, 18, 22, 24, 25, 33, 35, 39],
        vec![24, 26],
        vec![24, 34],
        vec![1, 6, 18, 24, 26, 33],
        vec![1, 6, 18, 22, 24, 25, 33, 39],
    ];
    assert_eq!(got, want, "golden match-set drifted");
    // The golden set must also be what the single-threaded matcher says.
    let single = fixture.matcher(Config::default());
    let single_ids: Vec<Vec<u64>> = fixture
        .publications
        .iter()
        .map(|e| single.publish(e).iter().map(|m| m.sub.0).collect())
        .collect();
    assert_eq!(got, single_ids);
}
