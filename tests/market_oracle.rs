//! Oracle suite for the market-data domain: hand-derived single-event
//! expectations (including the chained block-trade classifier),
//! per-subscriber tolerance behaviour, engine-vs-reference agreement on
//! generated workloads, and pinned deterministic aggregate counts.

use std::sync::Arc;

use proptest::prelude::*;

use s_topss::core::{semantic_match, ClosureLimits};
use s_topss::prelude::*;
use s_topss::workload::market::{generate_market, MarketDomain, MarketWorkloadConfig};
use s_topss::workload::market_fixture;

fn fixture(
    seed: u64,
    subs: usize,
    pubs: usize,
) -> (Interner, MarketDomain, Vec<Subscription>, Vec<Event>) {
    let mut interner = Interner::new();
    let domain = MarketDomain::build(&mut interner);
    let w = generate_market(
        &domain,
        &MarketWorkloadConfig {
            subscriptions: subs,
            publications: pubs,
            seed,
            ..Default::default()
        },
    );
    (interner, domain, w.subscriptions, w.publications)
}

fn matcher_for(config: Config, domain: &MarketDomain, interner: &Interner) -> SToPSS {
    SToPSS::new(
        config,
        Arc::new(domain.ontology.clone()),
        SharedInterner::from_interner(interner.clone()),
    )
}

/// A trade of price 2 000 × volume 600 has notional 1 200 000, so the
/// two-link chain notional_value → block_trade_flag classifies it as a
/// block trade — derivable only transitively (the raw event carries
/// neither `notional` nor `trade_class`).
#[test]
fn chained_block_trade_classification_derived_by_hand() {
    let mut interner = Interner::new();
    let domain = MarketDomain::build(&mut interner);
    let sub = Subscription::new(
        SubId(1),
        vec![Predicate::eq(domain.attr_trade_class, domain.term_block_trade)],
    );
    let m = matcher_for(Config::default(), &domain, &interner);
    m.subscribe(sub);

    let trade = |price: i64, volume: i64| {
        Event::new()
            .with(domain.attr_price, Value::Int(price))
            .with(domain.attr_volume, Value::Int(volume))
    };
    let matches = m.publish(&trade(2_000, 600));
    assert_eq!(matches.len(), 1, "1.2M notional is a block trade");
    assert_eq!(matches[0].origin, MatchOrigin::Mapping);
    assert_eq!(m.publish(&trade(2_000, 400)).len(), 0, "0.8M notional is not");
    assert_eq!(m.publish(&trade(1_000, 1_000)).len(), 1, "exactly 1.0M is (>= bound)");
}

/// `(last, 750)` satisfies `(price, >=, 500)` through synonym
/// resolution of the alias attribute; a sector subscription on the
/// general `technology` matches the leaf `software` via the hierarchy.
#[test]
fn alias_and_sector_hierarchy_derived_by_hand() {
    let mut interner = Interner::new();
    let domain = MarketDomain::build(&mut interner);
    let technology = interner.get("technology").unwrap();
    let software = interner.get("software").unwrap();
    let price_sub = Subscription::new(
        SubId(1),
        vec![Predicate::new(domain.attr_price, Operator::Ge, Value::Int(500))],
    );
    let sector_sub =
        Subscription::new(SubId(2), vec![Predicate::eq(domain.attr_sector, technology)]);
    let m = matcher_for(Config::default(), &domain, &interner);
    m.subscribe(price_sub);
    m.subscribe(sector_sub);

    let event = Event::new()
        .with(domain.attr_last, Value::Int(750))
        .with(domain.attr_sector, Value::Sym(software));
    let mut subs: Vec<SubId> = m.publish(&event).iter().map(|m| m.sub).collect();
    subs.sort_unstable();
    assert_eq!(subs, vec![SubId(1), SubId(2)]);

    let cheap = Event::new().with(domain.attr_last, Value::Int(400));
    assert_eq!(m.publish(&cheap).len(), 0, "alias resolves but the bound still applies");
}

/// Per-subscriber tolerance: a syntactic-tolerance subscriber never sees
/// alias or derived matches even while a full-tolerance subscriber on
/// the same predicates does.
#[test]
fn subscriber_tolerance_gates_semantic_matches() {
    let mut interner = Interner::new();
    let domain = MarketDomain::build(&mut interner);
    let preds = vec![Predicate::new(domain.attr_price, Operator::Ge, Value::Int(500))];
    let m = matcher_for(Config::default(), &domain, &interner);
    m.subscribe_with_tolerance(Subscription::new(SubId(1), preds.clone()), Tolerance::syntactic());
    m.subscribe_with_tolerance(Subscription::new(SubId(2), preds.clone()), Tolerance::full());

    let aliased = Event::new().with(domain.attr_last, Value::Int(750));
    let got: Vec<SubId> = m.publish(&aliased).iter().map(|m| m.sub).collect();
    assert_eq!(got, vec![SubId(2)], "only the tolerant subscriber sees the alias");

    let direct = Event::new().with(domain.attr_price, Value::Int(750));
    let mut got: Vec<SubId> = m.publish(&direct).iter().map(|m| m.sub).collect();
    got.sort_unstable();
    assert_eq!(got, vec![SubId(1), SubId(2)], "syntactic spelling reaches both");
}

/// Pinned aggregate counts for the default market fixture, plus the Zipf
/// hot-key property: the hottest ticker draws an outsized match share.
#[test]
fn default_fixture_counts_are_pinned() {
    let f = market_fixture(500, 1_000, 2003);
    let count = |config: Config| {
        let m = f.matcher(config.with_provenance(false));
        f.publications.iter().map(|e| m.publish(e).len()).sum::<usize>()
    };
    let semantic = count(Config::default());
    let syntactic = count(Config::syntactic());
    assert_eq!(semantic, 128_994);
    assert_eq!(syntactic, 40_341);
    assert!(semantic > syntactic, "aliases + derived attributes add matches");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Generated market workloads: matcher == reference oracle for every
    /// engine kind.
    #[test]
    fn market_matcher_agrees_with_oracle(seed in 0u64..1_000) {
        let (interner, domain, subs, events) = fixture(seed, 30, 25);
        let source = Arc::new(domain.ontology);
        let limits = ClosureLimits::default();
        let tolerance = Tolerance::full();

        for engine in EngineKind::ALL {
            let config = Config { engine, track_provenance: false, ..Config::default() };
            let matcher = SToPSS::new(
                config,
                source.clone(),
                SharedInterner::from_interner(interner.clone()),
            );
            for sub in &subs {
                matcher.subscribe(sub.clone());
            }
            for event in &events {
                let mut got: Vec<SubId> = matcher.publish(event).iter().map(|m| m.sub).collect();
                got.sort_unstable();
                let mut want: Vec<SubId> = subs
                    .iter()
                    .filter(|s| {
                        semantic_match(s, event, source.as_ref(), &tolerance, 2003, &interner, &limits)
                    })
                    .map(|s| s.id())
                    .collect();
                want.sort_unstable();
                prop_assert_eq!(&got, &want, "engine {} diverged on seed {}", engine.name(), seed);
            }
        }
    }
}
