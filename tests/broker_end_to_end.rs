//! Figure 2 end to end: workload generator → demo server (wire protocol)
//! → S-ToPSS → notification engine → simulated transports.

use std::sync::Arc;

use s_topss::broker::{
    encode_client, subscription_to_wire, Broker, BrokerConfig, ClientMessage, DemoServer,
    ServerMessage, TransportKind, WireValue,
};
use s_topss::prelude::*;
use s_topss::workload::{generate_jobfinder, JobFinderDomain, WorkloadConfig};

fn build_server(udp_loss: f64) -> (DemoServer, Interner, JobFinderDomain) {
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut interner);
    let broker = Broker::new(
        BrokerConfig { udp_loss, ..Default::default() },
        Arc::new(domain.ontology.clone()),
        SharedInterner::from_interner(interner.clone()),
    );
    (DemoServer::new(broker), interner, domain)
}

/// Drives a full generated workload through the wire protocol and checks
/// conservation: every match becomes exactly one delivery attempt, and
/// every attempt is accounted for as delivered, lost, or rate-dropped.
#[test]
fn generated_workload_flows_end_to_end() {
    let (server, interner, domain) = build_server(0.1);
    let workload = generate_jobfinder(
        &domain,
        &WorkloadConfig { subscriptions: 150, publications: 300, seed: 7, ..Default::default() },
    );

    // Register one company per transport kind, round-robin subscriptions.
    let mut companies = Vec::new();
    for (k, kind) in TransportKind::ALL.iter().enumerate() {
        match server.handle(ClientMessage::Register { name: format!("co{k}"), transport: *kind }) {
            ServerMessage::Registered { client } => companies.push(client),
            other => panic!("unexpected: {other:?}"),
        }
    }
    for (k, sub) in workload.subscriptions.iter().enumerate() {
        let reply = server.handle(ClientMessage::Subscribe {
            client: companies[k % companies.len()],
            predicates: subscription_to_wire(sub, &interner),
        });
        assert!(matches!(reply, ServerMessage::Subscribed { .. }));
    }
    assert_eq!(server.broker().subscription_count(), 150);

    // Publish through encoded frames, as the web front-end would.
    let publisher = match server.handle(ClientMessage::Register {
        name: "candidates".into(),
        transport: TransportKind::Tcp,
    }) {
        ServerMessage::Registered { client } => client,
        other => panic!("unexpected: {other:?}"),
    };
    let mut total_matches = 0u64;
    for event in &workload.publications {
        let pairs = event
            .pairs()
            .iter()
            .map(|(attr, value)| {
                (interner.resolve(*attr).to_owned(), WireValue::from_value(value, &interner))
            })
            .collect();
        let mut buf = bytes::BytesMut::new();
        encode_client(&ClientMessage::Publish { client: publisher, pairs }, &mut buf);
        match server.handle_frame(buf.freeze()) {
            ServerMessage::Published { matches } => total_matches += matches as u64,
            other => panic!("unexpected: {other:?}"),
        }
    }
    assert!(total_matches > 0, "a realistic workload must produce matches");

    let stats = server.shutdown();
    assert_eq!(
        stats.total_attempted(),
        total_matches,
        "every match yields exactly one delivery attempt"
    );
    for kind in TransportKind::ALL {
        let t = stats.get(kind);
        assert_eq!(
            t.attempted,
            t.delivered + t.lost + t.rate_dropped,
            "{}: attempts must be fully accounted",
            kind.name()
        );
    }
    let udp = stats.get(TransportKind::Udp);
    assert!(udp.lost > 0, "10% UDP loss must show up on a workload this size");
    let tcp = stats.get(TransportKind::Tcp);
    assert_eq!(tcp.lost, 0, "TCP never loses");
}

/// The demo's semantic/syntactic switch: identical inputs, strictly more
/// matches in semantic mode, and the delta is attributable to semantics.
#[test]
fn semantic_mode_dominates_syntactic_mode() {
    let (server, interner, domain) = build_server(0.0);
    let workload = generate_jobfinder(
        &domain,
        &WorkloadConfig { subscriptions: 100, publications: 150, seed: 21, ..Default::default() },
    );

    let company = match server
        .handle(ClientMessage::Register { name: "co".into(), transport: TransportKind::Tcp })
    {
        ServerMessage::Registered { client } => client,
        other => panic!("unexpected: {other:?}"),
    };
    for sub in &workload.subscriptions {
        server.handle(ClientMessage::Subscribe {
            client: company,
            predicates: subscription_to_wire(sub, &interner),
        });
    }

    let run = |semantic: bool| -> u64 {
        server.handle(ClientMessage::SetMode { semantic });
        let mut total = 0u64;
        for event in &workload.publications {
            let pairs = event
                .pairs()
                .iter()
                .map(|(attr, value)| {
                    (interner.resolve(*attr).to_owned(), WireValue::from_value(value, &interner))
                })
                .collect();
            match server.handle(ClientMessage::Publish { client: company, pairs }) {
                ServerMessage::Published { matches } => total += matches as u64,
                other => panic!("unexpected: {other:?}"),
            }
        }
        total
    };

    let semantic = run(true);
    let syntactic = run(false);
    let semantic_again = run(true);
    assert!(semantic > syntactic, "semantic ({semantic}) must exceed syntactic ({syntactic})");
    assert_eq!(semantic, semantic_again, "mode switching is lossless and repeatable");
    server.shutdown();
}

/// Per-client tolerances flow through the broker API.
#[test]
fn broker_tolerances_differentiate_subscribers() {
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut interner);
    let skill = interner.get("skill").unwrap();
    let programming = interner.get("programming").unwrap();
    let rust_term = interner.get("rust").unwrap();

    let broker = Broker::new(
        BrokerConfig::default(),
        Arc::new(domain.ontology),
        SharedInterner::from_interner(interner),
    );
    let eager = broker.register_client("eager", TransportKind::Tcp);
    let strict = broker.register_client("strict", TransportKind::Tcp);
    let preds = vec![Predicate::eq(skill, programming)];
    broker.subscribe(eager, preds.clone()).unwrap();
    broker.subscribe_with_tolerance(strict, preds, Some(Tolerance::bounded(1))).unwrap();

    // rust is two levels below programming: only the eager client matches.
    let event = Event::new().with(skill, Value::Sym(rust_term));
    assert_eq!(broker.publish(&event), 1);
    let inbox = broker.inbox(TransportKind::Tcp).unwrap();
    let stats = broker.shutdown();
    assert_eq!(stats.get(TransportKind::Tcp).delivered, 1);
    let messages = inbox.lock();
    assert!(messages[0].payload.contains("eager"), "{}", messages[0].payload);
}
