//! The session layer end to end: reconnect-with-resume over the raw
//! wire protocol, replay-buffer accounting at the TTL expiry boundary
//! and at the replay bound, live ontology edits over a connection, and
//! the session chaos tier — kills, partitions, heartbeat expiry and
//! front-end restarts — pinned differentially against a fault-free
//! in-process `Broker` run and checked for bit-identical reports per
//! seed.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use s_topss::broker::{
    run_session_chaos, BackpressurePolicy, Broker, BrokerConfig, ClientMessage, NetBroker,
    NetBrokerConfig, NetClient, ServerMessage, SessionChaosConfig, SessionConfig, TransportKind,
    WirePredicate, WireValue,
};
use s_topss::prelude::*;
use s_topss::workload::{generate_jobfinder, JobFinderDomain, WorkloadConfig};

fn net_broker(config: NetBrokerConfig) -> (NetBroker, Interner, JobFinderDomain) {
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut interner);
    let broker = NetBroker::new(
        config,
        Arc::new(domain.ontology.clone()),
        SharedInterner::from_interner(interner.clone()),
    )
    .expect("in-memory event loop always builds");
    (broker, interner, domain)
}

/// Runs turns until `client` has received `want` messages (panics past
/// the budget — session replies are always prompt).
fn recv(server: &mut NetBroker, client: &mut NetClient, want: usize) -> Vec<ServerMessage> {
    let mut out = Vec::new();
    for _ in 0..200 {
        server.turn(Some(Duration::from_millis(1))).unwrap();
        out.extend(client.poll_recv().unwrap());
        if out.len() >= want {
            return out;
        }
    }
    panic!("expected {want} messages, got {}: {out:?}", out.len());
}

/// Opens a fresh session on a raw connection and returns its token.
fn open_session(server: &mut NetBroker, client: &mut NetClient) -> u64 {
    client.send(&ClientMessage::Hello { session: 0, last_seen_seq: 0 }).unwrap();
    match recv(server, client, 1).remove(0) {
        ServerMessage::Welcome { session, resumed } => {
            assert!(!resumed, "a zero token must open a fresh session");
            assert_ne!(session, 0, "session tokens are nonzero");
            session
        }
        other => panic!("expected Welcome, got {other:?}"),
    }
}

fn register(
    server: &mut NetBroker,
    client: &mut NetClient,
    name: &str,
) -> s_topss::broker::ClientId {
    client
        .send(&ClientMessage::Register { name: name.into(), transport: TransportKind::Tcp })
        .unwrap();
    match recv(server, client, 1).remove(0) {
        ServerMessage::Registered { client } => client,
        other => panic!("expected Registered for {name}, got {other:?}"),
    }
}

/// Subscribes `id` to `skill = programming` and waits for the reply.
fn subscribe_skill(server: &mut NetBroker, client: &mut NetClient, id: s_topss::broker::ClientId) {
    client
        .send(&ClientMessage::Subscribe {
            client: id,
            predicates: vec![WirePredicate {
                attr: "skill".into(),
                op: Operator::Eq,
                value: WireValue::Term("programming".into()),
            }],
        })
        .unwrap();
    match recv(server, client, 1).remove(0) {
        ServerMessage::Subscribed { .. } => {}
        other => panic!("expected Subscribed, got {other:?}"),
    }
}

/// Publishes `n` events matching the `skill = programming` subscription
/// (each distinguishable by its leading `(seq, k)` pair) and waits for
/// the loop to settle after each one.
fn publish_matching(
    server: &mut NetBroker,
    publisher: &mut NetClient,
    id: s_topss::broker::ClientId,
    n: usize,
) {
    for k in 0..n {
        publisher
            .send(&ClientMessage::Publish {
                client: id,
                pairs: vec![
                    ("seq".into(), WireValue::Int(k as i64)),
                    ("skill".into(), WireValue::Term("programming".into())),
                ],
            })
            .unwrap();
        assert!(server.run_until_quiescent(2_000).unwrap(), "publish must settle");
        let _ = publisher.poll_recv().unwrap();
    }
}

/// The resume handshake over the raw protocol: a subscriber opens a
/// session, receives seq-stamped notifications, acknowledges only the
/// first, disconnects — and on reconnecting with `last_seen_seq = 1`
/// gets `Welcome{resumed}` followed by the two unacknowledged frames,
/// byte-identical and in seq order. The terminal buckets split exactly:
/// one frame acked fresh, two acked after replay.
#[test]
fn hello_opens_and_resumes_sessions_with_replay() {
    let (mut server, _interner, _domain) = net_broker(NetBrokerConfig::default());
    let mut sub = NetClient::connect(&server.connector()).unwrap();
    let session = open_session(&mut server, &mut sub);
    let id = register(&mut server, &mut sub, "resume-sub");
    subscribe_skill(&mut server, &mut sub, id);
    let mut publisher = NetClient::connect(&server.connector()).unwrap();
    let publisher_id = register(&mut server, &mut publisher, "resume-pub");

    publish_matching(&mut server, &mut publisher, publisher_id, 3);
    let first: Vec<(u64, String)> = recv(&mut server, &mut sub, 3)
        .into_iter()
        .map(|m| match m {
            ServerMessage::Notification { seq, payload } => (seq, payload),
            other => panic!("expected Notification, got {other:?}"),
        })
        .collect();
    assert_eq!(
        first.iter().map(|(seq, _)| *seq).collect::<Vec<_>>(),
        vec![1, 2, 3],
        "session notifications carry a contiguous per-session seq from 1"
    );

    // Acknowledge only the first frame, then drop the connection.
    sub.send(&ClientMessage::Ack { seq: 1 }).unwrap();
    server.run_turns(5).unwrap();
    assert_eq!(server.session_retained(session), Some(2));
    assert_eq!(server.stats().notifications_acked, 1);
    sub.close();
    server.run_turns(5).unwrap();
    assert_eq!(server.connection_count(), 1, "only the publisher's connection remains");
    assert_eq!(server.session_count(), 1, "the session must survive its connection");

    // Reconnect and resume from seq 1: Welcome first, then the two
    // retained frames replayed in order with their original payloads.
    let mut resumed = NetClient::connect(&server.connector()).unwrap();
    resumed.send(&ClientMessage::Hello { session, last_seen_seq: 1 }).unwrap();
    let mut replayed = recv(&mut server, &mut resumed, 3);
    match replayed.remove(0) {
        ServerMessage::Welcome { session: granted, resumed: was_resumed } => {
            assert_eq!(granted, session);
            assert!(was_resumed, "a live token must resume, not reopen");
        }
        other => panic!("expected Welcome first, got {other:?}"),
    }
    let replayed: Vec<(u64, String)> = replayed
        .into_iter()
        .map(|m| match m {
            ServerMessage::Notification { seq, payload } => (seq, payload),
            other => panic!("expected replayed Notification, got {other:?}"),
        })
        .collect();
    assert_eq!(replayed, first[1..].to_vec(), "replay must retransmit the unacked tail verbatim");

    resumed.send(&ClientMessage::Ack { seq: 3 }).unwrap();
    server.run_turns(5).unwrap();
    assert_eq!(server.session_retained(session), Some(0));
    let stats = server.stats();
    assert_eq!(stats.sessions_created, 1);
    assert_eq!(stats.sessions_resumed, 1);
    assert_eq!(stats.replay_frames_sent, 2, "exactly the unacked tail crosses the wire again");
    assert_eq!(stats.notifications_acked, 1);
    assert_eq!(stats.notifications_replayed, 2);
    let (stats, delivery) = server.shutdown();
    assert_eq!(
        delivery.total_delivered(),
        stats.notifications_acked + stats.notifications_replayed,
        "every delivery acknowledged, fresh or after replay"
    );
}

/// Replay-buffer accounting at the `session_ttl` expiry boundary
/// (regression): a detached session must survive `ttl - 1` ticks
/// untouched, expire exactly at `ttl`, and count *only its unacked
/// frames* as expired — acknowledged frames must not be re-counted.
/// After expiry the subscription is gone (later matches orphan) and the
/// old token no longer resumes.
#[test]
fn session_ttl_expiry_boundary_accounts_every_retained_frame() {
    let config = NetBrokerConfig {
        session: SessionConfig { session_ttl: 16, ..SessionConfig::default() },
        ..NetBrokerConfig::default()
    };
    let (mut server, _interner, _domain) = net_broker(config);
    let mut sub = NetClient::connect(&server.connector()).unwrap();
    let session = open_session(&mut server, &mut sub);
    let id = register(&mut server, &mut sub, "expiry-sub");
    subscribe_skill(&mut server, &mut sub, id);
    let mut publisher = NetClient::connect(&server.connector()).unwrap();
    let publisher_id = register(&mut server, &mut publisher, "expiry-pub");

    publish_matching(&mut server, &mut publisher, publisher_id, 3);
    let _ = recv(&mut server, &mut sub, 3);
    sub.send(&ClientMessage::Ack { seq: 2 }).unwrap();
    server.run_turns(5).unwrap();
    assert_eq!(server.session_retained(session), Some(1));
    sub.close();
    server.run_turns(5).unwrap();

    // One tick short of the TTL: nothing may fire.
    server.advance_clock(15);
    assert_eq!(server.session_count(), 1, "a detached session lives for ttl - 1 ticks");
    assert_eq!(server.stats().sessions_expired, 0);

    // The boundary tick: the session expires whole, counting exactly the
    // one unacknowledged frame — not the two already-acked ones.
    server.advance_clock(1);
    assert_eq!(server.session_count(), 0, "expiry fires exactly at ttl ticks detached");
    let stats = server.stats();
    assert_eq!(stats.sessions_expired, 1);
    assert_eq!(stats.notifications_expired, 1, "acked frames must not be re-counted at expiry");
    assert_eq!(stats.notifications_acked, 2);

    // The expired session's subscription is gone: new matches orphan.
    publisher
        .send(&ClientMessage::Publish {
            client: publisher_id,
            pairs: vec![("skill".into(), WireValue::Term("programming".into()))],
        })
        .unwrap();
    match recv(&mut server, &mut publisher, 1).remove(0) {
        ServerMessage::Published { matches } => {
            assert_eq!(matches, 0, "an expired session's subscriptions must be unsubscribed")
        }
        other => panic!("expected Published, got {other:?}"),
    }

    // The dead token no longer resumes: the client learns to start over.
    let mut stale = NetClient::connect(&server.connector()).unwrap();
    stale.send(&ClientMessage::Hello { session, last_seen_seq: 3 }).unwrap();
    match recv(&mut server, &mut stale, 1).remove(0) {
        ServerMessage::Welcome { session: granted, resumed } => {
            assert!(!resumed, "an expired token must not resume");
            assert_ne!(granted, session);
        }
        other => panic!("expected Welcome, got {other:?}"),
    }
    let (stats, delivery) = server.shutdown();
    assert_eq!(
        delivery.total_delivered(),
        stats.notifications_acked + stats.notifications_expired,
        "the conservation identity closes across the expiry"
    );
}

/// `DropNewest` at the replay bound: overflowing notifications are shed
/// *before* seq assignment, so the session's delivered seqs stay
/// contiguous and the drops are visible in the accounting — never a gap
/// the client would misread as loss in flight.
#[test]
fn replay_bound_drop_newest_sheds_before_seq_assignment() {
    let config = NetBrokerConfig {
        backpressure: BackpressurePolicy::DropNewest,
        session: SessionConfig { replay_buffer_frames: 2, ..SessionConfig::default() },
        ..NetBrokerConfig::default()
    };
    let (mut server, _interner, _domain) = net_broker(config);
    let mut sub = NetClient::connect(&server.connector()).unwrap();
    let session = open_session(&mut server, &mut sub);
    let id = register(&mut server, &mut sub, "bounded-sub");
    subscribe_skill(&mut server, &mut sub, id);
    let mut publisher = NetClient::connect(&server.connector()).unwrap();
    let publisher_id = register(&mut server, &mut publisher, "bounded-pub");

    // Four matches against a two-frame replay buffer and no acks.
    publish_matching(&mut server, &mut publisher, publisher_id, 4);
    let seqs: Vec<u64> = recv(&mut server, &mut sub, 2)
        .into_iter()
        .map(|m| match m {
            ServerMessage::Notification { seq, .. } => seq,
            other => panic!("expected Notification, got {other:?}"),
        })
        .collect();
    assert_eq!(seqs, vec![1, 2], "drops happen pre-seq: what arrives is contiguous");
    assert!(!sub.peer_closed(), "DropNewest never disconnects");
    assert_eq!(server.stats().notifications_dropped, 2);
    assert_eq!(server.session_retained(session), Some(2));

    sub.send(&ClientMessage::Ack { seq: 2 }).unwrap();
    server.run_turns(5).unwrap();
    let (stats, delivery) = server.shutdown();
    assert_eq!(delivery.total_delivered(), 4);
    assert_eq!(
        delivery.total_delivered(),
        stats.notifications_acked + stats.notifications_dropped,
        "every delivery acked or visibly dropped"
    );
}

/// `Disconnect` at the replay bound: a session that cannot keep its
/// no-loss promise is terminated whole — connection closed, clients
/// unregistered, and *every* retained frame plus the overflowing one
/// counted expired. Nothing is silently lost and nothing double-counts.
#[test]
fn replay_bound_disconnect_expires_the_session_whole() {
    let config = NetBrokerConfig {
        backpressure: BackpressurePolicy::Disconnect,
        session: SessionConfig { replay_buffer_frames: 2, ..SessionConfig::default() },
        ..NetBrokerConfig::default()
    };
    let (mut server, _interner, _domain) = net_broker(config);
    let mut sub = NetClient::connect(&server.connector()).unwrap();
    let _session = open_session(&mut server, &mut sub);
    let id = register(&mut server, &mut sub, "cut-sub");
    subscribe_skill(&mut server, &mut sub, id);
    let mut publisher = NetClient::connect(&server.connector()).unwrap();
    let publisher_id = register(&mut server, &mut publisher, "cut-pub");

    publish_matching(&mut server, &mut publisher, publisher_id, 3);
    assert!(sub.peer_closed(), "the overrun session must be disconnected");
    assert_eq!(server.session_count(), 0);
    let stats = server.stats();
    assert_eq!(stats.sessions_expired, 1);
    assert_eq!(
        stats.notifications_expired, 3,
        "two retained frames plus the overflowing one, each counted exactly once"
    );

    // Its client is unregistered: the next match orphans.
    publisher
        .send(&ClientMessage::Publish {
            client: publisher_id,
            pairs: vec![("skill".into(), WireValue::Term("programming".into()))],
        })
        .unwrap();
    match recv(&mut server, &mut publisher, 1).remove(0) {
        ServerMessage::Published { matches } => assert_eq!(matches, 0),
        other => panic!("expected Published, got {other:?}"),
    }
    let (stats, delivery) = server.shutdown();
    assert_eq!(delivery.total_delivered(), 3);
    assert_eq!(delivery.total_delivered(), stats.notifications_expired);
}

/// A live `SetOntology` delta over the wire changes what matches: a
/// publication using an unknown alias matches nothing, the delta lands
/// (`OntologyUpdated`), and the same publication then matches. The
/// semantic mapping is mutable *through the serving path*, not just
/// through the in-process API.
#[test]
fn set_ontology_delta_changes_matching_over_the_wire() {
    let (mut server, _interner, _domain) = net_broker(NetBrokerConfig::default());
    let mut sub = NetClient::connect(&server.connector()).unwrap();
    let id = register(&mut server, &mut sub, "delta-sub");
    subscribe_skill(&mut server, &mut sub, id);
    let mut publisher = NetClient::connect(&server.connector()).unwrap();
    let publisher_id = register(&mut server, &mut publisher, "delta-pub");

    let publish = |server: &mut NetBroker, publisher: &mut NetClient| {
        publisher
            .send(&ClientMessage::Publish {
                client: publisher_id,
                pairs: vec![("skill".into(), WireValue::Term("vibecoding".into()))],
            })
            .unwrap();
        match recv(server, publisher, 1).remove(0) {
            ServerMessage::Published { matches } => matches,
            other => panic!("expected Published, got {other:?}"),
        }
    };
    assert_eq!(publish(&mut server, &mut publisher), 0, "the alias is unknown before the delta");

    publisher
        .send(&ClientMessage::SetOntology {
            synonyms: vec![("programming".into(), "vibecoding".into())],
        })
        .unwrap();
    match recv(&mut server, &mut publisher, 1).remove(0) {
        ServerMessage::OntologyUpdated { epoch } => assert!(epoch > 0),
        other => panic!("expected OntologyUpdated, got {other:?}"),
    }
    assert_eq!(publish(&mut server, &mut publisher), 1, "the delta must be live for matching");
}

fn differential_chaos() -> SessionChaosConfig {
    SessionChaosConfig {
        seed: 2003,
        kill: 0.25,
        partition: 0.2,
        partition_ticks: 4,
        restart_every: 13,
        churn: 0.0,
        ontology_edit_every: 0,
        ticks_per_event: 1,
        backpressure: BackpressurePolicy::DropNewest,
        session: SessionConfig {
            replay_buffer_frames: 4096,
            session_ttl: 1_000_000, // sessions never expire in this tier
            heartbeat_timeout: 0,
        },
    }
}

/// The differential pin of the whole session layer: a chaos-ridden run —
/// kills, partitions and front-end restarts over a real workload — must
/// deliver to every subscriber exactly the payload multiset a fault-free
/// in-process `Broker` delivers to the same client on the same events,
/// with zero frames dropped, expired or left in flight. And the report
/// must be bit-identical across runs of the same seed.
#[test]
fn chaos_resumed_delivery_equals_fault_free_in_process_run() {
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut interner);
    let shared = SharedInterner::from_interner(interner.clone());
    let workload = generate_jobfinder(
        &domain,
        &WorkloadConfig { subscriptions: 16, publications: 40, seed: 23, ..Default::default() },
    );
    let chaos = differential_chaos();
    let run = || {
        run_session_chaos(
            NetBrokerConfig::default(),
            &chaos,
            Arc::new(domain.ontology.clone()),
            shared.clone(),
            &workload.subscriptions,
            &workload.publications,
            &[],
        )
    };
    let report = run();
    report.assert_invariants();
    assert!(report.kills > 0, "0.25 over 40 events must fire: {report:?}");
    assert!(report.partitions > 0, "0.2 over 40 events must fire: {report:?}");
    assert_eq!(report.restarts, 3, "restart_every=13 over 40 events");
    assert!(report.sessions_resumed > 0, "kills and restarts must exercise resume");
    assert!(report.replay_frames_sent > 0, "some retained frames must cross the wire twice");
    assert_eq!(report.dropped, 0, "the replay bound is never reached in this tier");
    assert_eq!(report.expired, 0, "sessions never expire in this tier");
    assert_eq!(report.disconnected, 0, "fenced injection leaves no session-less strays");
    assert_eq!(report.in_flight, 0, "every client caught up at scoring time");
    assert_eq!(report.orphaned, 0, "sessions survive every fault: no matches orphan");

    // Fault-free in-process run: same names in the same registration
    // order, therefore the same ClientIds and byte-identical payloads.
    let in_process =
        Broker::new(BrokerConfig::default(), Arc::new(domain.ontology.clone()), shared.clone());
    let mut expected_ids = Vec::new();
    for (k, sub) in workload.subscriptions.iter().enumerate() {
        let id = in_process.register_client(format!("session-chaos-{k}"), TransportKind::Tcp);
        in_process.subscribe(id, sub.predicates().to_vec()).unwrap();
        expected_ids.push(id);
    }
    let _ = in_process.register_client("session-chaos-pub", TransportKind::Tcp);
    let seq_attr = shared.intern("seq");
    let mut expected_matches = 0u64;
    for (k, event) in workload.publications.iter().enumerate() {
        let mut stamped = Event::with_capacity(event.len() + 1);
        stamped.push(seq_attr, Value::Int(k as i64));
        for (attr, value) in event.pairs() {
            stamped.push(*attr, *value);
        }
        expected_matches += in_process.publish(&stamped) as u64;
    }
    assert_eq!(report.matches, expected_matches, "matching must be identical over the wire");
    let inbox = in_process.inbox(TransportKind::Tcp).unwrap();
    in_process.shutdown();
    let mut expected: BTreeMap<s_topss::broker::ClientId, Vec<String>> = BTreeMap::new();
    for message in inbox.lock().iter() {
        expected.entry(message.client).or_default().push(message.payload.clone());
    }
    for (k, id) in expected_ids.iter().enumerate() {
        let mut want = expected.remove(id).unwrap_or_default();
        let mut got = report.payloads[k].clone();
        want.sort();
        got.sort();
        assert_eq!(
            got, want,
            "subscriber {k}: chaos-ridden delivery must equal the fault-free multiset"
        );
    }

    let again = run();
    assert_eq!(report, again, "same seed, same report — bit for bit");
}

/// The expiry tier: heartbeats detect partitioned connections, detached
/// sessions expire at their TTL with every retained frame accounted, and
/// the healed clients come back with fresh sessions — all deterministic
/// per seed because time only moves at fenced points.
#[test]
fn heartbeat_and_ttl_expiry_tier_conserves_and_is_deterministic() {
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut interner);
    let shared = SharedInterner::from_interner(interner.clone());
    let workload = generate_jobfinder(
        &domain,
        &WorkloadConfig { subscriptions: 12, publications: 30, seed: 9, ..Default::default() },
    );
    let chaos = SessionChaosConfig {
        seed: 7,
        kill: 0.0,
        partition: 0.35,
        partition_ticks: 12,
        restart_every: 0,
        churn: 0.0,
        ontology_edit_every: 0,
        ticks_per_event: 1,
        backpressure: BackpressurePolicy::DropNewest,
        session: SessionConfig { replay_buffer_frames: 4096, session_ttl: 3, heartbeat_timeout: 2 },
    };
    let run = || {
        run_session_chaos(
            NetBrokerConfig::default(),
            &chaos,
            Arc::new(domain.ontology.clone()),
            shared.clone(),
            &workload.subscriptions,
            &workload.publications,
            &[],
        )
    };
    let report = run();
    report.assert_invariants();
    assert!(report.partitions > 0, "0.35 over 30 events must fire: {report:?}");
    assert!(report.heartbeat_timeouts > 0, "silent partitioned links must be heartbeat-closed");
    assert!(report.sessions_expired > 0, "detached sessions must expire at ttl");
    assert!(report.expired > 0, "expired sessions' retained frames must be accounted");
    assert!(
        report.sessions_created > report.payloads.len() as u64 + 1,
        "healed clients whose sessions expired must come back fresh: {report:?}"
    );
    let again = run();
    assert_eq!(report, again, "same seed, same report — bit for bit");
}

/// The churn tier closes the roadmap leftover: Unsubscribe-heavy
/// subscription churn plus live `SetOntology` deltas over the wire,
/// under kills, still conserving every delivery and staying
/// deterministic per seed.
#[test]
fn churn_and_live_ontology_edits_conserve_under_chaos() {
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut interner);
    let shared = SharedInterner::from_interner(interner.clone());
    let workload = generate_jobfinder(
        &domain,
        &WorkloadConfig { subscriptions: 12, publications: 40, seed: 5, ..Default::default() },
    );
    let chaos = SessionChaosConfig {
        seed: 11,
        kill: 0.1,
        partition: 0.0,
        partition_ticks: 0,
        restart_every: 0,
        churn: 0.5,
        ontology_edit_every: 8,
        ticks_per_event: 1,
        backpressure: BackpressurePolicy::DropNewest,
        session: SessionConfig {
            replay_buffer_frames: 4096,
            session_ttl: 1_000_000,
            heartbeat_timeout: 0,
        },
    };
    let edits =
        vec![("programming".into(), "vibecoding".into()), ("university".into(), "academy".into())];
    let run = || {
        run_session_chaos(
            NetBrokerConfig::default(),
            &chaos,
            Arc::new(domain.ontology.clone()),
            shared.clone(),
            &workload.subscriptions,
            &workload.publications,
            &edits,
        )
    };
    let report = run();
    report.assert_invariants();
    assert!(report.churned > 0, "0.5 over 40 events must fire: {report:?}");
    assert_eq!(report.ontology_edits, 4, "every 8th of 40 publications carries a delta");
    assert_eq!(report.in_flight, 0);
    let again = run();
    assert_eq!(report, again, "same seed, same report — bit for bit");
}
