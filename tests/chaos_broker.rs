//! Broker fault injection scored on delivery invariants: under dropped
//! connections, slow consumers, notification-engine restarts, UDP loss
//! and SMS rate limiting — alone and combined — every match must be
//! delivered or explicitly accounted (no silent loss), per-subscriber
//! notification order must hold, and the whole run must be a pure
//! function of its seeds.

use s_topss::broker::{run_chaos, ChaosConfig, ChaosReport};
use s_topss::prelude::*;
use s_topss::workload::{iot_fixture, jobfinder_fixture, Fixture};

fn run(fixture: &Fixture, chaos: &ChaosConfig) -> ChaosReport {
    run_chaos(
        BrokerConfig::default(),
        chaos,
        fixture.source.clone(),
        fixture.interner.clone(),
        &fixture.subscriptions,
        &fixture.publications,
    )
}

fn quiet() -> ChaosConfig {
    ChaosConfig {
        drop_client: 0.0,
        slow_consumer: 0.0,
        restart_every: 0,
        udp_loss: 0.0,
        sms_budget: 1_000_000,
        ..ChaosConfig::default()
    }
}

/// Baseline: with every fault disabled, all matches are delivered and
/// order holds trivially.
#[test]
fn no_faults_delivers_every_match() {
    let fixture = jobfinder_fixture(24, 60, 5);
    let report = run(&fixture, &quiet());
    report.assert_invariants();
    assert!(report.matches > 0, "workload must produce matches to be a meaningful baseline");
    assert_eq!(report.delivered, report.matches, "no fault, no loss");
    assert_eq!(report.orphaned + report.lost + report.rate_dropped, 0);
}

/// Dropped connections: matches for dead clients land in the orphaned
/// accounting, never vanish.
#[test]
fn connection_drops_are_accounted_as_orphans() {
    let fixture = jobfinder_fixture(24, 60, 5);
    let report = run(&fixture, &ChaosConfig { drop_client: 0.2, ..quiet() });
    report.assert_invariants();
    assert!(report.dropped_clients > 0, "the fault must actually fire");
    assert!(report.orphaned > 0, "dead clients' matches are counted, not lost");
    assert_eq!(
        report.delivered + report.orphaned,
        report.matches,
        "only orphaning, no transport loss"
    );
}

/// Slow consumers: stalls burn retries and may exhaust the budget, but
/// every exhausted delivery is counted rate-dropped.
#[test]
fn slow_consumers_cost_retries_not_silence() {
    let fixture = jobfinder_fixture(24, 60, 5);
    let report = run(&fixture, &ChaosConfig { slow_consumer: 0.4, ..quiet() });
    report.assert_invariants();
    assert!(report.retried > 0, "stalls must trigger the retry path");
}

/// Engine restarts mid-stream: the old incarnation drains before the
/// swap, so nothing enqueued is lost and order still holds per client.
#[test]
fn restarts_drain_without_losing_matches() {
    let fixture = jobfinder_fixture(24, 60, 5);
    let report = run(&fixture, &ChaosConfig { restart_every: 10, ..quiet() });
    report.assert_invariants();
    assert_eq!(report.restarts, 5, "60 publications, restart before every 10th");
    assert_eq!(report.delivered, report.matches, "restarts alone lose nothing");
}

/// Everything at once, on the event-heavy IoT domain: the full
/// conservation law and ordering invariant under combined faults.
#[test]
fn combined_chaos_holds_the_invariants() {
    let fixture = iot_fixture(32, 300, 9);
    let chaos = ChaosConfig {
        drop_client: 0.05,
        slow_consumer: 0.2,
        restart_every: 64,
        udp_loss: 0.2,
        sms_budget: 4,
        ..ChaosConfig::default()
    };
    let report = run(&fixture, &chaos);
    report.assert_invariants();
    assert!(report.matches > 0);
    assert!(report.dropped_clients > 0, "drops fired");
    assert!(report.restarts > 0, "restarts fired");
    assert!(report.lost > 0, "UDP loss fired");
    assert!(report.delivered > 0, "the system still delivers under fire");
}

/// Determinism: the same seeds produce byte-identical reports, and a
/// different chaos seed produces a different fault schedule.
#[test]
fn chaos_runs_are_deterministic_in_the_seed() {
    let fixture = iot_fixture(32, 200, 9);
    let chaos = ChaosConfig {
        drop_client: 0.1,
        slow_consumer: 0.2,
        restart_every: 50,
        udp_loss: 0.2,
        sms_budget: 4,
        seed: 77,
    };
    let a = run(&fixture, &chaos);
    let b = run(&fixture, &chaos);
    assert_eq!(a, b, "same seed ⇒ same injected faults ⇒ same report");
    a.assert_invariants();

    let c = run(&fixture, &ChaosConfig { seed: 78, ..chaos });
    c.assert_invariants();
    assert_ne!(a, c, "the seed drives the fault schedule");
}
