//! Facade smoke test: exercises `s_topss::prelude` exactly as the
//! crate-level doctest quickstart does, so the prelude's re-export
//! surface cannot drift from the documented entry point. (The doctest
//! itself also runs under `cargo test`; this integration test keeps the
//! same flow covered by a normal test target and extends it across
//! engines and the broker-facing re-exports.)

use std::sync::Arc;

use s_topss::prelude::*;

/// The quickstart flow, line for line: a synonym ontology, one
/// subscription, one publication using the other word.
#[test]
fn quickstart_flow_matches_via_synonym() {
    let mut interner = Interner::new();
    let mut ontology = Ontology::new("jobs");
    let university = interner.intern("university");
    let school = interner.intern("school");
    ontology.synonyms.add_synonym(university, school, &interner).unwrap();

    let sub =
        SubscriptionBuilder::new(&mut interner).term_eq("university", "toronto").build(SubId(1));
    let event = EventBuilder::new(&mut interner).term("school", "toronto").build();

    let matcher =
        SToPSS::new(Config::default(), Arc::new(ontology), SharedInterner::from_interner(interner));
    matcher.subscribe(sub);
    let matches = matcher.publish(&event);
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].origin, MatchOrigin::Synonym);
}

/// The same flow must hold under every syntactic engine the prelude
/// exposes, and turning the semantic stages off must suppress the match.
#[test]
fn quickstart_flow_across_engines_and_stage_masks() {
    for engine in EngineKind::ALL {
        let mut interner = Interner::new();
        let mut ontology = Ontology::new("jobs");
        let university = interner.intern("university");
        let school = interner.intern("school");
        ontology.synonyms.add_synonym(university, school, &interner).unwrap();
        let source = Arc::new(ontology);

        let sub = SubscriptionBuilder::new(&mut interner)
            .term_eq("university", "toronto")
            .build(SubId(1));
        let event = EventBuilder::new(&mut interner).term("school", "toronto").build();

        let semantic = SToPSS::new(
            Config { engine, ..Config::default() },
            source.clone(),
            SharedInterner::from_interner(interner.clone()),
        );
        semantic.subscribe(sub.clone());
        assert_eq!(
            semantic.publish(&event).len(),
            1,
            "engine {} missed the synonym match",
            engine.name()
        );

        let syntactic = SToPSS::new(
            Config { engine, stages: StageMask::syntactic(), ..Config::default() },
            source,
            SharedInterner::from_interner(interner),
        );
        syntactic.subscribe(sub);
        assert_eq!(
            syntactic.publish(&event).len(),
            0,
            "engine {} matched syntactically-different terms without semantics",
            engine.name()
        );
    }
}

/// The prelude's remaining re-exports are usable as named types — the
/// broker surface, tolerances, workload config and `.sto` round-trip.
#[test]
fn prelude_reexports_are_usable() {
    // Broker + workload types, fed by the job-finder domain.
    let mut domain_interner = Interner::new();
    let domain = JobFinderDomain::build(&mut domain_interner);
    let broker: Broker = Broker::new(
        BrokerConfig::default(),
        Arc::new(domain.ontology),
        SharedInterner::from_interner(domain_interner.clone()),
    );
    let client = broker.register_client("smoke", TransportKind::Tcp);
    assert_eq!(broker.client_count(), 1);
    let _ = client;
    let _kinds: [TransportKind; 4] = TransportKind::ALL;
    let _workload = WorkloadConfig::default();
    drop(broker);

    // Ontology text format round-trip via prelude names.
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut domain_interner);
    let text = write_ontology(&domain.ontology, &domain_interner);
    let reparsed = parse_ontology(&text, &mut interner).unwrap();
    assert_eq!(reparsed.name(), domain.ontology.name());

    // Core knobs exposed by the prelude.
    let tolerance = Tolerance::full();
    assert!(tolerance.stages.contains(StageMask::SYNONYM));
    let _strategy = Strategy::GeneralizedEvent;
    let _op = Operator::Eq;
    let _value = Value::Int(1);
    let _pred: Predicate = Predicate::exists(interner.intern("x"));
    let _sym: Symbol = interner.intern("y");
    let _event: Event = EventBuilder::new(&mut interner).term("a", "b").build();
    let _sub: Subscription =
        SubscriptionBuilder::new(&mut interner).term_eq("a", "b").build(SubId(9));
}
