//! The networked serving path end to end: many framed connections
//! multiplexed by the `NetBroker` event loop, checked differentially
//! against the in-process `Broker` and scored on the no-silent-loss
//! conservation identities under backpressure and mid-frame disconnects.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use s_topss::broker::{
    run_net_chaos, subscription_to_wire, BackpressurePolicy, Broker, BrokerConfig, ClientMessage,
    NetBroker, NetBrokerConfig, NetChaosConfig, NetClient, ServerMessage, TransportKind, WireValue,
};
use s_topss::prelude::*;
use s_topss::workload::{generate_jobfinder, JobFinderDomain, WorkloadConfig};

fn net_broker(config: NetBrokerConfig) -> (NetBroker, Interner, JobFinderDomain) {
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut interner);
    let broker = NetBroker::new(
        config,
        Arc::new(domain.ontology.clone()),
        SharedInterner::from_interner(interner.clone()),
    )
    .expect("in-memory event loop always builds");
    (broker, interner, domain)
}

fn register(
    server: &mut NetBroker,
    client: &mut NetClient,
    name: &str,
) -> s_topss::broker::ClientId {
    client
        .send(&ClientMessage::Register { name: name.into(), transport: TransportKind::Tcp })
        .unwrap();
    for _ in 0..100 {
        server.turn(Some(Duration::from_millis(1))).unwrap();
        if let Some(ServerMessage::Registered { client }) = client.poll_recv().unwrap().pop() {
            return client;
        }
    }
    panic!("no Registered reply for {name}");
}

fn wire_pairs(event: &Event, interner: &Interner) -> Vec<(String, WireValue)> {
    event
        .pairs()
        .iter()
        .map(|(attr, value)| {
            (interner.resolve(*attr).to_owned(), WireValue::from_value(value, interner))
        })
        .collect()
}

/// Many connections subscribe, one publishes, and the notifications each
/// networked subscriber receives are exactly — as multisets per client —
/// what the in-process broker delivers to the same clients on the same
/// workload. The wire transport must be a transparent layer over the
/// core, not a second implementation of its semantics.
#[test]
fn networked_delivery_equals_in_process_broker() {
    let (mut server, interner, domain) = net_broker(NetBrokerConfig::default());
    let workload = generate_jobfinder(
        &domain,
        &WorkloadConfig { subscriptions: 60, publications: 80, seed: 11, ..Default::default() },
    );

    // Networked side: one connection per subscriber.
    let mut subscribers = Vec::new();
    for (k, sub) in workload.subscriptions.iter().enumerate() {
        let mut client = NetClient::connect(&server.connector()).unwrap();
        let id = register(&mut server, &mut client, &format!("sub-{k}"));
        client
            .send(&ClientMessage::Subscribe {
                client: id,
                predicates: subscription_to_wire(sub, &interner),
            })
            .unwrap();
        subscribers.push((client, id));
    }
    let mut publisher = NetClient::connect(&server.connector()).unwrap();
    let publisher_id = register(&mut server, &mut publisher, "candidates");
    assert!(server.run_until_quiescent(2_000).unwrap(), "setup must quiesce");
    assert_eq!(server.broker().subscription_count(), workload.subscriptions.len());

    let mut net_matches = 0u64;
    let mut net_deliveries: BTreeMap<s_topss::broker::ClientId, Vec<String>> = BTreeMap::new();
    for event in &workload.publications {
        publisher
            .send(&ClientMessage::Publish {
                client: publisher_id,
                pairs: wire_pairs(event, &interner),
            })
            .unwrap();
        assert!(server.run_until_quiescent(2_000).unwrap(), "publish must settle");
        // Drain subscribers so their pipes never fill mid-run.
        for (client, id) in &mut subscribers {
            for msg in client.poll_recv().unwrap() {
                match msg {
                    ServerMessage::Notification { payload, .. } => {
                        net_deliveries.entry(*id).or_default().push(payload)
                    }
                    ServerMessage::Subscribed { .. } => {}
                    other => panic!("unexpected push: {other:?}"),
                }
            }
        }
        for msg in publisher.poll_recv().unwrap() {
            if let ServerMessage::Published { matches } = msg {
                net_matches += u64::from(matches);
            }
        }
    }
    let stats = server.stats();
    assert_eq!(stats.matches_seen, net_matches);
    assert_eq!(stats.notifications_sent, net_matches, "all consumers drained: no losses");
    assert_eq!(stats.notifications_dropped + stats.notifications_disconnected, 0);

    // In-process side: same names, same registration order — therefore
    // the same ClientIds and SubIds, and byte-identical payloads.
    let in_process = Broker::new(
        BrokerConfig::default(),
        Arc::new(domain.ontology.clone()),
        SharedInterner::from_interner(interner.clone()),
    );
    let mut expected_ids = Vec::new();
    for (k, sub) in workload.subscriptions.iter().enumerate() {
        let id = in_process.register_client(format!("sub-{k}"), TransportKind::Tcp);
        in_process.subscribe(id, sub.predicates().to_vec()).unwrap();
        expected_ids.push(id);
    }
    let _ = in_process.register_client("candidates", TransportKind::Tcp);
    let mut expected_matches = 0u64;
    for event in &workload.publications {
        expected_matches += in_process.publish(event) as u64;
    }
    assert_eq!(net_matches, expected_matches, "matcher behavior must be identical over the wire");
    let inbox = in_process.inbox(TransportKind::Tcp).unwrap();
    in_process.shutdown();
    let mut expected_deliveries: BTreeMap<s_topss::broker::ClientId, Vec<String>> = BTreeMap::new();
    for message in inbox.lock().iter() {
        expected_deliveries.entry(message.client).or_default().push(message.payload.clone());
    }
    for deliveries in net_deliveries.values_mut() {
        deliveries.sort();
    }
    for deliveries in expected_deliveries.values_mut() {
        deliveries.sort();
    }
    assert_eq!(
        net_deliveries, expected_deliveries,
        "per-client delivered payloads must match the in-process broker exactly"
    );
}

/// A storm of Subscribe frames arriving together coalesces into a few
/// batched control mutations instead of one snapshot fork per
/// subscription — the control-plane cost model the event loop exists to
/// fix. The (barriered) publish right after still observes every
/// subscription.
#[test]
fn subscribe_storm_coalesces_control_mutations() {
    let (mut server, interner, domain) = net_broker(NetBrokerConfig::default());
    let workload = generate_jobfinder(
        &domain,
        &WorkloadConfig { subscriptions: 200, publications: 1, seed: 3, ..Default::default() },
    );
    let mut client = NetClient::connect(&server.connector()).unwrap();
    let id = register(&mut server, &mut client, "storm");
    let epoch_before = server.broker().matcher_control_epoch();

    // Queue the whole storm before the loop gets to run a single turn.
    for sub in &workload.subscriptions {
        client
            .send(&ClientMessage::Subscribe {
                client: id,
                predicates: subscription_to_wire(sub, &interner),
            })
            .unwrap();
        client.flush().unwrap();
    }
    assert!(server.run_until_quiescent(2_000).unwrap());
    let epoch_after = server.broker().matcher_control_epoch();
    let forks = epoch_after - epoch_before;
    assert_eq!(
        server.broker().subscription_count(),
        workload.subscriptions.len(),
        "every subscription of the storm must land"
    );
    assert!(
        (forks as usize) < workload.subscriptions.len() / 4,
        "200 subscriptions must coalesce into far fewer control mutations, got {forks}"
    );
    let replies = client.poll_recv().unwrap();
    assert_eq!(replies.len(), workload.subscriptions.len(), "one positional reply per subscribe");
    assert!(replies.iter().all(|r| matches!(r, ServerMessage::Subscribed { .. })));
}

/// Builds a loop with one never-draining subscriber matching everything
/// the publisher sends, publishes `events` matching events, and returns
/// (server, publisher handle, publisher id).
fn slow_consumer_setup(
    policy: BackpressurePolicy,
) -> (NetBroker, NetClient, NetClient, s_topss::broker::ClientId) {
    let config = NetBrokerConfig {
        backpressure: policy,
        max_outbound_frames: 4,
        pipe_capacity: 256, // tiny pipe: flushing stalls, queues back up
        ..Default::default()
    };
    let (mut server, _interner, _domain) = net_broker(config);
    let mut slow = NetClient::connect(&server.connector()).unwrap();
    let slow_id = register(&mut server, &mut slow, "slow");
    slow.send(&ClientMessage::Subscribe {
        client: slow_id,
        predicates: vec![s_topss::broker::WirePredicate {
            attr: "skill".into(),
            op: Operator::Eq,
            value: WireValue::Term("programming".into()),
        }],
    })
    .unwrap();
    let mut publisher = NetClient::connect(&server.connector()).unwrap();
    let publisher_id = register(&mut server, &mut publisher, "pub");
    assert!(server.run_until_quiescent(2_000).unwrap());
    (server, slow, publisher, publisher_id)
}

fn publish_matching(
    server: &mut NetBroker,
    publisher: &mut NetClient,
    id: s_topss::broker::ClientId,
    n: usize,
) {
    for k in 0..n {
        publisher
            .send(&ClientMessage::Publish {
                client: id,
                pairs: vec![
                    ("seq".into(), WireValue::Int(k as i64)),
                    ("skill".into(), WireValue::Term("programming".into())),
                ],
            })
            .unwrap();
        publisher.flush().unwrap();
        for _ in 0..20 {
            server.turn(Some(Duration::from_millis(1))).unwrap();
        }
        let _ = publisher.poll_recv().unwrap();
    }
}

/// DropNewest: a slow consumer loses the newest notifications — visibly,
/// in `notifications_dropped` — and the connection stays up. Once the
/// consumer finally drains, everything still queued arrives and the
/// delivery conservation identity closes exactly.
#[test]
fn backpressure_drop_newest_accounts_every_drop() {
    let (mut server, mut slow, mut publisher, publisher_id) =
        slow_consumer_setup(BackpressurePolicy::DropNewest);
    publish_matching(&mut server, &mut publisher, publisher_id, 40);

    let mid_run = server.stats();
    assert!(mid_run.notifications_dropped > 0, "a stalled consumer must shed load visibly");
    assert_eq!(server.connection_count(), 2, "DropNewest never disconnects");

    // The consumer wakes up and drains; the loop settles.
    let mut received = 0u64;
    for _ in 0..500 {
        server.turn(Some(Duration::from_millis(1))).unwrap();
        received += slow
            .poll_recv()
            .unwrap()
            .iter()
            .filter(|m| matches!(m, ServerMessage::Notification { .. }))
            .count() as u64;
        if server.run_until_quiescent(10).unwrap() {
            break;
        }
    }
    received += slow
        .poll_recv()
        .unwrap()
        .iter()
        .filter(|m| matches!(m, ServerMessage::Notification { .. }))
        .count() as u64;

    let stats = server.stats();
    assert_eq!(stats.matches_seen, 40);
    assert_eq!(stats.notifications_sent, received, "sent-to-pipe equals received-from-pipe");
    let (net_stats, delivery) = server.shutdown();
    assert_eq!(
        delivery.total_delivered(),
        net_stats.notifications_sent
            + net_stats.notifications_dropped
            + net_stats.notifications_disconnected,
        "every delivery must reach exactly one terminal bucket"
    );
    assert_eq!(delivery.total_delivered(), 40, "NetTransport itself never fails");
}

/// Disconnect: the slow consumer is cut off, its queued notifications are
/// accounted as disconnected, its client is unregistered so later matches
/// orphan — and the conservation identity still closes exactly.
#[test]
fn backpressure_disconnect_conserves_accounting() {
    let (mut server, slow, mut publisher, publisher_id) =
        slow_consumer_setup(BackpressurePolicy::Disconnect);
    publish_matching(&mut server, &mut publisher, publisher_id, 40);
    assert!(server.run_until_quiescent(2_000).unwrap());

    assert!(slow.peer_closed(), "the slow consumer must be disconnected");
    assert_eq!(server.connection_count(), 1, "only the publisher remains");
    let stats = server.stats();
    assert!(stats.notifications_disconnected > 0);
    assert_eq!(stats.notifications_dropped, 0, "Disconnect never silently drops");
    let orphaned = server.broker().orphaned_matches();
    assert!(orphaned > 0, "post-disconnect matches must orphan");
    let (net_stats, delivery) = server.shutdown();
    assert_eq!(stats.matches_seen, 40);
    assert_eq!(
        stats.matches_seen,
        orphaned + delivery.total_delivered(),
        "match conservation across the disconnect"
    );
    assert_eq!(
        delivery.total_delivered(),
        net_stats.notifications_sent
            + net_stats.notifications_dropped
            + net_stats.notifications_disconnected,
    );
    drop(slow);
}

/// The networked chaos mode: seeded mid-frame disconnects over a real
/// workload, conservation + truncation-detection + per-subscriber order
/// invariants, and bit-identical reports per seed.
#[test]
fn mid_frame_disconnects_conserve_and_are_deterministic() {
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut interner);
    let shared = SharedInterner::from_interner(interner);
    let workload = generate_jobfinder(
        &domain,
        &WorkloadConfig { subscriptions: 24, publications: 40, seed: 17, ..Default::default() },
    );
    let run = |seed: u64, policy: BackpressurePolicy| {
        run_net_chaos(
            NetBrokerConfig::default(),
            &NetChaosConfig { seed, mid_frame_disconnect: 0.2, backpressure: policy },
            Arc::new(domain.ontology.clone()),
            shared.clone(),
            &workload.subscriptions,
            &workload.publications,
        )
    };
    let report = run(2003, BackpressurePolicy::Disconnect);
    report.assert_invariants();
    assert!(report.mid_frame_disconnects > 0, "0.2 over 40 events must fire: {report:?}");
    assert!(report.matches > 0);
    assert!(report.orphaned > 0, "disconnected subscribers' matches must orphan");

    let again = run(2003, BackpressurePolicy::Disconnect);
    assert_eq!(report, again, "same seed, same report — bit for bit");

    let dropping = run(7, BackpressurePolicy::DropNewest);
    dropping.assert_invariants();
}
