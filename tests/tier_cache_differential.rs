//! Differential suite for the event-side tier cache.
//!
//! The tier-cache PR rewrote the hot back-end: per-candidate tolerance
//! verification became one `sub.matches(closed)` against a cached
//! per-tolerance-class closure, and provenance classification reads the
//! minimal hierarchy distance off the cached unbounded closure's
//! `PairInfo` instead of re-closing the event once per candidate
//! distance. The oracle functions (`semantic_match`, `classify_match`)
//! are untouched ground truth, and `Config::tier_cache = false` keeps the
//! per-candidate oracle path runnable — so this suite pins the two paths
//! **byte-identical** (matches, provenance including `Hierarchy {
//! distance }` values, and aggregated stats) across engines × strategies
//! × stage masks × mixed per-subscription tolerances, on job-finder and
//! synthetic workloads, including truncated-closure and distance-cap edge
//! cases.

use std::sync::Arc;

use s_topss::core::{
    classify_match, ClosureLimits, Config, Limits, SToPSS, ShardedSToPSS, StageMask, Strategy,
    Tolerance, CLASSIFY_DISTANCE_CAP,
};
use s_topss::matching::EngineKind;
use s_topss::ontology::Ontology;
use s_topss::prelude::{
    Event, EventBuilder, Interner, MatchOrigin, SharedInterner, SubId, Subscription,
    SubscriptionBuilder,
};
use s_topss::workload::{jobfinder_fixture, synthetic_fixture, Fixture, SyntheticWorkload};
use stopss_workload::SyntheticConfig;

/// Mixed per-subscription tolerances: several distinct verification
/// classes, including ones that opt out of stages entirely.
fn tolerance_cycle() -> [Tolerance; 6] {
    [
        Tolerance::full(),
        Tolerance::bounded(1),
        Tolerance::bounded(2),
        Tolerance::stages(StageMask::SYNONYM),
        Tolerance::stages(StageMask::SYNONYM.with(StageMask::HIERARCHY)),
        Tolerance::syntactic(),
    ]
}

fn matcher_with_mixed_tolerances(fixture: &Fixture, config: Config) -> SToPSS {
    let matcher = SToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
    let cycle = tolerance_cycle();
    for (k, sub) in fixture.subscriptions.iter().enumerate() {
        matcher.subscribe_with_tolerance(sub.clone(), cycle[k % cycle.len()]);
    }
    matcher
}

/// Publishes every event through a tier-cached matcher and an oracle-path
/// matcher under `config` and asserts byte-identical matches (with
/// provenance) and lifetime stats.
fn assert_paths_agree(fixture: &Fixture, config: Config, label: &str) {
    let fast = matcher_with_mixed_tolerances(fixture, config.with_tier_cache(true));
    let oracle = matcher_with_mixed_tolerances(fixture, config.with_tier_cache(false));
    for (k, event) in fixture.publications.iter().enumerate() {
        let want = oracle.publish_detailed(event);
        let got = fast.publish_detailed(event);
        assert_eq!(got.matches, want.matches, "{label}: event {k} diverged");
        assert_eq!(got.derived_events, want.derived_events, "{label}: event {k}");
        assert_eq!(got.closure_pairs, want.closure_pairs, "{label}: event {k}");
        assert_eq!(got.truncated, want.truncated, "{label}: event {k}");
    }
    assert_eq!(fast.stats(), oracle.stats(), "{label}: stats diverged");
}

#[test]
fn jobfinder_fast_path_equals_oracle_across_engines_and_strategies() {
    let fixture = jobfinder_fixture(120, 30, 7);
    for engine in EngineKind::ALL {
        for strategy in Strategy::ALL {
            let config = Config::default().with_engine(engine).with_strategy(strategy);
            assert_paths_agree(
                &fixture,
                config,
                &format!("jobfinder engine={} strategy={}", engine.name(), strategy.name()),
            );
        }
    }
}

#[test]
fn jobfinder_fast_path_equals_oracle_across_stage_masks() {
    let fixture = jobfinder_fixture(120, 30, 11);
    let masks = [
        StageMask::syntactic(),
        StageMask::SYNONYM,
        StageMask::SYNONYM.with(StageMask::HIERARCHY),
        StageMask::HIERARCHY.with(StageMask::MAPPING),
        StageMask::all(),
    ];
    for stages in masks {
        for strategy in Strategy::ALL {
            let config = Config::default().with_stages(stages).with_strategy(strategy);
            assert_paths_agree(
                &fixture,
                config,
                &format!("jobfinder stages={stages:?} strategy={}", strategy.name()),
            );
        }
    }
}

#[test]
fn synthetic_deep_taxonomy_fast_path_equals_oracle() {
    // Deep taxonomy → hierarchy matches at many distinct distances, the
    // case the PairInfo-derived classification must get exactly right.
    let shape = SyntheticConfig { attrs: 3, depth: 5, fanout: 2, ..Default::default() };
    let workload = SyntheticWorkload {
        subscriptions: 150,
        publications: 40,
        general_term_bias: 0.8,
        ..Default::default()
    };
    let fixture = synthetic_fixture(&shape, &workload);
    for stages in [StageMask::SYNONYM.with(StageMask::HIERARCHY), StageMask::all()] {
        for strategy in Strategy::ALL {
            let config = Config::default().with_stages(stages).with_strategy(strategy);
            assert_paths_agree(
                &fixture,
                config,
                &format!("synthetic stages={stages:?} strategy={}", strategy.name()),
            );
        }
    }
}

#[test]
fn truncated_closures_fall_back_to_the_oracle_exactly() {
    // Budgets tight enough that closures truncate (mapping chains keep
    // deriving); the fast path must defer to the oracle and stay
    // byte-identical, including truncation counters.
    let shape =
        SyntheticConfig { attrs: 3, depth: 4, fanout: 2, mapping_chain: 4, ..Default::default() };
    let workload = SyntheticWorkload {
        subscriptions: 100,
        publications: 30,
        general_term_bias: 0.8,
        ..Default::default()
    };
    let fixture = synthetic_fixture(&shape, &workload);
    for (max_pairs, max_rounds) in [(4usize, 8u32), (64, 1), (6, 2)] {
        let limits =
            Limits { closure: ClosureLimits { max_pairs, max_rounds }, ..Limits::default() };
        let config = Config { limits, ..Config::default() };
        assert_paths_agree(
            &fixture,
            config,
            &format!("truncation max_pairs={max_pairs} max_rounds={max_rounds}"),
        );
    }
}

/// A linear `c0 is-a c1 is-a … is-a c_depth` taxonomy world.
fn chain_world(depth: usize) -> (SharedInterner, Arc<Ontology>, Subscription, Event) {
    let mut i = Interner::new();
    let mut o = Ontology::new("chain");
    let mut below = i.intern("c0");
    for k in 1..=depth {
        let above = i.intern(&format!("c{k}"));
        o.taxonomy.add_isa(below, above, &i).unwrap();
        below = above;
    }
    let sub = SubscriptionBuilder::new(&mut i).term_eq("x", &format!("c{depth}")).build(SubId(1));
    let event = EventBuilder::new(&mut i).term("x", "c0").build();
    (SharedInterner::from_interner(i), Arc::new(o), sub, event)
}

#[test]
fn distance_cap_is_reported_identically_past_the_search_horizon() {
    // The match needs distance 70 — beyond CLASSIFY_DISTANCE_CAP — so the
    // oracle's linear search exhausts and reports the cap; the cached
    // classification must clamp to the same value.
    let (interner, source, sub, event) = chain_world(70);
    for tier_cache in [true, false] {
        let config = Config::default().with_tier_cache(tier_cache);
        let matcher = SToPSS::new(config, source.clone(), interner.clone());
        matcher.subscribe(sub.clone());
        let matches = matcher.publish(&event);
        assert_eq!(matches.len(), 1, "tier_cache={tier_cache}");
        assert_eq!(
            matches[0].origin,
            MatchOrigin::Hierarchy { distance: CLASSIFY_DISTANCE_CAP },
            "tier_cache={tier_cache}"
        );
    }
    // Below the cap both paths report the exact distance.
    let (interner, source, sub, event) = chain_world(9);
    for tier_cache in [true, false] {
        let config = Config::default().with_tier_cache(tier_cache);
        let matcher = SToPSS::new(config, source.clone(), interner.clone());
        matcher.subscribe(sub.clone());
        let matches = matcher.publish(&event);
        assert_eq!(matches[0].origin, MatchOrigin::Hierarchy { distance: 9 });
    }
}

#[test]
fn multi_path_derivations_report_the_minimal_distance() {
    // `top` is derivable from `far` (distance 2) and `near` (distance 1);
    // the closure visits `far` first, so a first-derivation-wins record
    // would misreport the distance as 2. Both paths must say 1.
    let mut i = Interner::new();
    let mut o = Ontology::new("t");
    let far = i.intern("far");
    let mid = i.intern("mid");
    let near = i.intern("near");
    let top = i.intern("top");
    o.taxonomy.add_isa(far, mid, &i).unwrap();
    o.taxonomy.add_isa(mid, top, &i).unwrap();
    o.taxonomy.add_isa(near, top, &i).unwrap();
    let sub = SubscriptionBuilder::new(&mut i).term_eq("x", "top").build(SubId(1));
    let event = EventBuilder::new(&mut i).term("x", "far").term("x", "near").build();
    let interner = SharedInterner::from_interner(i);
    let source = Arc::new(o);
    interner.with(|i| {
        let want = classify_match(
            &sub,
            &event,
            source.as_ref(),
            StageMask::all(),
            2003,
            i,
            &ClosureLimits::default(),
        );
        assert_eq!(want, MatchOrigin::Hierarchy { distance: 1 }, "oracle ground truth");
    });
    for tier_cache in [true, false] {
        let config = Config::default().with_tier_cache(tier_cache);
        let matcher = SToPSS::new(config, source.clone(), interner.clone());
        matcher.subscribe(sub.clone());
        let matches = matcher.publish(&event);
        assert_eq!(matches[0].origin, MatchOrigin::Hierarchy { distance: 1 });
    }
}

#[test]
fn sharded_fast_path_equals_single_threaded_oracle() {
    // End to end across the concurrency axis: the sharded matcher (tier
    // cache shared by concurrent shards) against the single-threaded
    // oracle path, with mixed tolerances and batched publishing.
    let fixture = jobfinder_fixture(160, 40, 23);
    let cycle = tolerance_cycle();
    for shards in [2usize, 8] {
        let config = Config::default().with_shards(shards).with_parallelism(shards.min(4));
        let sharded = ShardedSToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
        for (k, sub) in fixture.subscriptions.iter().enumerate() {
            sharded.subscribe_with_tolerance(sub.clone(), cycle[k % cycle.len()]);
        }
        let oracle = matcher_with_mixed_tolerances(&fixture, config.with_tier_cache(false));
        let batched = sharded.publish_batch(&fixture.publications);
        let want: Vec<Vec<s_topss::core::Match>> =
            fixture.publications.iter().map(|e| oracle.publish(e)).collect();
        assert_eq!(batched, want, "shards={shards}");
        assert_eq!(sharded.stats(), oracle.stats(), "shards={shards} stats");
    }
}
