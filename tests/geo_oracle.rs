//! Oracle suite for the geo/alerting domain: hand-derived expectations
//! over the five-level place hierarchy and the two-link mapping chain,
//! distance-bounded tolerance behaviour, engine-vs-reference agreement,
//! and pinned deterministic aggregate counts.

use std::sync::Arc;

use proptest::prelude::*;

use s_topss::core::{semantic_match, ClosureLimits};
use s_topss::prelude::*;
use s_topss::workload::geo::{generate_geo, GeoDomain, GeoWorkloadConfig};
use s_topss::workload::geo_fixture;

fn fixture(
    seed: u64,
    subs: usize,
    pubs: usize,
) -> (Interner, GeoDomain, Vec<Subscription>, Vec<Event>) {
    let mut interner = Interner::new();
    let domain = GeoDomain::build(&mut interner);
    let w = generate_geo(
        &domain,
        &GeoWorkloadConfig { subscriptions: subs, publications: pubs, seed, ..Default::default() },
    );
    (interner, domain, w.subscriptions, w.publications)
}

fn matcher_for(config: Config, domain: &GeoDomain, interner: &Interner) -> SToPSS {
    SToPSS::new(
        config,
        Arc::new(domain.ontology.clone()),
        SharedInterner::from_interner(interner.clone()),
    )
}

/// A report from the district `downtown_toronto` (spelled with the alias
/// `place`) reaches a country-level subscription on `canada` — a
/// 3-level generalization walk on top of synonym resolution.
#[test]
fn deep_hierarchy_walk_derived_by_hand() {
    let mut interner = Interner::new();
    let domain = GeoDomain::build(&mut interner);
    let canada = interner.get("canada").unwrap();
    let downtown = interner.get("downtown_toronto").unwrap();
    let sub = Subscription::new(SubId(1), vec![Predicate::eq(domain.attr_location, canada)]);
    let event = Event::new().with(domain.attr_place, Value::Sym(downtown));

    let m = matcher_for(Config::default(), &domain, &interner);
    m.subscribe(sub.clone());
    let matches = m.publish(&event);
    assert_eq!(matches.len(), 1);
    assert_eq!(
        matches[0].origin,
        MatchOrigin::Hierarchy { distance: 3 },
        "district → city → province → country"
    );

    // Distance-bounded subscriber tolerance: the walk is 3 levels
    // (district → city → province → country), so a bound of 2 rejects it
    // and a bound of 3 admits it.
    let bounded = matcher_for(Config::default(), &domain, &interner);
    bounded.subscribe_with_tolerance(sub.clone(), Tolerance::bounded(2));
    assert_eq!(bounded.publish(&event).len(), 0, "3 levels exceed a bound of 2");
    let wider = matcher_for(Config::default(), &domain, &interner);
    wider.subscribe_with_tolerance(sub, Tolerance::bounded(3));
    assert_eq!(wider.publish(&event).len(), 1, "a bound of 3 admits the walk");
}

/// Magnitude 8 fires quake_critical (severity = critical), whose derived
/// event fires red_alert (alert = red): a subscription on `alert` is only
/// reachable through the two-link chain.
#[test]
fn red_alert_chain_derived_by_hand() {
    let mut interner = Interner::new();
    let domain = GeoDomain::build(&mut interner);
    let sub = Subscription::new(SubId(1), vec![Predicate::eq(domain.attr_alert, domain.term_red)]);
    let m = matcher_for(Config::default(), &domain, &interner);
    m.subscribe(sub);
    let quake = |mag: i64| Event::new().with(domain.attr_magnitude, Value::Int(mag));
    assert_eq!(m.publish(&quake(8)).len(), 1, "critical quake ⇒ red alert, transitively");
    assert_eq!(m.publish(&quake(6)).len(), 0, "elevated severity does not chain to red");
    assert_eq!(m.publish(&quake(3)).len(), 0, "below both severity thresholds");
}

/// The evacuation-radius mapping synthesizes a numeric attribute
/// (magnitude × 10) that range subscriptions match.
#[test]
fn evacuation_radius_derived_by_hand() {
    let mut interner = Interner::new();
    let domain = GeoDomain::build(&mut interner);
    let sub = Subscription::new(
        SubId(1),
        vec![Predicate::new(domain.attr_evac_km, Operator::Ge, Value::Int(50))],
    );
    let m = matcher_for(Config::default(), &domain, &interner);
    m.subscribe(sub);
    let quake = |mag: i64| Event::new().with(domain.attr_magnitude, Value::Int(mag));
    assert_eq!(m.publish(&quake(6)).len(), 1, "60 km radius meets the 50 km bound");
    assert_eq!(m.publish(&quake(4)).len(), 0, "40 km does not");
}

/// Pinned aggregate counts for the default geo fixture. Syntactic
/// matching finds almost nothing here (subscriptions lean on generals
/// and derived attributes), which is the point of the domain.
#[test]
fn default_fixture_counts_are_pinned() {
    let f = geo_fixture(400, 800, 2003);
    let count = |config: Config| {
        let m = f.matcher(config.with_provenance(false));
        f.publications.iter().map(|e| m.publish(e).len()).sum::<usize>()
    };
    let semantic = count(Config::default());
    let syntactic = count(Config::syntactic());
    assert_eq!(semantic, 34_961);
    assert_eq!(syntactic, 1_313);
    assert!(semantic > syntactic * 5, "the deep hierarchy + mapping pipeline carry this domain");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Generated geo workloads: matcher == reference oracle for every
    /// engine kind.
    #[test]
    fn geo_matcher_agrees_with_oracle(seed in 0u64..1_000) {
        let (interner, domain, subs, events) = fixture(seed, 30, 25);
        let source = Arc::new(domain.ontology);
        let limits = ClosureLimits::default();
        let tolerance = Tolerance::full();

        for engine in EngineKind::ALL {
            let config = Config { engine, track_provenance: false, ..Config::default() };
            let matcher = SToPSS::new(
                config,
                source.clone(),
                SharedInterner::from_interner(interner.clone()),
            );
            for sub in &subs {
                matcher.subscribe(sub.clone());
            }
            for event in &events {
                let mut got: Vec<SubId> = matcher.publish(event).iter().map(|m| m.sub).collect();
                got.sort_unstable();
                let mut want: Vec<SubId> = subs
                    .iter()
                    .filter(|s| {
                        semantic_match(s, event, source.as_ref(), &tolerance, 2003, &interner, &limits)
                    })
                    .map(|s| s.id())
                    .collect();
                want.sort_unstable();
                prop_assert_eq!(&got, &want, "engine {} diverged on seed {}", engine.name(), seed);
            }
        }
    }
}
