//! Cross-crate property test: the *realistic* generated workload (not the
//! synthetic vocabulary of the core crate's tests) must agree with the
//! reference semantics for every engine, and the `.sto` round-trip of the
//! job-finder ontology must preserve match sets exactly.

use std::sync::Arc;

use proptest::prelude::*;

use s_topss::core::{semantic_match, ClosureLimits};
use s_topss::prelude::*;
use s_topss::workload::{generate_jobfinder, JobFinderDomain, WorkloadConfig};

fn fixture(
    seed: u64,
    subs: usize,
    pubs: usize,
) -> (Interner, JobFinderDomain, Vec<Subscription>, Vec<Event>) {
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut interner);
    let w = generate_jobfinder(
        &domain,
        &WorkloadConfig { subscriptions: subs, publications: pubs, seed, ..Default::default() },
    );
    (interner, domain, w.subscriptions, w.publications)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Realistic workloads: matcher == oracle for every engine.
    #[test]
    fn jobfinder_matcher_agrees_with_oracle(seed in 0u64..1_000) {
        let (interner, domain, subs, events) = fixture(seed, 40, 30);
        let source = Arc::new(domain.ontology);
        let limits = ClosureLimits::default();
        let tolerance = Tolerance::full();

        for engine in EngineKind::ALL {
            let config = Config {
                engine,
                track_provenance: false,
                ..Config::default()
            };
            let matcher =
                SToPSS::new(config, source.clone(), SharedInterner::from_interner(interner.clone()));
            for sub in &subs {
                matcher.subscribe(sub.clone());
            }
            for event in &events {
                let mut got: Vec<SubId> =
                    matcher.publish(event).iter().map(|m| m.sub).collect();
                got.sort_unstable();
                let mut want: Vec<SubId> = subs
                    .iter()
                    .filter(|s| {
                        semantic_match(s, event, source.as_ref(), &tolerance, 2003, &interner, &limits)
                    })
                    .map(|s| s.id())
                    .collect();
                want.sort_unstable();
                prop_assert_eq!(&got, &want, "engine {} diverged on seed {}", engine.name(), seed);
            }
        }
    }

    /// The `.sto` writer/parser round-trip preserves semantics, validated
    /// by match-set equality on generated workloads.
    #[test]
    fn sto_round_trip_preserves_match_sets(seed in 0u64..1_000) {
        let (mut interner, domain, subs, events) = fixture(seed, 30, 20);
        let text = s_topss::ontology::write_ontology(&domain.ontology, &interner);
        let reparsed = s_topss::ontology::parse_ontology(&text, &mut interner).unwrap();

        let run = |ontology: Ontology| -> Vec<Vec<SubId>> {
            let matcher = SToPSS::new(
                Config::default().with_provenance(false),
                Arc::new(ontology),
                SharedInterner::from_interner(interner.clone()),
            );
            for sub in &subs {
                matcher.subscribe(sub.clone());
            }
            events
                .iter()
                .map(|e| {
                    let mut ids: Vec<SubId> =
                        matcher.publish(e).iter().map(|m| m.sub).collect();
                    ids.sort_unstable();
                    ids
                })
                .collect()
        };
        let original = run(domain.ontology);
        let roundtripped = run(reparsed);
        prop_assert_eq!(original, roundtripped);
    }

    /// Tolerance monotonicity on real workloads: widening the distance
    /// bound or enabling more stages never removes a match.
    #[test]
    fn tolerance_is_monotone(seed in 0u64..1_000) {
        let (interner, domain, subs, events) = fixture(seed, 25, 15);
        let source = Arc::new(domain.ontology);

        let masks = [
            StageMask::syntactic(),
            StageMask::SYNONYM,
            StageMask::SYNONYM.with(StageMask::HIERARCHY),
            StageMask::all(),
        ];
        let mut previous: Option<Vec<usize>> = None;
        for mask in masks {
            let config = Config { stages: mask, track_provenance: false, ..Config::default() };
            let matcher =
                SToPSS::new(config, source.clone(), SharedInterner::from_interner(interner.clone()));
            for sub in &subs {
                matcher.subscribe(sub.clone());
            }
            let counts: Vec<usize> = events.iter().map(|e| matcher.publish(e).len()).collect();
            if let Some(prev) = &previous {
                for (p, c) in prev.iter().zip(&counts) {
                    prop_assert!(c >= p, "stage widening lost matches: {prev:?} vs {counts:?}");
                }
            }
            previous = Some(counts);
        }

        // Distance bound monotonicity.
        let mut prev_total = 0usize;
        for bound in [Some(0u32), Some(1), Some(2), Some(4), None] {
            let config = Config {
                max_distance: bound,
                track_provenance: false,
                ..Config::default()
            };
            let matcher =
                SToPSS::new(config, source.clone(), SharedInterner::from_interner(interner.clone()));
            for sub in &subs {
                matcher.subscribe(sub.clone());
            }
            let total: usize = events.iter().map(|e| matcher.publish(e).len()).sum();
            prop_assert!(total >= prev_total, "wider bound lost matches");
            prev_total = total;
        }
    }
}
