//! Quickstart: the paper's §1/§3.1 worked example, end to end.
//!
//! A recruiter subscribes to
//! `(university = toronto) ∧ (degree = phd) ∧ (professional experience ≥ 4)`
//! and a candidate publishes a resume that *syntactically* shares almost
//! nothing with it — the semantic stages bridge the gap.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use s_topss::prelude::*;

fn main() {
    // ---------------------------------------------------------------- 1.
    // Domain knowledge, written in the `.sto` ontology language.
    let mut interner = Interner::new();
    let ontology = parse_ontology(
        r#"
domain jobs
synonyms university = school, college
isa phd -> graduate_degree -> degree

map experience_from_graduation:
    when "graduation year" exists
    emit "professional experience" = now - "graduation year"
end
"#,
        &mut interner,
    )
    .expect("ontology parses");

    // ---------------------------------------------------------------- 2.
    // The recruiter's subscription (the paper's S).
    let subscription = SubscriptionBuilder::new(&mut interner)
        .term_eq("university", "toronto")
        .term_eq("degree", "phd")
        .pred("professional experience", Operator::Ge, 4i64)
        .build(SubId(1));

    // The candidate's publication (the paper's E): different spelling
    // ("school"), no explicit experience — just a graduation year.
    let resume = EventBuilder::new(&mut interner)
        .term("school", "toronto")
        .term("degree", "phd")
        .pair("graduation year", 1990i64)
        .build();

    println!("S: {}", subscription.display(&interner));
    println!("E: {}", resume.display(&interner));
    println!();

    // ---------------------------------------------------------------- 3.
    // Syntactic matching — what every pre-S-ToPSS system would do.
    println!(
        "plain content-based match: {}",
        if subscription.matches(&resume, &interner) { "MATCH" } else { "no match" }
    );

    // ---------------------------------------------------------------- 4.
    // Semantic matching with S-ToPSS.
    let shared = SharedInterner::from_interner(interner);
    let matcher = SToPSS::new(Config::default(), Arc::new(ontology), shared.clone());
    matcher.subscribe(subscription);

    let matches = matcher.publish(&resume);
    for m in &matches {
        println!("semantic match: {} via {}", m.sub, m.origin);
    }
    assert_eq!(matches.len(), 1, "the semantic stage must find the match");

    // ---------------------------------------------------------------- 5.
    // The information-loss knob: a subscriber who opts out of the mapping
    // stage never sees this match (the experience attribute only exists
    // after the mapping function runs).
    let strict =
        Tolerance { stages: StageMask::SYNONYM.with(StageMask::HIERARCHY), max_distance: None };
    let strict_sub = matcher.subscription(SubId(1)).unwrap().with_id(SubId(2));
    matcher.subscribe_with_tolerance(strict_sub, strict);
    let matches = matcher.publish(&resume);
    println!(
        "with a no-mapping tolerance, sub#2 matches: {}",
        matches.iter().any(|m| m.sub == SubId(2))
    );
    assert_eq!(matches.len(), 1, "only the full-tolerance subscriber matches");
}
