//! The information-loss knob (§3.2).
//!
//! "One may restrict the level of a match generality, where the user is
//! interested only in more general events (e.g., a company recruiter
//! looking to fill an entry-level position would want to receive resumes
//! from candidates who had some experience with Java, but not from those
//! who are Java experts)."
//!
//! This example sweeps the generalization-distance bound and the stage
//! mask for one subscription against a fixed stream of publications and
//! prints the recall/cost trade-off.
//!
//! Run with: `cargo run --example tolerance_tuning`

use std::sync::Arc;

use s_topss::prelude::*;

fn main() {
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut interner);

    // The recruiter wants anyone with a *programming* skill — a general
    // term sitting two levels above the leaves (java, rust, cobol, …).
    let programming_sub =
        SubscriptionBuilder::new(&mut interner).term_eq("skill", "programming").build(SubId(1));

    // Candidates with skills at different depths below "programming".
    let candidates = vec![
        (
            "direct: programming",
            EventBuilder::new(&mut interner).term("skill", "programming").build(),
        ),
        (
            "1 level: jvm_programming",
            EventBuilder::new(&mut interner).term("skill", "jvm_programming").build(),
        ),
        ("2 levels: java", EventBuilder::new(&mut interner).term("skill", "java").build()),
        ("2 levels: cobol", EventBuilder::new(&mut interner).term("skill", "cobol").build()),
        ("other: sql", EventBuilder::new(&mut interner).term("skill", "sql").build()),
    ];

    let shared = SharedInterner::from_interner(interner);
    let source = Arc::new(domain.ontology);

    println!("subscription: (skill = programming)\n");
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10}",
        "candidate / max distance", "k=0", "k=1", "k=2", "unbounded"
    );
    for (label, event) in &candidates {
        let mut row = format!("{label:<28}");
        for bound in [Some(0u32), Some(1), Some(2), None] {
            let matcher = SToPSS::new(Config::default(), source.clone(), shared.clone());
            matcher.subscribe_with_tolerance(
                programming_sub.clone(),
                Tolerance { stages: StageMask::all(), max_distance: bound },
            );
            let hit = !matcher.publish(event).is_empty();
            row.push_str(&format!(" {:>10}", if hit { "match" } else { "-" }));
        }
        println!("{row}");
    }

    // Cost side: the tighter the bound, the less closure work per event.
    println!("\nclosure cost per publication (pairs derived, java candidate):");
    let shared2 = shared.clone();
    for bound in [Some(0u32), Some(1), Some(2), None] {
        let config = Config { max_distance: bound, ..Config::default() };
        let matcher = SToPSS::new(config, source.clone(), shared2.clone());
        matcher.subscribe(programming_sub.clone());
        let result = matcher.publish_detailed(&candidates[2].1);
        println!(
            "  max_distance {:<9} -> {} closure pairs",
            match bound {
                Some(k) => format!("{k}"),
                None => "unbounded".to_owned(),
            },
            result.closure_pairs
        );
    }

    println!("\nStage opt-out: the same subscription with hierarchy disabled sees");
    println!("only the exact term:");
    let matcher = SToPSS::new(Config::default(), source.clone(), shared.clone());
    matcher.subscribe_with_tolerance(
        programming_sub.clone(),
        Tolerance { stages: StageMask::SYNONYM, max_distance: None },
    );
    for (label, event) in &candidates {
        let hit = !matcher.publish(event).is_empty();
        println!("  {label:<28} {}", if hit { "match" } else { "-" });
    }
}
