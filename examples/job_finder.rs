//! The full demonstration of §4: the job-finder application.
//!
//! Reproduces Figure 2: a workload generator simulates companies and
//! candidates, S-ToPSS matches semantically, and the notification engine
//! delivers over four transports (TCP / UDP / SMTP / SMS). The demo runs
//! the same workload twice — semantic mode, then syntactic mode — because
//! "the real power of this scheme is only apparent by witnessing how
//! seamlessly unrelated objects end up matching."
//!
//! Run with: `cargo run --release --example job_finder`

use std::sync::Arc;

use s_topss::broker::{Broker, BrokerConfig, TransportKind};
use s_topss::core::OriginCounts;
use s_topss::prelude::*;
use s_topss::workload::{generate_jobfinder, JobFinderDomain, WorkloadConfig};

const COMPANIES: usize = 40;
const SUBSCRIPTIONS: usize = 400;
const PUBLICATIONS: usize = 2_000;

fn main() {
    // Build the domain and a deterministic workload.
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut interner);
    let workload = generate_jobfinder(
        &domain,
        &WorkloadConfig {
            subscriptions: SUBSCRIPTIONS,
            publications: PUBLICATIONS,
            seed: 2003,
            ..Default::default()
        },
    );
    let shared = SharedInterner::from_interner(interner);

    println!("S-ToPSS job-finder demonstration");
    let (aliases, concepts, edges, maps) = domain.ontology.stats();
    println!(
        "ontology: {concepts} concepts, {edges} is-a edges, {aliases} synonyms, {maps} mapping functions"
    );
    println!("workload: {SUBSCRIPTIONS} subscriptions from {COMPANIES} companies, {PUBLICATIONS} resumes\n");

    for semantic in [true, false] {
        let broker = Broker::new(
            BrokerConfig { udp_loss: 0.02, ..Default::default() },
            Arc::new(domain.ontology.clone()),
            shared.clone(),
        );
        broker.set_semantic_mode(semantic);

        // Companies register round-robin over the four transports and
        // split the subscription pool.
        let mut companies = Vec::with_capacity(COMPANIES);
        for k in 0..COMPANIES {
            let transport = TransportKind::ALL[k % TransportKind::ALL.len()];
            companies.push(broker.register_client(format!("company{k}"), transport));
        }
        for (k, sub) in workload.subscriptions.iter().enumerate() {
            broker
                .subscribe(companies[k % COMPANIES], sub.predicates().to_vec())
                .expect("registered company");
        }

        // Candidates publish their resumes.
        let started = std::time::Instant::now();
        let mut origin_counts = OriginCounts::default();
        let mut total_matches = 0usize;
        for event in &workload.publications {
            total_matches += broker.publish(event);
        }
        let elapsed = started.elapsed();

        // Re-run matching once (without delivery) to attribute origins.
        if semantic {
            let matcher =
                SToPSS::new(Config::default(), Arc::new(domain.ontology.clone()), shared.clone());
            for sub in &workload.subscriptions {
                matcher.subscribe(sub.clone());
            }
            for event in &workload.publications {
                for m in matcher.publish(event) {
                    origin_counts.record(m.origin);
                }
            }
        }

        let mode = if semantic { "SEMANTIC" } else { "SYNTACTIC" };
        println!("--- {mode} mode ---");
        println!(
            "matches: {total_matches} across {} publications ({:.0} pubs/sec)",
            workload.publications.len(),
            workload.publications.len() as f64 / elapsed.as_secs_f64()
        );
        if semantic {
            println!(
                "match origins: {} syntactic, {} synonym, {} hierarchy, {} mapping",
                origin_counts.syntactic,
                origin_counts.synonym,
                origin_counts.hierarchy,
                origin_counts.mapping
            );
        }

        let stats = broker.shutdown();
        for kind in TransportKind::ALL {
            let t = stats.get(kind);
            if t.attempted > 0 {
                println!(
                    "  {:<4} attempted {:>6}  delivered {:>6}  lost {:>4}  retried {:>4}  rate-dropped {:>3}",
                    kind.name(),
                    t.attempted,
                    t.delivered,
                    t.lost,
                    t.retried,
                    t.rate_dropped
                );
            }
        }
        println!();
    }
    println!("The semantic mode finds strictly more matches from the same inputs —");
    println!("synonyms, generalization and mapping functions each contribute (see origins).");
}
