//! Multi-domain operation (§3.2).
//!
//! "The use of mapping functions allows a single pub/sub system to be used
//! for multiple domains simultaneously and … it is possible to provide
//! inter-domain mapping by simply adding additional functions."
//!
//! Two independent ontologies — recruiting and vehicle sales — live in one
//! [`DomainRegistry`]. A bridge mapping function translates a candidate's
//! salary into a car-dealer's budget vocabulary, so a *job* publication
//! can match a *dealer's* subscription without either domain knowing
//! about the other.
//!
//! Run with: `cargo run --example multi_domain`

use std::sync::Arc;

use s_topss::prelude::*;

fn main() {
    let mut interner = Interner::new();

    // Domain 1: recruiting (abridged job-finder).
    let jobs = parse_ontology(
        r#"
domain jobs
synonyms university = school
isa phd -> degree

map experience_from_graduation:
    when "graduation year" exists
    emit "professional experience" = now - "graduation year"
end
"#,
        &mut interner,
    )
    .unwrap();

    // Domain 2: vehicle sales.
    let vehicles = parse_ontology(
        r#"
domain vehicles
synonyms car = automobile
isa sedan -> car -> vehicle
isa suv -> car
isa luxury_sedan -> sedan
"#,
        &mut interner,
    )
    .unwrap();

    // The registry: both domains plus one inter-domain bridge. A candidate
    // earning well is — to the vehicle domain — a prospect with a budget.
    let mut registry = DomainRegistry::new();
    registry.add_domain(jobs).unwrap();
    registry.add_domain(vehicles).unwrap();

    let salary = interner.intern("salary");
    let budget = interner.intern("vehicle budget");
    registry
        .add_bridge(MappingFunction::new(
            "salary_to_vehicle_budget",
            vec![PatternItem {
                attr: salary,
                guard: Some(Guard { op: Operator::Ge, value: Value::Int(80_000) }),
            }],
            vec![Production {
                attr: budget,
                expr: Expr::div(Expr::Attr(salary), Expr::Const(Value::Int(2))),
            }],
        ))
        .unwrap();

    // Subscribers from both domains.
    let recruiter = SubscriptionBuilder::new(&mut interner)
        .term_eq("university", "toronto")
        .pred("professional experience", Operator::Ge, 4i64)
        .build(SubId(1));
    let dealer = SubscriptionBuilder::new(&mut interner)
        .pred("vehicle budget", Operator::Ge, 40_000i64)
        .build(SubId(2));
    // A vehicle-domain subscriber using a general term.
    let fleet_buyer =
        SubscriptionBuilder::new(&mut interner).term_eq("listing", "vehicle").build(SubId(3));

    // Publications: one resume, one car listing.
    let resume = EventBuilder::new(&mut interner)
        .term("school", "toronto")
        .pair("graduation year", 1993i64)
        .pair("salary", 90_000i64)
        .build();
    let listing = EventBuilder::new(&mut interner).term("listing", "luxury_sedan").build();

    let resume_text = format!("{}", resume.display(&interner));
    let listing_text = format!("{}", listing.display(&interner));

    let matcher =
        SToPSS::new(Config::default(), Arc::new(registry), SharedInterner::from_interner(interner));
    matcher.subscribe(recruiter);
    matcher.subscribe(dealer);
    matcher.subscribe(fleet_buyer);

    println!("resume: {resume_text}");
    let matches = matcher.publish(&resume);
    for m in &matches {
        println!("  matched {} via {}", m.sub, m.origin);
    }
    assert!(matches.iter().any(|m| m.sub == SubId(1)), "recruiter matches in-domain");
    assert!(
        matches.iter().any(|m| m.sub == SubId(2)),
        "dealer matches across domains via the bridge function"
    );

    println!("listing: {listing_text}");
    let matches = matcher.publish(&listing);
    for m in &matches {
        println!("  matched {} via {}", m.sub, m.origin);
    }
    assert!(
        matches.iter().any(|m| m.sub == SubId(3)),
        "luxury_sedan is-a sedan is-a car is-a vehicle"
    );

    println!();
    println!("One S-ToPSS instance served two unrelated domains; the bridge mapping");
    println!("function connected them without merging their ontologies.");
}
