//! Offline readiness/event-loop stub in the style of `mio`.
//!
//! The build environment has no network access, so instead of vendoring an
//! OS-selector binding this crate provides the *shape* of mio's API —
//! [`Poll`] / [`Registry`] / [`Token`] / [`Interest`] / [`Events`] /
//! [`Waker`] and an `event::Source`-like [`Source`] trait — over fully
//! in-memory simulated connections ([`SimStream`], [`SimListener`]). It is
//! **not** an API subset of upstream mio: readiness comes from the peer
//! endpoints pushing wakeups, not from an OS selector, which is exactly
//! what makes runs deterministic and lets a single process multiplex
//! hundreds of thousands of "connections" without file descriptors.
//!
//! # Semantics
//!
//! * **Edge-style readiness.** A source becomes ready when its peer makes
//!   progress (writes bytes, frees buffer space, connects, closes) and the
//!   flag is consumed by the next [`Poll::poll`]. Consumers must therefore
//!   read/write **until `WouldBlock`** after seeing an event, as with any
//!   edge-triggered selector. Registration pushes the source's *current*
//!   readiness once, so registering an already-readable stream does not
//!   lose the edge.
//! * **Bounded pipes.** Each direction of a [`SimStream`] is a bounded
//!   byte pipe: writes past capacity return `WouldBlock` (genuine wire
//!   backpressure), reads on an empty open pipe return `WouldBlock`,
//!   reads on an empty *closed* pipe return `Ok(0)` (EOF), and writes to a
//!   closed pipe return `BrokenPipe`.
//! * **Deterministic drain order.** Pending readiness is kept per token in
//!   a `BTreeMap`, so [`Poll::poll`] always reports ready tokens in
//!   ascending token order regardless of wakeup arrival order.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Identifies a registered source in [`Events`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

const READABLE: u8 = 0b01;
const WRITABLE: u8 = 0b10;

/// Which readiness kinds a registration subscribes to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in readability (data buffered, new connection, EOF).
    pub const READABLE: Interest = Interest(READABLE);
    /// Interest in writability (buffer space freed, peer closed).
    pub const WRITABLE: Interest = Interest(WRITABLE);

    /// Union of two interests. Named after real mio's `Interest::add`
    /// (not the `std::ops::Add` trait) so callers port over unchanged.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// True if this interest includes readability.
    pub fn is_readable(self) -> bool {
        self.0 & READABLE != 0
    }

    /// True if this interest includes writability.
    pub fn is_writable(self) -> bool {
        self.0 & WRITABLE != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;

    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness event returned by [`Poll::poll`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    flags: u8,
}

impl Event {
    /// The token the source was registered under.
    pub fn token(&self) -> Token {
        self.token
    }

    /// True if the source may be readable (includes EOF and new
    /// connections on a listener).
    pub fn is_readable(&self) -> bool {
        self.flags & READABLE != 0
    }

    /// True if the source may be writable.
    pub fn is_writable(&self) -> bool {
        self.flags & WRITABLE != 0
    }
}

/// A bounded batch of events filled by [`Poll::poll`].
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// Creates a batch that holds at most `capacity` events per poll; the
    /// overflow stays pending and is returned by the next poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events { inner: Vec::with_capacity(capacity.max(1)), capacity: capacity.max(1) }
    }

    /// Iterates the events of the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// True if the last poll returned no events.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of events from the last poll.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Drops all events.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// The shared readiness state behind a [`Poll`]: pending flags per token
/// plus the condvar poll waits on. `BTreeMap` so drains are in token order.
struct ReadyState {
    pending: Mutex<BTreeMap<Token, u8>>,
    cond: Condvar,
}

/// Cloneable handle pushing readiness into a [`Poll`].
#[derive(Clone)]
struct Readiness(Arc<ReadyState>);

impl Readiness {
    fn push(&self, token: Token, flags: u8) {
        if flags == 0 {
            return;
        }
        let mut pending = self.0.pending.lock().unwrap();
        *pending.entry(token).or_insert(0) |= flags;
        self.0.cond.notify_one();
    }
}

/// A registration handle held by a source: where (and as what) to report
/// readiness. Cloneable because a [`SimStream`] stores one copy per pipe
/// direction.
#[derive(Clone)]
pub struct Notifier {
    readiness: Readiness,
    token: Token,
    interest: Interest,
}

impl Notifier {
    /// Reports the source readable (if registered with read interest).
    pub fn notify_readable(&self) {
        if self.interest.is_readable() {
            self.readiness.push(self.token, READABLE);
        }
    }

    /// Reports the source writable (if registered with write interest).
    pub fn notify_writable(&self) {
        if self.interest.is_writable() {
            self.readiness.push(self.token, WRITABLE);
        }
    }
}

/// Something that can be registered with a [`Registry`].
///
/// Unlike upstream mio the source receives a [`Notifier`] to store; its
/// peer endpoints call back through it when they make progress.
pub trait Source {
    /// Installs the notifier and pushes the source's current readiness.
    fn register(&mut self, notifier: Notifier) -> io::Result<()>;

    /// Removes the notifier; the source stops reporting readiness.
    fn deregister(&mut self) -> io::Result<()>;
}

/// Registers sources with a [`Poll`]'s readiness state.
#[derive(Clone)]
pub struct Registry {
    readiness: Readiness,
}

impl Registry {
    /// Registers `source` under `token` with the given interests.
    pub fn register<S: Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        source.register(Notifier { readiness: self.readiness.clone(), token, interest })
    }

    /// Deregisters `source`; pending readiness for its token may still be
    /// reported once and should be ignored by the caller.
    pub fn deregister<S: Source + ?Sized>(&self, source: &mut S) -> io::Result<()> {
        source.deregister()
    }
}

/// The selector: collects readiness pushed by registered sources and
/// hands it out in deterministic token order.
pub struct Poll {
    state: Arc<ReadyState>,
}

impl Poll {
    /// Creates an empty poll instance.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            state: Arc::new(ReadyState {
                pending: Mutex::new(BTreeMap::new()),
                cond: Condvar::new(),
            }),
        })
    }

    /// A handle for registering sources (cloneable, sendable).
    pub fn registry(&self) -> Registry {
        Registry { readiness: Readiness(self.state.clone()) }
    }

    /// Blocks until at least one source is ready or `timeout` expires
    /// (`None` = wait indefinitely), then fills `events` with up to its
    /// capacity of pending readiness in ascending token order. Readiness
    /// not drained this call stays pending for the next one.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let mut pending = self.state.pending.lock().unwrap();
        if pending.is_empty() {
            match timeout {
                Some(t) => {
                    let (guard, _timed_out) = self.state.cond.wait_timeout(pending, t).unwrap();
                    pending = guard;
                }
                None => {
                    while pending.is_empty() {
                        pending = self.state.cond.wait(pending).unwrap();
                    }
                }
            }
        }
        let drained: Vec<Token> =
            pending.iter().take(events.capacity).map(|(token, _)| *token).collect();
        for token in drained {
            let flags = pending.remove(&token).unwrap_or(0);
            events.inner.push(Event { token, flags });
        }
        Ok(())
    }
}

/// Wakes a [`Poll`] from any thread by making its token readable.
pub struct Waker {
    notifier: Notifier,
}

impl Waker {
    /// Creates a waker reporting readiness on `token`.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        Ok(Waker {
            notifier: Notifier {
                readiness: registry.readiness.clone(),
                token,
                interest: Interest::READABLE,
            },
        })
    }

    /// Makes the waker's token readable, waking a blocked poll.
    pub fn wake(&self) -> io::Result<()> {
        self.notifier.notify_readable();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Simulated streams
// ---------------------------------------------------------------------------

/// Default per-direction pipe capacity of simulated connections.
pub const DEFAULT_PIPE_CAPACITY: usize = 64 * 1024;

/// One direction of a connection: a bounded byte pipe with the notifiers
/// of the endpoint that reads it and the endpoint that writes it.
struct Pipe {
    buf: VecDeque<u8>,
    capacity: usize,
    closed: bool,
    /// Network-partition simulation: while set, the pipe carries nothing —
    /// reads and writes return `WouldBlock` regardless of buffered bytes,
    /// and a close on the far side stays invisible (no FIN crosses a
    /// partition). Healing restores normal semantics and re-pushes the
    /// current readiness edges.
    paused: bool,
    /// Notifier of the endpoint that reads this pipe (poked on write/close).
    reader: Option<Notifier>,
    /// Notifier of the endpoint that writes this pipe (poked when space
    /// frees up or the reader goes away).
    writer: Option<Notifier>,
}

impl Pipe {
    fn new(capacity: usize) -> SharedPipe {
        Arc::new(Mutex::new(Pipe {
            buf: VecDeque::new(),
            capacity,
            closed: false,
            paused: false,
            reader: None,
            writer: None,
        }))
    }
}

type SharedPipe = Arc<Mutex<Pipe>>;

/// One endpoint of an in-memory, bounded, bidirectional byte stream.
///
/// Dropping (or [`SimStream::close`]-ing) an endpoint closes the
/// connection: the peer drains whatever was buffered and then reads EOF;
/// peer writes fail with `BrokenPipe`.
pub struct SimStream {
    /// Peer writes, we read.
    rx: SharedPipe,
    /// We write, peer reads.
    tx: SharedPipe,
    /// Close-on-drop, disabled by [`SimStream::close`] (which already
    /// closed both pipes).
    open: bool,
}

impl SimStream {
    /// A connected pair of endpoints with the given per-direction pipe
    /// capacity.
    pub fn pair_with_capacity(capacity: usize) -> (SimStream, SimStream) {
        let a_to_b = Pipe::new(capacity);
        let b_to_a = Pipe::new(capacity);
        let a = SimStream { rx: b_to_a.clone(), tx: a_to_b.clone(), open: true };
        let b = SimStream { rx: a_to_b, tx: b_to_a, open: true };
        (a, b)
    }

    /// A connected pair with [`DEFAULT_PIPE_CAPACITY`].
    pub fn pair() -> (SimStream, SimStream) {
        SimStream::pair_with_capacity(DEFAULT_PIPE_CAPACITY)
    }

    /// Closes the connection now (both directions). Buffered bytes stay
    /// readable by the peer; after draining them the peer reads EOF.
    pub fn close(&mut self) {
        if !self.open {
            return;
        }
        self.open = false;
        close_pipe(&self.rx);
        close_pipe(&self.tx);
    }

    /// True if the peer endpoint closed the connection. A partition masks
    /// the close — no FIN crosses it — so this reports `false` while
    /// [`SimStream::set_partitioned`] is in force.
    pub fn peer_closed(&self) -> bool {
        let rx = self.rx.lock().unwrap();
        rx.closed && !rx.paused
    }

    /// Simulates a network partition on this connection (both
    /// directions): while partitioned, reads and writes on *either*
    /// endpoint return `WouldBlock` — buffered bytes are neither
    /// deliverable nor droppable, and a close stays invisible until the
    /// partition heals. Healing (`false`) re-pushes the current readiness
    /// edges so registered endpoints pick up where the wire left off.
    /// Idempotent in both directions.
    pub fn set_partitioned(&self, partitioned: bool) {
        for pipe in [&self.rx, &self.tx] {
            let mut p = pipe.lock().unwrap();
            if p.paused == partitioned {
                continue;
            }
            p.paused = partitioned;
            if !partitioned {
                // Healed: surface whatever became true behind the
                // partition. Spurious edges are fine — consumers are
                // edge-triggered and read/write to WouldBlock.
                if let Some(reader) = &p.reader {
                    if !p.buf.is_empty() || p.closed {
                        reader.notify_readable();
                    }
                }
                if let Some(writer) = &p.writer {
                    if p.buf.len() < p.capacity || p.closed {
                        writer.notify_writable();
                    }
                }
            }
        }
    }

    /// True while [`SimStream::set_partitioned`] is in force.
    pub fn partitioned(&self) -> bool {
        self.rx.lock().unwrap().paused
    }
}

fn close_pipe(pipe: &SharedPipe) {
    let mut p = pipe.lock().unwrap();
    p.closed = true;
    // Wake both endpoints: the reader to observe the EOF, the writer to
    // observe the broken pipe instead of waiting for space forever.
    if let Some(reader) = &p.reader {
        reader.notify_readable();
    }
    if let Some(writer) = &p.writer {
        writer.notify_writable();
    }
}

impl Drop for SimStream {
    fn drop(&mut self) {
        self.close();
    }
}

impl Read for SimStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut pipe = self.rx.lock().unwrap();
        if pipe.paused {
            return Err(io::Error::from(io::ErrorKind::WouldBlock));
        }
        if pipe.buf.is_empty() {
            if pipe.closed {
                return Ok(0); // EOF
            }
            return Err(io::Error::from(io::ErrorKind::WouldBlock));
        }
        let n = buf.len().min(pipe.buf.len());
        for slot in buf.iter_mut().take(n) {
            *slot = pipe.buf.pop_front().expect("checked non-empty");
        }
        // Space freed: the writing endpoint may proceed.
        if let Some(writer) = &pipe.writer {
            writer.notify_writable();
        }
        Ok(n)
    }
}

impl Write for SimStream {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut pipe = self.tx.lock().unwrap();
        if pipe.paused {
            return Err(io::Error::from(io::ErrorKind::WouldBlock));
        }
        if pipe.closed {
            return Err(io::Error::from(io::ErrorKind::BrokenPipe));
        }
        let space = pipe.capacity.saturating_sub(pipe.buf.len());
        if space == 0 {
            return Err(io::Error::from(io::ErrorKind::WouldBlock));
        }
        let n = data.len().min(space);
        pipe.buf.extend(&data[..n]);
        if let Some(reader) = &pipe.reader {
            reader.notify_readable();
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Source for SimStream {
    fn register(&mut self, notifier: Notifier) -> io::Result<()> {
        {
            let mut rx = self.rx.lock().unwrap();
            rx.reader = Some(notifier.clone());
            // Initial edge: already-buffered bytes (or a peer that closed
            // before registration) must not be lost.
            if !rx.buf.is_empty() || rx.closed {
                notifier.notify_readable();
            }
        }
        {
            let mut tx = self.tx.lock().unwrap();
            tx.writer = Some(notifier.clone());
            if tx.buf.len() < tx.capacity || tx.closed {
                notifier.notify_writable();
            }
        }
        Ok(())
    }

    fn deregister(&mut self) -> io::Result<()> {
        self.rx.lock().unwrap().reader = None;
        self.tx.lock().unwrap().writer = None;
        Ok(())
    }
}

/// Accept queue state shared between a [`SimListener`] and its
/// [`SimConnector`] handles.
struct ListenerShared {
    pending: VecDeque<SimStream>,
    notifier: Option<Notifier>,
    pipe_capacity: usize,
    closed: bool,
}

/// The accepting end of simulated connections.
pub struct SimListener {
    shared: Arc<Mutex<ListenerShared>>,
}

impl SimListener {
    /// A listener whose accepted connections use [`DEFAULT_PIPE_CAPACITY`].
    pub fn new() -> SimListener {
        SimListener::with_pipe_capacity(DEFAULT_PIPE_CAPACITY)
    }

    /// A listener whose accepted connections use the given per-direction
    /// pipe capacity.
    pub fn with_pipe_capacity(pipe_capacity: usize) -> SimListener {
        SimListener {
            shared: Arc::new(Mutex::new(ListenerShared {
                pending: VecDeque::new(),
                notifier: None,
                pipe_capacity: pipe_capacity.max(1),
                closed: false,
            })),
        }
    }

    /// A cloneable handle clients use to connect.
    pub fn connector(&self) -> SimConnector {
        SimConnector { shared: self.shared.clone() }
    }

    /// Accepts one pending connection, or `WouldBlock` if none is queued.
    pub fn accept(&mut self) -> io::Result<SimStream> {
        let mut shared = self.shared.lock().unwrap();
        match shared.pending.pop_front() {
            Some(stream) => Ok(stream),
            None => Err(io::Error::from(io::ErrorKind::WouldBlock)),
        }
    }
}

impl Default for SimListener {
    fn default() -> Self {
        SimListener::new()
    }
}

impl Drop for SimListener {
    fn drop(&mut self) {
        self.shared.lock().unwrap().closed = true;
    }
}

impl Source for SimListener {
    fn register(&mut self, notifier: Notifier) -> io::Result<()> {
        let mut shared = self.shared.lock().unwrap();
        if !shared.pending.is_empty() {
            notifier.notify_readable();
        }
        shared.notifier = Some(notifier);
        Ok(())
    }

    fn deregister(&mut self) -> io::Result<()> {
        self.shared.lock().unwrap().notifier = None;
        Ok(())
    }
}

/// Client-side connect handle of a [`SimListener`]; cloneable and
/// sendable so load generators can connect from any thread.
#[derive(Clone)]
pub struct SimConnector {
    shared: Arc<Mutex<ListenerShared>>,
}

impl SimConnector {
    /// Opens a connection: the returned endpoint is the client's, the
    /// peer endpoint lands in the listener's accept queue (waking its
    /// poll). Fails with `ConnectionRefused` once the listener is gone.
    pub fn connect(&self) -> io::Result<SimStream> {
        let mut shared = self.shared.lock().unwrap();
        if shared.closed {
            return Err(io::Error::from(io::ErrorKind::ConnectionRefused));
        }
        let (client, server) = SimStream::pair_with_capacity(shared.pipe_capacity);
        shared.pending.push_back(server);
        if let Some(notifier) = &shared.notifier {
            notifier.notify_readable();
        }
        Ok(client)
    }
}

#[cfg(test)]
// The tests intentionally issue single short read/write calls to probe
// partial-progress and WouldBlock edges, asserting the returned counts
// where they matter.
#[allow(clippy::unused_io_amount)]
mod tests {
    use super::*;

    fn poll_ready(poll: &mut Poll) -> Vec<(Token, bool, bool)> {
        let mut events = Events::with_capacity(64);
        poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
        events.iter().map(|e| (e.token(), e.is_readable(), e.is_writable())).collect()
    }

    #[test]
    fn pair_reads_writes_and_eofs() {
        let (mut a, mut b) = SimStream::pair();
        assert!(matches!(
            a.read(&mut [0u8; 4]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock
        ));
        assert_eq!(b.write(b"hello").unwrap(), 5);
        let mut buf = [0u8; 8];
        assert_eq!(a.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
        b.write(b"tail").unwrap();
        drop(b);
        // Buffered bytes drain before EOF.
        assert_eq!(a.read(&mut buf).unwrap(), 4);
        assert_eq!(a.read(&mut buf).unwrap(), 0, "EOF after drain");
        assert!(matches!(
            a.write(b"x"),
            Err(e) if e.kind() == io::ErrorKind::BrokenPipe
        ));
    }

    #[test]
    fn bounded_pipe_applies_backpressure() {
        let (mut a, mut b) = SimStream::pair_with_capacity(4);
        assert_eq!(a.write(b"123456").unwrap(), 4, "partial write up to capacity");
        assert!(matches!(
            a.write(b"x"),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock
        ));
        let mut buf = [0u8; 2];
        b.read(&mut buf).unwrap();
        assert_eq!(a.write(b"xy").unwrap(), 2, "space freed by the reader");
    }

    #[test]
    fn poll_reports_readiness_edges_in_token_order() {
        let mut poll = Poll::new().unwrap();
        let registry = poll.registry();
        let (mut a1, mut b1) = SimStream::pair();
        let (mut a2, mut b2) = SimStream::pair();
        registry.register(&mut a2, Token(9), Interest::READABLE).unwrap();
        registry.register(&mut a1, Token(3), Interest::READABLE).unwrap();
        // Wakeups arrive out of token order; the poll drains in order.
        b2.write(b"x").unwrap();
        b1.write(b"y").unwrap();
        let got = poll_ready(&mut poll);
        let tokens: Vec<Token> = got.iter().map(|(t, ..)| *t).collect();
        assert_eq!(tokens, vec![Token(3), Token(9)]);
        // Edge consumed: nothing new, nothing reported.
        assert!(poll_ready(&mut poll).is_empty());
        // Reading to WouldBlock and writing again produces a fresh edge.
        let mut buf = [0u8; 8];
        let _ = a1.read(&mut buf);
        let _ = a2.read(&mut buf);
        b1.write(b"z").unwrap();
        assert_eq!(poll_ready(&mut poll), vec![(Token(3), true, false)]);
    }

    #[test]
    fn registration_pushes_current_readiness() {
        let mut poll = Poll::new().unwrap();
        let registry = poll.registry();
        let (mut a, mut b) = SimStream::pair();
        b.write(b"early").unwrap();
        registry.register(&mut a, Token(1), Interest::READABLE | Interest::WRITABLE).unwrap();
        let got = poll_ready(&mut poll);
        assert_eq!(got.len(), 1);
        assert!(got[0].1, "pre-registration bytes are not lost");
        assert!(got[0].2, "an open pipe with space is writable");
    }

    #[test]
    fn close_wakes_registered_peer() {
        let mut poll = Poll::new().unwrap();
        let registry = poll.registry();
        let (mut a, b) = SimStream::pair();
        registry.register(&mut a, Token(5), Interest::READABLE).unwrap();
        assert!(!poll_ready(&mut poll).iter().any(|(t, ..)| *t == Token(5)));
        drop(b);
        let got = poll_ready(&mut poll);
        assert_eq!(got.len(), 1, "close is a readable edge (EOF observable)");
        assert!(a.peer_closed());
        assert_eq!(a.read(&mut [0u8; 4]).unwrap(), 0);
    }

    #[test]
    fn listener_accepts_in_connect_order() {
        let mut poll = Poll::new().unwrap();
        let registry = poll.registry();
        let mut listener = SimListener::new();
        registry.register(&mut listener, Token(0), Interest::READABLE).unwrap();
        let connector = listener.connector();
        let mut c1 = connector.connect().unwrap();
        let _c2 = connector.connect().unwrap();
        let got = poll_ready(&mut poll);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, Token(0));
        let mut s1 = listener.accept().unwrap();
        let _s2 = listener.accept().unwrap();
        assert!(matches!(
            listener.accept(),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock
        ));
        c1.write(b"hi").unwrap();
        let mut buf = [0u8; 2];
        s1.read(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
    }

    #[test]
    fn connect_after_listener_drop_is_refused() {
        let listener = SimListener::new();
        let connector = listener.connector();
        drop(listener);
        assert!(matches!(
            connector.connect(),
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused
        ));
    }

    #[test]
    fn waker_wakes_a_blocked_poll_from_another_thread() {
        let mut poll = Poll::new().unwrap();
        let waker = Waker::new(&poll.registry(), Token(99)).unwrap();
        let handle = std::thread::spawn(move || {
            waker.wake().unwrap();
        });
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, None).unwrap();
        handle.join().unwrap();
        assert_eq!(events.iter().next().unwrap().token(), Token(99));
    }

    #[test]
    fn events_capacity_spills_to_next_poll() {
        let mut poll = Poll::new().unwrap();
        let registry = poll.registry();
        let mut streams = Vec::new();
        for k in 0..5usize {
            let (mut a, mut b) = SimStream::pair();
            registry.register(&mut a, Token(k), Interest::READABLE).unwrap();
            b.write(b"x").unwrap();
            streams.push((a, b));
        }
        let mut events = Events::with_capacity(2);
        poll.poll(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert_eq!(events.len(), 2);
        poll.poll(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert_eq!(events.len(), 2);
        poll.poll(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert_eq!(events.len(), 1, "all five edges delivered across polls");
    }

    #[test]
    fn partition_pauses_both_directions_and_masks_close() {
        let mut poll = Poll::new().unwrap();
        let registry = poll.registry();
        let (mut a, mut b) = SimStream::pair();
        assert_eq!(b.write(b"pre").unwrap(), 3);
        a.set_partitioned(true);
        assert!(b.partitioned(), "partition is a property of the link, not one endpoint");
        // Neither buffered bytes nor fresh writes cross the partition.
        assert!(matches!(a.read(&mut [0u8; 4]), Err(e) if e.kind() == io::ErrorKind::WouldBlock));
        assert!(matches!(a.write(b"x"), Err(e) if e.kind() == io::ErrorKind::WouldBlock));
        assert!(matches!(b.write(b"x"), Err(e) if e.kind() == io::ErrorKind::WouldBlock));
        // A close behind the partition stays invisible (no FIN crosses).
        b.close();
        assert!(!a.peer_closed(), "partition masks the peer's close");
        assert!(matches!(a.read(&mut [0u8; 4]), Err(e) if e.kind() == io::ErrorKind::WouldBlock));
        // Healing re-pushes readiness and surfaces bytes, then EOF.
        registry.register(&mut a, Token(2), Interest::READABLE).unwrap();
        let _ = poll_ready(&mut poll);
        a.set_partitioned(false);
        assert!(poll_ready(&mut poll).iter().any(|(t, r, _)| *t == Token(2) && *r));
        let mut buf = [0u8; 8];
        assert_eq!(a.read(&mut buf).unwrap(), 3, "buffered bytes survive the partition");
        assert_eq!(&buf[..3], b"pre");
        assert_eq!(a.read(&mut buf).unwrap(), 0, "then the masked close surfaces as EOF");
        assert!(a.peer_closed());
    }

    #[test]
    fn deregistered_source_stops_reporting() {
        let mut poll = Poll::new().unwrap();
        let registry = poll.registry();
        let (mut a, mut b) = SimStream::pair();
        registry.register(&mut a, Token(7), Interest::READABLE).unwrap();
        let _ = poll_ready(&mut poll); // drain the registration edge
        registry.deregister(&mut a).unwrap();
        b.write(b"x").unwrap();
        assert!(poll_ready(&mut poll).is_empty());
    }
}
