//! Offline, API-compatible subset of the `crossbeam` crate.
//!
//! Only [`channel`] is provided (the slice this workspace uses), backed
//! by `std::sync::mpsc`. Semantics relevant to the broker's notification
//! engine are preserved: unbounded FIFO delivery, `recv` blocking until
//! the channel is closed and drained, and `try_recv` distinguishing
//! "empty" from "disconnected".

pub mod channel {
    //! Multi-producer channels mirroring `crossbeam_channel`'s API.

    use std::sync::mpsc;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders still exist.
        Empty,
        /// All senders have disconnected and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when the channel is closed.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Returns an iterator that blocks per item until disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_disconnect_semantics() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn worker_thread_drains_after_close() {
            let (tx, rx) = unbounded();
            let worker = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            });
            for k in 0..100 {
                tx.send(k).unwrap();
            }
            drop(tx);
            assert_eq!(worker.join().unwrap().len(), 100);
        }
    }
}
