//! Offline, API-compatible subset of the `crossbeam` crate.
//!
//! Two slices are provided (the ones this workspace uses):
//!
//! * [`channel`] — unbounded MPMC-style channels backed by
//!   `std::sync::mpsc`. Semantics relevant to the broker's notification
//!   engine are preserved: unbounded FIFO delivery, `recv` blocking until
//!   the channel is closed and drained, and `try_recv` distinguishing
//!   "empty" from "disconnected".
//! * [`thread`] — `crossbeam_utils`-style scoped threads backed by
//!   `std::thread::scope`, used by the sharded matcher's worker pool.

pub mod channel {
    //! Multi-producer channels mirroring `crossbeam_channel`'s API.

    use std::sync::mpsc;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders still exist.
        Empty,
        /// All senders have disconnected and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when the channel is closed.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Returns an iterator that blocks per item until disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_disconnect_semantics() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn worker_thread_drains_after_close() {
            let (tx, rx) = unbounded();
            let worker = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            });
            for k in 0..100 {
                tx.send(k).unwrap();
            }
            drop(tx);
            assert_eq!(worker.join().unwrap().len(), 100);
        }
    }
}

pub mod thread {
    //! Scoped threads mirroring `crossbeam::thread`'s API.
    //!
    //! Spawned closures receive a `&Scope` (so workers can spawn more
    //! workers) and borrow non-`'static` data from the caller's stack.
    //! [`scope`] joins every unjoined thread before returning, exactly
    //! like the real crate; a panic in an unjoined child surfaces as the
    //! `Err` variant instead of unwinding through the caller.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A panic payload from a joined or collected thread.
    pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

    /// Handle for spawning scoped threads; passed to [`scope`]'s closure
    /// and to every spawned closure.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owned handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload if it panicked).
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope so it
        /// can spawn siblings, mirroring `crossbeam::thread::Scope::spawn`.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    /// Creates a scope for spawning threads that borrow from the caller's
    /// stack. All threads spawned inside are joined before `scope`
    /// returns. Returns `Err` if the closure or any unjoined child thread
    /// panicked (the real crate only reports unjoined children; folding
    /// the closure's own panic in keeps the stub panic-safe).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn scoped_threads_borrow_stack_data() {
            let data = [1u64, 2, 3, 4];
            let total = scope(|s| {
                let handles: Vec<_> =
                    data.chunks(2).map(|c| s.spawn(move |_| c.iter().sum::<u64>())).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn workers_can_spawn_siblings() {
            let n = scope(|s| {
                let h = s.spawn(|s2| {
                    let inner = s2.spawn(|_| 21u32);
                    inner.join().unwrap() * 2
                });
                h.join().unwrap()
            })
            .unwrap();
            assert_eq!(n, 42);
        }

        #[test]
        fn mutable_chunks_are_disjointly_borrowed() {
            let mut cells = [0u64; 8];
            scope(|s| {
                for chunk in cells.chunks_mut(3) {
                    s.spawn(move |_| {
                        for c in chunk {
                            *c += 7;
                        }
                    });
                }
            })
            .unwrap();
            assert!(cells.iter().all(|&c| c == 7));
        }

        #[test]
        fn panics_surface_as_err_not_unwind() {
            let result = scope(|s| {
                s.spawn(|_| panic!("worker died"));
            });
            assert!(result.is_err());
        }
    }
}
