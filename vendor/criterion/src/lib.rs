//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the minimal surface its `[[bench]]` targets use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Instead of
//! statistical sampling it runs each benchmark for a handful of timed
//! iterations and prints a mean per-iteration figure — enough to keep
//! every bench compiling, runnable and honest about relative magnitude,
//! without the real crate's analysis machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (delegates to `std::hint`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { full: format!("{}/{}", function.into(), parameter) }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { full: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId { full: name.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { full: name }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores wall budgets.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { iters: self.iters, elapsed: Duration::ZERO };
        f(&mut bencher, input);
        report(&self.name, &id.full, bencher.iters, bencher.elapsed);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { iters: self.iters, elapsed: Duration::ZERO };
        f(&mut bencher);
        report(&self.name, &id.full, bencher.iters, bencher.elapsed);
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(&mut self) {}
}

/// Throughput annotation (accepted and ignored by the stub).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Keep `cargo bench` fast: a few timed iterations per benchmark.
        // CRITERION_STUB_ITERS overrides for anyone who wants more signal.
        let iters =
            std::env::var("CRITERION_STUB_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);
        Criterion { iters }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let iters = self.iters;
        BenchmarkGroup { name: name.into(), iters, _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { iters: self.iters, elapsed: Duration::ZERO };
        f(&mut bencher);
        report("bench", name, bencher.iters, bencher.elapsed);
        self
    }
}

fn report(group: &str, id: &str, iters: u64, elapsed: Duration) {
    let per_iter = if iters == 0 { Duration::ZERO } else { elapsed / iters as u32 };
    println!("{group}/{id}: {per_iter:?}/iter over {iters} iters (criterion stub)");
}

/// Declares a benchmark group runner, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
