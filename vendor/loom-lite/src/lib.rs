//! Offline, minimal deterministic-interleaving model checker with a
//! loom-shaped API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of `loom`'s concept it needs: run a
//! closure under **every bounded interleaving** of its synchronization
//! operations and fail loudly — with a replayable schedule — on the
//! first interleaving that panics, deadlocks, or violates an assertion.
//!
//! # How it explores
//!
//! Model threads are real OS threads under a strict-handoff scheduler:
//! exactly one thread runs at a time, and every instrumented operation
//! (lock acquire/release, atomic access, spawn, join) is a scheduling
//! point. The driver walks the tree of scheduling decisions depth-first,
//! bounded by [`model::Builder::preemption_bound`] (exhaustive within
//! the bound), plus schedule- and step-count budgets. The first schedule
//! explored is the sequential one; each backtrack introduces one more
//! context switch.
//!
//! Unlike loom, the primitives are *lenient outside a model*: without an
//! active exploration they behave exactly like `std`/`parking_lot`
//! types, so a whole workspace can be compiled against
//! `stopss_types::sync` (the facade that re-exports either this crate or
//! the plain primitives) and only the dedicated model suites pay for
//! instrumentation.
//!
//! # Fidelity bounds
//!
//! Interleavings are explored at sequential-consistency granularity;
//! weak-memory reorderings are not modeled (see [`sync`]). `Arc`,
//! channels and `OnceLock` pass through to `std` un-instrumented; model
//! scenarios avoid racing on them.
//!
//! ```
//! use loom_lite::sync::atomic::{AtomicUsize, Ordering};
//! use loom_lite::sync::Arc;
//!
//! let report = loom_lite::model(|| {
//!     let counter = Arc::new(AtomicUsize::new(0));
//!     let c = counter.clone();
//!     let t = loom_lite::thread::spawn(move || {
//!         c.fetch_add(1, Ordering::SeqCst);
//!     });
//!     counter.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(counter.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.complete);
//! ```

pub mod model;
mod scheduler;
pub mod sync;
pub mod thread;

pub use model::{model, replay, Builder, Outcome, Report};

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex, RwLock};
    use super::{model, replay, Builder};

    #[test]
    fn explores_more_than_one_schedule() {
        let report = model(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = a.clone();
            let t = super::thread::spawn(move || {
                a2.store(1, Ordering::SeqCst);
            });
            let _ = a.load(Ordering::SeqCst);
            t.join().unwrap();
        });
        assert!(report.complete);
        assert!(report.schedules > 1, "a racing load/store explores both orders");
    }

    #[test]
    fn catches_lost_update_on_unsynchronized_counter() {
        // Classic read-modify-write race: two increments built from a
        // separate load and store lose one update under the unlucky
        // interleaving. The checker must find it.
        let outcome = Builder::default().check_outcome(|| {
            let counter = Arc::new(AtomicUsize::new(0));
            let c = counter.clone();
            let t = super::thread::spawn(move || {
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
            });
            let v = counter.load(Ordering::SeqCst);
            counter.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 2, "an update was lost");
        });
        let (message, schedule) = outcome.failure.expect("the lost update must be caught");
        assert!(message.contains("an update was lost"), "unexpected failure: {message}");
        // The failing schedule replays deterministically.
        let replayed = replay(&schedule, || {
            let counter = Arc::new(AtomicUsize::new(0));
            let c = counter.clone();
            let t = super::thread::spawn(move || {
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
            });
            let v = counter.load(Ordering::SeqCst);
            counter.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 2, "an update was lost");
        });
        assert!(replayed.is_some(), "replaying the recorded schedule reproduces the failure");
    }

    #[test]
    fn mutex_protected_counter_is_clean() {
        let report = model(|| {
            let counter = Arc::new(Mutex::new(0usize));
            let c = counter.clone();
            let t = super::thread::spawn(move || {
                *c.lock() += 1;
            });
            *counter.lock() += 1;
            t.join().unwrap();
            assert_eq!(*counter.lock(), 2);
        });
        assert!(report.complete);
    }

    #[test]
    fn detects_abba_deadlock() {
        let outcome = Builder::default().check_outcome(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let t = super::thread::spawn(move || {
                let _a = a2.lock();
                let _b = b2.lock();
            });
            let _b = b.lock();
            let _a = a.lock();
            drop((_a, _b));
            t.join().unwrap();
        });
        let (message, _) = outcome.failure.expect("the ABBA deadlock must be caught");
        assert!(message.contains("deadlock"), "unexpected failure: {message}");
    }

    #[test]
    fn rwlock_writer_excludes_reader_state() {
        // A writer that makes the state momentarily inconsistent must
        // never be observed mid-write through the read side.
        let report = model(|| {
            let pair = Arc::new(RwLock::new((0usize, 0usize)));
            let p = pair.clone();
            let t = super::thread::spawn(move || {
                let mut guard = p.write();
                guard.0 += 1;
                guard.1 += 1;
            });
            let guard = pair.read();
            assert_eq!(guard.0, guard.1, "read saw a half-applied write");
            drop(guard);
            t.join().unwrap();
        });
        assert!(report.complete);
    }

    #[test]
    fn preemption_bound_zero_runs_sequentially() {
        let report = Builder { preemption_bound: 0, ..Builder::default() }.check(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = a.clone();
            let t = super::thread::spawn(move || {
                a2.fetch_add(1, Ordering::SeqCst);
            });
            a.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
        });
        assert!(report.complete);
    }

    #[test]
    fn lenient_outside_model() {
        // Outside a model run the primitives are plain std-backed types.
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let rw = RwLock::new(7);
        assert_eq!(*rw.read(), 7);
        *rw.write() = 8;
        assert_eq!(rw.into_inner(), 8);
        let a = AtomicUsize::new(1);
        assert_eq!(a.fetch_add(1, Ordering::Relaxed), 1);
        let t = super::thread::spawn(|| 41 + 1);
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn three_threads_on_one_mutex_conserve() {
        let report = model(|| {
            let counter = Arc::new(Mutex::new(0usize));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = counter.clone();
                    super::thread::spawn(move || {
                        *c.lock() += 1;
                    })
                })
                .collect();
            *counter.lock() += 1;
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*counter.lock(), 3);
        });
        assert!(report.schedules > 1);
    }
}
