//! Instrumented synchronization primitives (loom-shaped API).
//!
//! Inside a model run every acquisition, release, and atomic operation
//! is a scheduling point of the exploration; outside one (the *lenient*
//! mode loom itself does not have) every type behaves exactly like its
//! `std`/`parking_lot` counterpart, so the same facade can back
//! ordinary builds and tests.
//!
//! # Fidelity bounds
//!
//! The checker explores interleavings at **sequential-consistency**
//! granularity: every instrumented operation is one indivisible step,
//! and weak-memory reorderings (`Relaxed`/`Acquire`/`Release` effects)
//! are *not* modeled. That is exactly the right tool for this
//! workspace, whose project rule (`stopss-lint`'s `ordering-justified`)
//! requires every non-`SeqCst` ordering to be justified as a monotone
//! counter or mutex-serialized access — properties that hold under any
//! ordering iff they hold under SC. `Arc` is re-exported from `std`
//! un-instrumented: reference-count races are not in scope.

use std::sync::{self, TryLockError};

pub use std::sync::Arc;
/// Uninstrumented passthroughs: channels and one-shot cells are used by
/// the facade's consumers, but model scenarios are written to avoid
/// concurrent use of them (see the crate docs).
pub use std::sync::{mpsc, OnceLock, Weak};

use crate::scheduler::{self, alloc_resource_id};

/// Release-side scheduling step shared by the guard destructors. Wakes
/// the resource's waiters, then yields — except while unwinding:
/// `yield_point` aborts failed executions by panicking, and a panic
/// inside a destructor that runs during unwind is a process abort.
fn release_step(resource: usize) {
    if resource == 0 {
        return;
    }
    if let Some((sched, me)) = scheduler::context() {
        sched.wake_waiters(resource);
        if !std::thread::panicking() {
            sched.yield_point(me, true);
        }
    }
}

/// Mutual exclusion with a model-visible acquire/release.
///
/// API-compatible with the vendored `parking_lot::Mutex` subset
/// (non-poisoning `lock`/`try_lock`/`get_mut`/`into_inner`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    resource: usize,
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases (and yields to the scheduler) on
/// drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
    resource: usize,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex { resource: alloc_resource_id(), inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex. Inside a model this is a scheduling point and
    /// contention parks the thread under the scheduler (a cycle is
    /// reported as a deadlock with its schedule).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match scheduler::context() {
            None => {
                let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                MutexGuard { inner: Some(guard), resource: 0 }
            }
            Some((sched, me)) => {
                sched.yield_point(me, true);
                loop {
                    match self.inner.try_lock() {
                        Ok(guard) => {
                            return MutexGuard { inner: Some(guard), resource: self.resource }
                        }
                        Err(TryLockError::Poisoned(e)) => {
                            return MutexGuard {
                                inner: Some(e.into_inner()),
                                resource: self.resource,
                            }
                        }
                        Err(TryLockError::WouldBlock) => sched.block_on(me, self.resource),
                    }
                }
            }
        }
    }

    /// Attempts to acquire the mutex without blocking (still a
    /// scheduling point inside a model).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let resource = match scheduler::context() {
            None => 0,
            Some((sched, me)) => {
                sched.yield_point(me, true);
                self.resource
            }
        };
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard), resource }),
            Err(TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()), resource })
            }
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock *before* waking waiters so the next
        // scheduled waiter's try_lock succeeds.
        self.inner = None;
        release_step(self.resource);
    }
}

/// Reader-writer lock with model-visible acquire/release (see
/// [`Mutex`]).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    resource: usize,
    inner: sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<sync::RwLockReadGuard<'a, T>>,
    resource: usize,
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
    resource: usize,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock { resource: alloc_resource_id(), inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access (a scheduling point inside a model).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match scheduler::context() {
            None => {
                let guard = self.inner.read().unwrap_or_else(|e| e.into_inner());
                RwLockReadGuard { inner: Some(guard), resource: 0 }
            }
            Some((sched, me)) => {
                sched.yield_point(me, true);
                loop {
                    match self.inner.try_read() {
                        Ok(guard) => {
                            return RwLockReadGuard { inner: Some(guard), resource: self.resource }
                        }
                        Err(TryLockError::Poisoned(e)) => {
                            return RwLockReadGuard {
                                inner: Some(e.into_inner()),
                                resource: self.resource,
                            }
                        }
                        Err(TryLockError::WouldBlock) => sched.block_on(me, self.resource),
                    }
                }
            }
        }
    }

    /// Acquires exclusive write access (a scheduling point inside a
    /// model).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match scheduler::context() {
            None => {
                let guard = self.inner.write().unwrap_or_else(|e| e.into_inner());
                RwLockWriteGuard { inner: Some(guard), resource: 0 }
            }
            Some((sched, me)) => {
                sched.yield_point(me, true);
                loop {
                    match self.inner.try_write() {
                        Ok(guard) => {
                            return RwLockWriteGuard { inner: Some(guard), resource: self.resource }
                        }
                        Err(TryLockError::Poisoned(e)) => {
                            return RwLockWriteGuard {
                                inner: Some(e.into_inner()),
                                resource: self.resource,
                            }
                        }
                        Err(TryLockError::WouldBlock) => sched.block_on(me, self.resource),
                    }
                }
            }
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        release_step(self.resource);
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        release_step(self.resource);
    }
}

/// Instrumented atomics: every operation is one sequentially-consistent
/// step of the exploration (the `Ordering` argument is accepted for API
/// compatibility and checked no further — see the module docs).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::scheduler;

    /// Yields to the scheduler when inside a model run.
    fn step() {
        if let Some((sched, me)) = scheduler::context() {
            sched.yield_point(me, true);
        }
    }

    macro_rules! instrumented_atomic {
        ($name:ident, $std:ident, $value:ty) => {
            /// Instrumented atomic (each operation is one scheduling
            /// step; see the module docs for the memory-model bounds).
            #[derive(Debug, Default)]
            pub struct $name(std::sync::atomic::$std);

            impl $name {
                /// Creates a new atomic.
                pub const fn new(value: $value) -> Self {
                    $name(std::sync::atomic::$std::new(value))
                }

                /// Loads the value.
                pub fn load(&self, order: Ordering) -> $value {
                    step();
                    self.0.load(order)
                }

                /// Stores a value.
                pub fn store(&self, value: $value, order: Ordering) {
                    step();
                    self.0.store(value, order)
                }

                /// Swaps the value, returning the previous one.
                pub fn swap(&self, value: $value, order: Ordering) -> $value {
                    step();
                    self.0.swap(value, order)
                }

                /// Compare-and-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $value,
                    new: $value,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$value, $value> {
                    step();
                    self.0.compare_exchange(current, new, success, failure)
                }

                /// Returns a mutable reference to the value.
                pub fn get_mut(&mut self) -> &mut $value {
                    self.0.get_mut()
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $value {
                    self.0.into_inner()
                }
            }
        };
    }

    macro_rules! instrumented_atomic_arith {
        ($name:ident, $value:ty) => {
            impl $name {
                /// Adds to the value, returning the previous one.
                pub fn fetch_add(&self, value: $value, order: Ordering) -> $value {
                    step();
                    self.0.fetch_add(value, order)
                }

                /// Subtracts from the value, returning the previous one.
                pub fn fetch_sub(&self, value: $value, order: Ordering) -> $value {
                    step();
                    self.0.fetch_sub(value, order)
                }

                /// Computes the maximum, returning the previous value.
                pub fn fetch_max(&self, value: $value, order: Ordering) -> $value {
                    step();
                    self.0.fetch_max(value, order)
                }
            }
        };
    }

    instrumented_atomic!(AtomicUsize, AtomicUsize, usize);
    instrumented_atomic!(AtomicU64, AtomicU64, u64);
    instrumented_atomic!(AtomicU32, AtomicU32, u32);
    instrumented_atomic!(AtomicBool, AtomicBool, bool);

    instrumented_atomic_arith!(AtomicUsize, usize);
    instrumented_atomic_arith!(AtomicU64, u64);
    instrumented_atomic_arith!(AtomicU32, u32);

    impl AtomicBool {
        /// Logical-or with the value, returning the previous one.
        pub fn fetch_or(&self, value: bool, order: Ordering) -> bool {
            step();
            self.0.fetch_or(value, order)
        }

        /// Logical-and with the value, returning the previous one.
        pub fn fetch_and(&self, value: bool, order: Ordering) -> bool {
            step();
            self.0.fetch_and(value, order)
        }
    }
}
