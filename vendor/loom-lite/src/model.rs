//! The exploration driver: run a closure under every (bounded)
//! interleaving of its instrumented operations.
//!
//! [`model`] is the loom-shaped entry point: it panics on the first
//! schedule that fails (with the schedule itself, so it can be
//! [`replay`]ed). [`Builder`] exposes the bounds, and
//! [`Builder::check_outcome`] returns the failing schedule instead of
//! panicking — the shape the test suites use to *assert* that a buggy
//! discipline is caught.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::scheduler::{self, Abort, Failure, Scheduler};
use crate::thread::panic_message;

/// Exploration bounds and entry points.
///
/// Exploration is depth-first over scheduling decisions, bounded three
/// ways: at most `preemption_bound` involuntary context switches per
/// schedule (exhaustive within that bound — the classic result is that
/// small preemption counts find almost all real bugs), at most
/// `max_schedules` schedules, and at most `max_steps` instrumented
/// operations per schedule.
#[derive(Clone, Copy, Debug)]
pub struct Builder {
    /// Maximum preemptions (involuntary switches) per schedule.
    pub preemption_bound: usize,
    /// Maximum schedules explored before reporting `complete: false`.
    pub max_schedules: usize,
    /// Maximum instrumented steps in one schedule (runaway guard).
    pub max_steps: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder { preemption_bound: 2, max_schedules: 20_000, max_steps: 20_000 }
    }
}

/// What an exploration did.
#[derive(Clone, Debug)]
pub struct Report {
    /// Schedules executed.
    pub schedules: usize,
    /// True if the bounded space was exhausted (no schedule left
    /// unexplored within the preemption bound).
    pub complete: bool,
}

/// Outcome of an exploration that tolerates failures (see
/// [`Builder::check_outcome`]).
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Schedules executed (including the failing one, if any).
    pub schedules: usize,
    /// True if the bounded space was exhausted without failure.
    pub complete: bool,
    /// The first failure: human-readable message plus the schedule
    /// (chosen-alternative index per decision) that reproduces it.
    pub failure: Option<(String, Vec<usize>)>,
}

impl Builder {
    /// A builder with the default bounds.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Explores `f` and panics on the first failing schedule, printing
    /// the schedule so it can be replayed. Returns the report when every
    /// explored schedule passes.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let outcome = self.check_outcome(f);
        if let Some((message, schedule)) = outcome.failure {
            panic!(
                "loom-lite: schedule {}/{} failed: {message}\n  failing schedule: {schedule:?}\n  \
                 replay with loom_lite::replay(&{schedule:?}, ...)",
                outcome.schedules, outcome.schedules
            );
        }
        Report { schedules: outcome.schedules, complete: outcome.complete }
    }

    /// Explores `f`, returning the first failure (message + schedule)
    /// instead of panicking. The suites use this to assert that a buggy
    /// concurrency discipline *is* caught, and to document the caught
    /// schedule.
    pub fn check_outcome<F>(&self, f: F) -> Outcome
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut prefix: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        loop {
            schedules += 1;
            let (trace, failure) = run_one(f.clone(), prefix.clone(), self);
            if let Some(failure) = failure {
                return Outcome {
                    schedules,
                    complete: false,
                    failure: Some((failure.message, failure.schedule)),
                };
            }
            // Depth-first backtracking: find the deepest decision with an
            // unexplored alternative and advance it.
            let mut trace = trace;
            let next = loop {
                let Some(last) = trace.pop() else { break None };
                if last.chosen + 1 < last.alternatives.len() {
                    let mut p: Vec<usize> = trace.iter().map(|c| c.chosen).collect();
                    p.push(last.chosen + 1);
                    break Some(p);
                }
            };
            match next {
                Some(p) => prefix = p,
                None => return Outcome { schedules, complete: true, failure: None },
            }
            if schedules >= self.max_schedules {
                return Outcome { schedules, complete: false, failure: None };
            }
        }
    }

    /// Runs `f` once under the given schedule (chosen-alternative index
    /// per decision; decisions past the end take the default). Returns
    /// the failure message if that schedule fails.
    pub fn replay<F>(&self, schedule: &[usize], f: F) -> Option<String>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let (_, failure) = run_one(Arc::new(f), schedule.to_vec(), self);
        failure.map(|f| f.message)
    }
}

/// One execution under one schedule prefix.
fn run_one<F>(
    f: Arc<F>,
    prefix: Vec<usize>,
    builder: &Builder,
) -> (Vec<scheduler::Choice>, Option<Failure>)
where
    F: Fn() + Send + Sync + 'static,
{
    let sched = Arc::new(Scheduler::new(prefix, builder.preemption_bound, builder.max_steps));
    let tid = sched.register_thread();
    debug_assert_eq!(tid, 0, "model closure runs as thread 0");
    let sched_for_thread = sched.clone();
    let main = std::thread::Builder::new()
        .name("loom-lite-0".into())
        .spawn(move || {
            scheduler::set_context(Some((sched_for_thread.clone(), 0)));
            let out = catch_unwind(AssertUnwindSafe(|| f()));
            scheduler::set_context(None);
            if let Err(payload) = out {
                if payload.downcast_ref::<Abort>().is_none() {
                    let msg = panic_message(&*payload);
                    sched_for_thread.record_failure(format!("thread 0 panicked: {msg}"));
                }
            }
            sched_for_thread.finish_thread(0);
        })
        .expect("spawn model main thread");
    let (trace, failure) = sched.wait_done();
    // Join every OS thread of this execution so explorations never
    // accumulate leaked threads.
    let handles: Vec<_> =
        std::mem::take(&mut *sched.os_handles.lock().unwrap_or_else(|e| e.into_inner()));
    for handle in handles {
        let _ = handle.join();
    }
    let _ = main.join();
    (trace, failure)
}

/// Explores every (preemption-bounded) interleaving of `f` with the
/// default bounds, panicking on the first failing schedule. The
/// loom-shaped entry point.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}

/// Replays one recorded schedule with the default bounds; returns the
/// failure message if it fails. Used to pin historical-bug schedules in
/// the suites.
pub fn replay<F>(schedule: &[usize], f: F) -> Option<String>
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().replay(schedule, f)
}
