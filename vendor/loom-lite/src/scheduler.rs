//! The strict-handoff scheduler behind every model execution.
//!
//! Model threads are real OS threads, but exactly one is ever *active*:
//! every instrumented operation ([`Scheduler::yield_point`]) hands
//! control back to the scheduler, which picks the next thread to run —
//! either replaying a recorded decision prefix or extending it with the
//! default choice (keep running the current thread). Each decision
//! records the full set of runnable alternatives, so the exploration
//! driver in [`crate::model`] can backtrack depth-first over the whole
//! (preemption-bounded) schedule tree.
//!
//! Blocking primitives never block for real inside a model: a thread
//! that fails a `try_lock` parks itself as *blocked on the resource* and
//! the unlocking thread wakes every waiter, which then retries under the
//! scheduler. A state where no thread is runnable while some are
//! unfinished is reported as a deadlock, with the schedule that reached
//! it.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Model-thread id; `0` is the thread running the model closure.
pub(crate) type Tid = usize;

/// Instrumented resources (locks, join targets) get process-unique ids
/// so blocked threads can be matched to the wake that frees them.
static NEXT_RESOURCE: AtomicUsize = AtomicUsize::new(1);

/// Allocates a fresh resource id (called from `Mutex::new` etc.; cheap
/// and safe outside models too).
pub(crate) fn alloc_resource_id() -> usize {
    NEXT_RESOURCE.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// The scheduler + tid of the current model thread, if any. `None`
    /// means the thread is outside any model run and instrumented types
    /// behave like their `std` counterparts.
    static CONTEXT: RefCell<Option<(Arc<Scheduler>, Tid)>> = const { RefCell::new(None) };
}

/// Returns the scheduler context of the current thread, if it is a
/// model thread.
pub(crate) fn context() -> Option<(Arc<Scheduler>, Tid)> {
    CONTEXT.with(|c| c.borrow().clone())
}

pub(crate) fn set_context(ctx: Option<(Arc<Scheduler>, Tid)>) {
    CONTEXT.with(|c| *c.borrow_mut() = ctx);
}

/// One scheduling decision: which runnable thread ran, out of which
/// alternatives. `chosen` indexes `alternatives`.
#[derive(Clone, Debug)]
pub(crate) struct Choice {
    pub chosen: usize,
    pub alternatives: Vec<Tid>,
}

#[derive(Debug)]
struct ThreadState {
    runnable: bool,
    finished: bool,
    /// The resource this thread is parked on, if any.
    blocked_on: Option<usize>,
}

/// Why an execution ended abnormally.
#[derive(Clone, Debug)]
pub(crate) struct Failure {
    pub message: String,
    /// The chosen-alternative index at every decision point — feed back
    /// through [`crate::model::Builder::replay`] to reproduce.
    pub schedule: Vec<usize>,
}

struct ExecState {
    threads: Vec<ThreadState>,
    active: Tid,
    trace: Vec<Choice>,
    /// Decisions to replay (chosen-alternative indexes).
    prefix: Vec<usize>,
    preemptions: usize,
    steps: usize,
    failure: Option<Failure>,
    /// Deterministic per-execution aliases for process-global resource
    /// ids, so failure messages and traces are stable across runs.
    resource_alias: HashMap<usize, usize>,
}

impl ExecState {
    fn runnable(&self) -> Vec<Tid> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.runnable && !t.finished)
            .map(|(i, _)| i)
            .collect()
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.finished)
    }

    fn schedule_so_far(&self) -> Vec<usize> {
        self.trace.iter().map(|c| c.chosen).collect()
    }
}

/// The shared scheduler of one model execution.
pub(crate) struct Scheduler {
    state: Mutex<ExecState>,
    cv: Condvar,
    pub(crate) preemption_bound: usize,
    pub(crate) max_steps: usize,
    /// OS-thread handles of every model thread, joined by the driver
    /// after each execution so explorations never leak threads.
    pub(crate) os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Panic payload used to unwind model threads when the execution is
/// aborted (deadlock elsewhere, failure in a sibling, budget exhausted).
/// The thread wrapper downgrades it to a quiet exit.
pub(crate) struct Abort;

impl Scheduler {
    pub(crate) fn new(prefix: Vec<usize>, preemption_bound: usize, max_steps: usize) -> Scheduler {
        Scheduler {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                active: 0,
                trace: Vec::new(),
                prefix,
                preemptions: 0,
                steps: 0,
                failure: None,
                resource_alias: HashMap::new(),
            }),
            cv: Condvar::new(),
            preemption_bound,
            max_steps,
            os_handles: Mutex::new(Vec::new()),
        }
    }

    /// Registers a new model thread; returns its tid. New threads start
    /// runnable but not active — they first run when scheduled.
    pub(crate) fn register_thread(&self) -> Tid {
        let mut state = self.state.lock().unwrap();
        state.threads.push(ThreadState { runnable: true, finished: false, blocked_on: None });
        state.threads.len() - 1
    }

    /// A deterministic (per-execution) alias for a resource id.
    fn alias(state: &mut ExecState, resource: usize) -> usize {
        let next = state.resource_alias.len() + 1;
        *state.resource_alias.entry(resource).or_insert(next)
    }

    /// The central decision point. Called by the active thread `me`;
    /// `runnable` says whether `me` may be chosen to continue. Picks the
    /// next thread (replaying the prefix when one is set), then parks
    /// `me` until it is scheduled again. Panics with [`Abort`] when the
    /// execution has failed — the thread wrapper catches it.
    pub(crate) fn yield_point(&self, me: Tid, runnable: bool) {
        let mut state = self.state.lock().unwrap();
        if state.failure.is_some() {
            drop(state);
            std::panic::panic_any(Abort);
        }
        state.steps += 1;
        if state.steps > self.max_steps {
            let schedule = state.schedule_so_far();
            self.fail(
                &mut state,
                Failure {
                    message: format!("step budget exceeded ({} steps)", self.max_steps),
                    schedule,
                },
            );
            drop(state);
            std::panic::panic_any(Abort);
        }
        state.threads[me].runnable = runnable;

        // Alternatives, `me` first so the default (index 0) extends the
        // current thread's run — the first schedule explored is the
        // sequential one, and every later index is a context switch.
        let mut alternatives = Vec::new();
        if runnable {
            alternatives.push(me);
        }
        for tid in state.runnable() {
            if tid != me {
                alternatives.push(tid);
            }
        }
        // Preemption bounding: once the budget is spent, a runnable
        // thread is never switched away from. Forced switches (blocking,
        // finishing) don't count against the budget.
        if runnable && state.preemptions >= self.preemption_bound {
            alternatives.truncate(1);
        }

        if alternatives.is_empty() {
            let blocked: Vec<String> = state
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.finished)
                .map(|(i, t)| match t.blocked_on {
                    Some(rid) => {
                        format!("thread {i} blocked on resource r{}", Self::alias_ro(&state, rid))
                    }
                    None => format!("thread {i} parked"),
                })
                .collect();
            let schedule = state.schedule_so_far();
            self.fail(
                &mut state,
                Failure { message: format!("deadlock: {}", blocked.join(", ")), schedule },
            );
            drop(state);
            std::panic::panic_any(Abort);
        }

        let index = state.trace.len();
        let chosen_idx = if index < state.prefix.len() {
            state.prefix[index].min(alternatives.len() - 1)
        } else {
            0
        };
        let chosen = alternatives[chosen_idx];
        if runnable && chosen != me {
            state.preemptions += 1;
        }
        state.trace.push(Choice { chosen: chosen_idx, alternatives });
        state.active = chosen;
        self.cv.notify_all();
        while state.active != me {
            if state.failure.is_some() {
                drop(state);
                std::panic::panic_any(Abort);
            }
            state = self.cv.wait(state).unwrap();
        }
    }

    fn alias_ro(state: &ExecState, resource: usize) -> usize {
        state.resource_alias.get(&resource).copied().unwrap_or(0)
    }

    /// Parks `me` as blocked on `resource` and schedules someone else.
    /// Returns when `me` is scheduled again (after a wake).
    pub(crate) fn block_on(&self, me: Tid, resource: usize) {
        {
            let mut state = self.state.lock().unwrap();
            Self::alias(&mut state, resource);
            state.threads[me].blocked_on = Some(resource);
        }
        self.yield_point(me, false);
        let mut state = self.state.lock().unwrap();
        state.threads[me].blocked_on = None;
    }

    /// Marks every thread blocked on `resource` runnable again (they
    /// retry their acquisition when next scheduled).
    pub(crate) fn wake_waiters(&self, resource: usize) {
        let mut state = self.state.lock().unwrap();
        for thread in state.threads.iter_mut() {
            if thread.blocked_on == Some(resource) {
                thread.runnable = true;
            }
        }
    }

    /// Marks `me` finished, wakes its joiners, and hands control to the
    /// next runnable thread (or completes the execution).
    pub(crate) fn finish_thread(&self, me: Tid) {
        let mut state = self.state.lock().unwrap();
        state.threads[me].finished = true;
        state.threads[me].runnable = false;
        for thread in state.threads.iter_mut() {
            if thread.blocked_on == Some(join_resource(me)) {
                thread.runnable = true;
            }
        }
        if state.all_finished() || state.failure.is_some() {
            self.cv.notify_all();
            return;
        }
        let runnable = state.runnable();
        let Some(&chosen) = runnable.first() else {
            let schedule = state.schedule_so_far();
            self.fail(
                &mut state,
                Failure { message: "deadlock: all unfinished threads blocked".into(), schedule },
            );
            return;
        };
        // A forced handoff, not a decision: `me` cannot continue, and
        // recording a one-alternative choice would only deepen traces.
        // When several threads are runnable here the next yield point
        // records the real decision among them.
        state.active = chosen;
        self.cv.notify_all();
    }

    /// Records a failure (first one wins) and wakes everyone so model
    /// threads can unwind.
    pub(crate) fn record_failure(&self, message: String) {
        let mut state = self.state.lock().unwrap();
        let schedule = state.schedule_so_far();
        self.fail(&mut state, Failure { message, schedule });
    }

    fn fail(&self, state: &mut ExecState, failure: Failure) {
        if state.failure.is_none() {
            state.failure = Some(failure);
        }
        self.cv.notify_all();
    }

    /// Blocks the *driver* (non-model) thread until the execution is
    /// over, then returns the trace and failure, if any.
    pub(crate) fn wait_done(&self) -> (Vec<Choice>, Option<Failure>) {
        let mut state = self.state.lock().unwrap();
        while !state.all_finished() && state.failure.is_none() {
            state = self.cv.wait(state).unwrap();
        }
        (state.trace.clone(), state.failure.clone())
    }

    /// Parks a freshly spawned model thread until it is first scheduled.
    pub(crate) fn wait_first_schedule(&self, me: Tid) {
        let mut state = self.state.lock().unwrap();
        while state.active != me {
            if state.failure.is_some() {
                drop(state);
                std::panic::panic_any(Abort);
            }
            state = self.cv.wait(state).unwrap();
        }
    }

    /// Whether the execution already failed (used by join loops).
    pub(crate) fn failed(&self) -> bool {
        self.state.lock().unwrap().failure.is_some()
    }
}

/// The synthetic resource a joiner of thread `tid` blocks on. Thread
/// ids and lock resource ids share a space; joins use the high half so
/// they can never collide with [`alloc_resource_id`] allocations.
pub(crate) fn join_resource(tid: Tid) -> usize {
    usize::MAX - tid
}
