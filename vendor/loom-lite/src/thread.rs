//! Model-aware threads (loom-shaped subset of `std::thread`).
//!
//! [`spawn`] inside a model run creates a *model thread*: a real OS
//! thread whose every instrumented operation is a scheduling point of
//! the exploration. Outside a model run it falls through to
//! `std::thread::spawn` so code under the facade keeps working in
//! ordinary builds and tests.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use crate::scheduler::{self, join_resource, Abort, Scheduler, Tid};

/// Handle to a spawned model (or plain) thread.
pub struct JoinHandle<T> {
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    model: Option<(Arc<Scheduler>, Tid)>,
    plain: Option<std::thread::JoinHandle<T>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Inside a
    /// model the wait is a scheduling point (and may block on the
    /// joined thread as a resource); a panic in the thread propagates
    /// as `Err`, exactly like `std::thread::JoinHandle::join`.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(handle) = self.plain {
            return handle.join();
        }
        let (sched, target) = self.model.expect("model join handle has a scheduler");
        let (_, me) = scheduler::context().expect("joined a model thread from outside the model");
        loop {
            if let Some(result) = self.result.lock().unwrap_or_else(|e| e.into_inner()).take() {
                // One more scheduling point so a join is never invisible
                // to the exploration.
                sched.yield_point(me, true);
                return result;
            }
            if sched.failed() {
                std::panic::panic_any(Abort);
            }
            sched.block_on(me, join_resource(target));
        }
    }
}

/// Spawns a thread. Inside a model run the thread participates in the
/// deterministic exploration; outside one this is `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match scheduler::context() {
        None => {
            let result = Arc::new(Mutex::new(None));
            let handle = std::thread::spawn(f);
            JoinHandle { result, model: None, plain: Some(handle) }
        }
        Some((sched, me)) => {
            let tid = sched.register_thread();
            let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
            let slot = result.clone();
            let sched_for_thread = sched.clone();
            let os = std::thread::Builder::new()
                .name(format!("loom-lite-{tid}"))
                .spawn(move || {
                    sched_for_thread.wait_first_schedule(tid);
                    scheduler::set_context(Some((sched_for_thread.clone(), tid)));
                    let out = catch_unwind(AssertUnwindSafe(f));
                    scheduler::set_context(None);
                    match out {
                        Ok(value) => {
                            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(value));
                        }
                        Err(payload) => {
                            if payload.downcast_ref::<Abort>().is_none() {
                                // `&*`: pass the payload itself, not the
                                // `Box` unsized into `dyn Any`.
                                let msg = panic_message(&*payload);
                                sched_for_thread
                                    .record_failure(format!("thread {tid} panicked: {msg}"));
                            }
                            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(Err(payload));
                        }
                    }
                    sched_for_thread.finish_thread(tid);
                })
                .expect("spawn model thread");
            sched.os_handles.lock().unwrap_or_else(|e| e.into_inner()).push(os);
            // The spawn itself is a visible step: the child may run
            // before the parent's next operation.
            sched.yield_point(me, true);
            JoinHandle { result, model: Some((sched, tid)), plain: None }
        }
    }
}

/// Renders a panic payload for failure reports.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Yields to the scheduler (a pure scheduling point). No-op outside a
/// model run.
pub fn yield_now() {
    if let Some((sched, me)) = scheduler::context() {
        sched.yield_point(me, true);
    }
}
