//! Deterministic runner machinery: config, RNG, failure type.

use std::fmt;

/// Global seed folded into every derived stream. Changing it re-rolls
/// every property test in the workspace at once.
pub const GLOBAL_SEED: u64 = 0x5702_5553_2003_0001; // "S-ToPSS 2003" v1

/// Run configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// A failed property case (no shrinking in this offline subset).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given reason.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Derives the per-case seed from the test name and case index (FNV-1a
/// over the name, folded with the global seed and the index).
pub fn derive_seed(test_name: &str, case_index: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ GLOBAL_SEED ^ ((case_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Deterministic generator (SplitMix64): fast, seedable, stateless
/// across platforms.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`; `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "index over empty domain");
        ((self.next_u64() >> 32).wrapping_mul(n as u64) >> 32) as usize
    }

    /// Uniform value in `[lo, hi)` over signed 128-bit arithmetic, so any
    /// primitive integer range fits.
    pub fn range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "empty range strategy");
        let span = (hi - lo) as u128;
        let draw = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        lo + (draw % span) as i128
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Minimal stand-in for `proptest::test_runner::TestRunner`; only what
/// the macro-generated tests need.
#[derive(Clone, Debug)]
pub struct TestRunner {
    config: Config,
}

impl TestRunner {
    /// Creates a runner with the given config.
    pub fn new(config: Config) -> TestRunner {
        TestRunner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_name_sensitive() {
        assert_eq!(derive_seed("a", 0), derive_seed("a", 0));
        assert_ne!(derive_seed("a", 0), derive_seed("a", 1));
        assert_ne!(derive_seed("a", 0), derive_seed("b", 0));
    }

    #[test]
    fn rng_streams_replay() {
        let mut a = TestRng::from_seed(7);
        let mut b = TestRng::from_seed(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_and_index_stay_in_bounds() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..10_000 {
            let v = rng.range_i128(-5, 5);
            assert!((-5..5).contains(&v));
            assert!(rng.index(7) < 7);
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
