//! `any::<T>()` and the [`Arbitrary`] trait.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns cover normals, subnormals, zeros, infinities
        // and NaNs — consumers that need comparability use `to_bits`.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + rng.index(0x5F) as u8) as char
    }
}

impl Arbitrary for () {
    fn arbitrary(_rng: &mut TestRng) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_cover_sign_and_magnitude() {
        let mut rng = TestRng::from_seed(5);
        let mut saw_negative = false;
        let mut saw_large = false;
        for _ in 0..1_000 {
            let v = i64::arbitrary(&mut rng);
            saw_negative |= v < 0;
            saw_large |= v.unsigned_abs() > u32::MAX as u64;
        }
        assert!(saw_negative && saw_large);
    }

    #[test]
    fn bools_hit_both_sides() {
        let mut rng = TestRng::from_seed(6);
        let trues = (0..1_000).filter(|_| bool::arbitrary(&mut rng)).count();
        assert!((300..700).contains(&trues));
    }
}
