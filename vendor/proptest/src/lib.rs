//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of proptest its test suites use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`,
//! strategies for ranges, tuples, `Vec<S>`, simple regex string
//! patterns, [`collection::vec`], [`option::of`], `any::<T>()`,
//! `prop_oneof!` and the [`proptest!`] / `prop_assert*!` macros.
//!
//! Generation is **deterministic**: every test function derives its RNG
//! stream from a fixed global seed, the test's name and the case index,
//! so failures reproduce bit-for-bit across runs and machines (the
//! "pinned seed" discipline the repo's experiments already follow).
//! There is no shrinking — a failing case reports its inputs via
//! `Debug` in the panic message instead.

pub mod test_runner;

pub mod strategy;

pub mod arbitrary;

pub mod collection;

pub mod option;

pub mod string;

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use crate::strategy::{BoxedStrategy, Just, Strategy};

/// Runs every generated case of one property, panicking on the first
/// failure with the case index and derived seed. Used by [`proptest!`].
#[doc(hidden)]
pub fn __run_cases<F>(config: &test_runner::Config, test_name: &str, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    for index in 0..config.cases {
        let seed = test_runner::derive_seed(test_name, index);
        let mut rng = test_runner::TestRng::from_seed(seed);
        if let Err(err) = case(&mut rng) {
            panic!(
                "proptest property `{test_name}` failed at case {index} (seed {seed:#x}): {err}"
            );
        }
    }
}

/// Declares deterministic property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            $crate::__run_cases(&config, stringify!($name), |__proptest_rng| {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);
                )+
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body without panicking the
/// harness (the failure is reported with the generating case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            left,
            format!($($fmt)*)
        );
    }};
}

/// Picks uniformly among several strategies with a common value type,
/// mirroring the unweighted form of `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
