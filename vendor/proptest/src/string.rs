//! String generation from simple regex patterns.
//!
//! Real proptest compiles full regexes; this offline subset supports the
//! shapes the workspace's suites use — character classes (`[a-z ]`,
//! `[ -~]`, negation), literals, `.`, the escapes `\d`/`\w`/`\s`, and
//! the quantifiers `{m,n}` / `{m,}` / `{m}` / `*` / `+` / `?`.

use crate::test_runner::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Clone, Debug)]
enum Element {
    /// Inclusive character ranges to draw from.
    Class(Vec<(char, char)>),
    Literal(char),
}

#[derive(Clone, Debug)]
struct Piece {
    element: Element,
    min: u32,
    max: u32,
}

/// Draws one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = piece.min + rng.index((piece.max - piece.min + 1) as usize) as u32;
        for _ in 0..count {
            match &piece.element {
                Element::Literal(c) => out.push(*c),
                Element::Class(ranges) => out.push(pick_from_class(ranges, rng)),
            }
        }
    }
    out
}

fn pick_from_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u32 = ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
    debug_assert!(total > 0, "empty character class");
    let mut pick = rng.index(total as usize) as u32;
    for (lo, hi) in ranges {
        let span = *hi as u32 - *lo as u32 + 1;
        if pick < span {
            return char::from_u32(*lo as u32 + pick).unwrap_or(*lo);
        }
        pick -= span;
    }
    ranges[0].0
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut k = 0;
    while k < chars.len() {
        let element = match chars[k] {
            '[' => {
                let (class, next) = parse_class(&chars, k + 1);
                k = next;
                class
            }
            '\\' if k + 1 < chars.len() => {
                k += 2;
                escape_element(chars[k - 1])
            }
            '.' => {
                k += 1;
                Element::Class(vec![(' ', '~')])
            }
            c => {
                k += 1;
                Element::Literal(c)
            }
        };
        let (min, max, next) = parse_quantifier(&chars, k);
        k = next;
        pieces.push(Piece { element, min, max });
    }
    pieces
}

fn escape_element(c: char) -> Element {
    match c {
        'd' => Element::Class(vec![('0', '9')]),
        'w' => Element::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
        's' => Element::Class(vec![(' ', ' '), ('\t', '\t')]),
        other => Element::Literal(other),
    }
}

fn parse_class(chars: &[char], mut k: usize) -> (Element, usize) {
    let negated = chars.get(k) == Some(&'^');
    if negated {
        k += 1;
    }
    let mut ranges: Vec<(char, char)> = Vec::new();
    while k < chars.len() && chars[k] != ']' {
        let lo = if chars[k] == '\\' && k + 1 < chars.len() {
            k += 2;
            chars[k - 1]
        } else {
            k += 1;
            chars[k - 1]
        };
        if k + 1 < chars.len() && chars[k] == '-' && chars[k + 1] != ']' {
            let hi = chars[k + 1];
            k += 2;
            ranges.push((lo.min(hi), lo.max(hi)));
        } else {
            ranges.push((lo, lo));
        }
    }
    let k = (k + 1).min(chars.len()); // consume ']'
    if negated {
        let mut kept = Vec::new();
        for c in 0x20u32..0x7F {
            let c = char::from_u32(c).unwrap();
            if !ranges.iter().any(|(lo, hi)| (*lo..=*hi).contains(&c)) {
                kept.push((c, c));
            }
        }
        (Element::Class(kept), k)
    } else {
        (Element::Class(ranges), k)
    }
}

fn parse_quantifier(chars: &[char], k: usize) -> (u32, u32, usize) {
    match chars.get(k) {
        Some('*') => (0, UNBOUNDED_CAP, k + 1),
        Some('+') => (1, UNBOUNDED_CAP, k + 1),
        Some('?') => (0, 1, k + 1),
        Some('{') => {
            let close = chars[k..].iter().position(|c| *c == '}').map(|p| k + p);
            let Some(close) = close else { return (1, 1, k) };
            let body: String = chars[k + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((m, "")) => {
                    let m = m.trim().parse().unwrap_or(0);
                    (m, m + UNBOUNDED_CAP)
                }
                Some((m, n)) => (m.trim().parse().unwrap_or(0), n.trim().parse().unwrap_or(0)),
                None => {
                    let m = body.trim().parse().unwrap_or(1);
                    (m, m)
                }
            };
            (min, max.max(min), close + 1)
        }
        _ => (1, 1, k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_match(pattern: &str, check: impl Fn(&str) -> bool) {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..500 {
            let s = generate_matching(pattern, &mut rng);
            assert!(check(&s), "pattern {pattern:?} produced {s:?}");
        }
    }

    #[test]
    fn class_with_repetition() {
        all_match("[a-z ]{0,12}", |s| {
            s.chars().count() <= 12 && s.chars().all(|c| c.is_ascii_lowercase() || c == ' ')
        });
    }

    #[test]
    fn printable_ascii_range() {
        all_match("[ -~]{0,40}", |s| {
            s.chars().count() <= 40 && s.chars().all(|c| (' '..='~').contains(&c))
        });
    }

    #[test]
    fn mixed_classes_and_minimums() {
        all_match("[a-zA-Z0-9 ]{1,10}", |s| {
            let n = s.chars().count();
            (1..=10).contains(&n) && s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' ')
        });
    }

    #[test]
    fn literals_escapes_and_quantifiers() {
        all_match("ab?c{2}\\d+", |s| {
            s.starts_with('a')
                && s.contains("cc")
                && s.chars().last().is_some_and(|c| c.is_ascii_digit())
        });
    }

    #[test]
    fn negated_class_excludes_members() {
        all_match("[^a-z]{1,5}", |s| s.chars().all(|c| !c.is_ascii_lowercase()));
    }
}
