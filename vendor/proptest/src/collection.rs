//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A half-open length range `[lo, hi)`, like proptest's `SizeRange`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Generates `Vec`s of an element strategy with lengths in a range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo;
        let len = self.size.lo + if span > 1 { rng.index(span) } else { 0 };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_both_forms() {
        let mut rng = TestRng::from_seed(2);
        let ranged = vec(0u8..10, 2..5);
        let exact = vec(0u8..10, 7usize);
        let mut seen = [false; 3];
        for _ in 0..300 {
            let v = ranged.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            seen[v.len() - 2] = true;
            assert_eq!(exact.generate(&mut rng).len(), 7);
        }
        assert!(seen.iter().all(|s| *s), "all lengths in [2,5) hit");
    }
}
