//! The [`Strategy`] trait and its combinators.

use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type deterministically.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from
    /// it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among same-valued strategies (see [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given options. Must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.index(self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_i128(self.start as i128, self.end as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_i128(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let draw = self.start + rng.next_f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold it back.
        if draw >= self.end {
            self.start
        } else {
            draw
        }
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        ((self.start as f64)..(self.end as f64)).generate(rng) as f32
    }
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_unions_compose() {
        let mut rng = TestRng::from_seed(1);
        let strat = (0usize..4, (-3i64..3).prop_map(|v| v * 2), Just("x"));
        for _ in 0..200 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 4);
            assert!((-6..6).contains(&b) && b % 2 == 0);
            assert_eq!(c, "x");
        }
        let one = crate::prop_oneof![Just(1u8), Just(2u8), 5u8..7];
        for _ in 0..200 {
            let v = one.generate(&mut rng);
            assert!(matches!(v, 1 | 2 | 5 | 6));
        }
    }

    #[test]
    fn flat_map_feeds_outer_value_through() {
        let mut rng = TestRng::from_seed(9);
        let strat = (1usize..5).prop_flat_map(|n| vec![Just(n); n]);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.iter().all(|x| *x == v.len()));
        }
    }
}
