//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `None` half the time and `Some(inner)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.chance(0.5) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_occur() {
        let mut rng = TestRng::from_seed(4);
        let strat = of(0u32..5);
        let somes = (0..1_000).filter(|_| strat.generate(&mut rng).is_some()).count();
        assert!((300..700).contains(&somes));
    }
}
