//! Offline, API-compatible subset of the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of `parking_lot` it actually uses:
//! [`Mutex`] and [`RwLock`] with non-poisoning guard accessors. Both are
//! thin wrappers over `std::sync`; a poisoned std lock is recovered
//! (the poison flag is discarded) so the API matches parking_lot's
//! "no poisoning" contract.

use std::sync::{self, TryLockError};

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive (non-poisoning facade over `std`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (non-poisoning facade over `std`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
