//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Provides [`Bytes`] (a cheaply cloneable, consumable read view),
//! [`BytesMut`] (a growable write buffer) and the [`Buf`]/[`BufMut`]
//! traits, covering exactly the little-endian accessor surface the
//! S-ToPSS wire codec uses. Out-of-bounds reads panic, matching the real
//! crate's contract; the codec always checks `remaining()` first.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Read access to a contiguous byte buffer, consumed front-to-back.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Discards the next `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Consumes `n` bytes, returning them as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
        out
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64` bit pattern.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A cheaply cloneable, immutable byte buffer consumed front-to-back.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Wraps a static slice without copying semantics concerns.
    pub fn from_static(slice: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(slice)
    }

    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Bytes {
        Bytes::from(slice.to_vec())
    }

    /// Length of the unconsumed view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-view of the current view (shares the allocation).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }

    /// Copies the unconsumed view into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes { data: data.into(), start: 0, end }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Discards the first `n` bytes.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.data.len(), "advance past end of BytesMut");
        self.data.drain(..n);
    }

    /// Splits off and returns the first `n` bytes.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.data.len(), "split_to past end of BytesMut");
        let rest = self.data.split_off(n);
        BytesMut { data: std::mem::replace(&mut self.data, rest) }
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> BytesMut {
        BytesMut { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_roundtrip_through_freeze() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_i64_le(-42);
        buf.put_slice(b"hi");
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 1 + 4 + 8 + 8 + 2);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(b.copy_to_bytes(2).to_vec(), b"hi");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_and_split_share_contents() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut m = BytesMut::from(vec![9, 8, 7, 6]);
        let head = m.split_to(1);
        assert_eq!(&head[..], &[9]);
        assert_eq!(&m[..], &[8, 7, 6]);
        m.advance(2);
        assert_eq!(&m[..], &[6]);
    }
}
