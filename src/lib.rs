//! # s-topss
//!
//! A from-scratch Rust reproduction of **S-ToPSS: Semantic Toronto
//! Publish/Subscribe System** (Petrovic, Burcea, Jacobsen — VLDB 2003):
//! content-based publish/subscribe extended with a semantic stage so that
//! syntactically different but semantically related publications and
//! subscriptions match.
//!
//! This facade re-exports the workspace crates under stable module names:
//!
//! * [`types`] — interned symbols, values, predicates, subscriptions,
//!   events;
//! * [`matching`] — the syntactic engines the paper builds on (naive,
//!   counting, cluster, trie);
//! * [`ontology`] — synonyms, concept hierarchies, mapping functions,
//!   multi-domain registry, the `.sto` text format;
//! * [`core`] — the semantic stages, strategies, tolerances and the
//!   [`core::SToPSS`] matcher, plus the hash-sharded concurrent
//!   [`core::ShardedSToPSS`] (set [`core::Config::shards`] and use
//!   `publish_batch` to fan publications across per-shard engines) and
//!   the shared event-side [`core::SemanticFrontEnd`] (the semantic pass
//!   runs once per publication into a [`core::PreparedEvent`] artifact;
//!   shards receive only engine-match + verify work);
//! * [`broker`] — the Figure 2 runtime: dispatcher, notification engine,
//!   simulated transports, wire protocol, and the networked
//!   [`broker::NetBroker`] event loop (connection multiplexing with
//!   explicit backpressure);
//! * [`workload`] — deterministic workload generation and experiment
//!   fixtures.
//!
//! The repository-level guides cover how the pieces fit together:
//! `docs/ARCHITECTURE.md` (system shape, with the differential-proof
//! map), `docs/WIRE_PROTOCOL.md` (the framed wire format, normative) and
//! `docs/OPERATIONS.md` (every knob, plus how to read the committed
//! `BENCH_*.json` perf trajectories).
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use s_topss::prelude::*;
//!
//! // Build an ontology: "school" means "university".
//! let mut interner = Interner::new();
//! let mut ontology = Ontology::new("jobs");
//! let university = interner.intern("university");
//! let school = interner.intern("school");
//! ontology.synonyms.add_synonym(university, school, &interner).unwrap();
//!
//! // A recruiter subscribes; a candidate publishes with the other word.
//! let sub = SubscriptionBuilder::new(&mut interner)
//!     .term_eq("university", "toronto")
//!     .build(SubId(1));
//! let event = EventBuilder::new(&mut interner).term("school", "toronto").build();
//!
//! let matcher = SToPSS::new(
//!     Config::default(),
//!     Arc::new(ontology),
//!     SharedInterner::from_interner(interner),
//! );
//! matcher.subscribe(sub);
//! let matches = matcher.publish(&event);
//! assert_eq!(matches.len(), 1);
//! assert_eq!(matches[0].origin, MatchOrigin::Synonym);
//! ```

pub use stopss_broker as broker;
pub use stopss_core as core;
pub use stopss_matching as matching;
pub use stopss_ontology as ontology;
pub use stopss_types as types;
pub use stopss_workload as workload;

/// The most commonly used items in one import.
pub mod prelude {
    pub use stopss_broker::{Broker, BrokerConfig, DemoServer, TransportKind};
    pub use stopss_core::{
        semantic_match, Config, Match, MatchOrigin, MatcherStats, PreparedEvent, SToPSS,
        SemanticFrontEnd, ShardedSToPSS, StageMask, Strategy, Tolerance,
    };
    pub use stopss_matching::{EngineKind, MatchingEngine};
    pub use stopss_ontology::{
        parse_ontology, write_ontology, DomainRegistry, Expr, Guard, MappingFunction, Ontology,
        PatternItem, Production, SemanticSource,
    };
    pub use stopss_types::{
        Event, EventBuilder, Interner, Operator, Predicate, SharedInterner, SubId, Subscription,
        SubscriptionBuilder, Symbol, Value,
    };
    pub use stopss_workload::{JobFinderDomain, WorkloadConfig};
}
