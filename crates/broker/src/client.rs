//! Client registry types.

use std::fmt;

use crate::transport::TransportKind;

/// Identifier of a registered client (company or candidate).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u64);

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

/// A registered client and its notification preferences.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientInfo {
    /// Display name used in notification payloads.
    pub name: String,
    /// Transport the client wants notifications on.
    pub transport: TransportKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_id_renders() {
        assert_eq!(ClientId(7).to_string(), "client#7");
        assert_eq!(format!("{:?}", ClientId(7)), "client#7");
    }

    #[test]
    fn client_info_holds_preferences() {
        let info = ClientInfo { name: "acme".into(), transport: TransportKind::Sms };
        assert_eq!(info.transport, TransportKind::Sms);
    }
}
