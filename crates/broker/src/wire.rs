//! Wire codec for the demo protocol.
//!
//! The demonstration's web front-end and workload generator talk to
//! S-ToPSS through a small binary protocol: length-framed messages with
//! self-describing payloads (terms travel as strings; the receiving side
//! re-interns them). Encoding uses `bytes`; decoding is total — malformed
//! input yields a [`WireError`], never a panic.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use stopss_types::{Interner, Operator, SubId, Value};

use crate::client::ClientId;
use crate::transport::TransportKind;

/// Decoding errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended mid-message.
    UnexpectedEof,
    /// Unknown tag byte for the given context.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A length field exceeded sane bounds.
    BadLength(u64),
    /// A frame's length prefix exceeded the configured
    /// [`MAX_FRAME_LEN`] bound — a corrupt or hostile prefix that would
    /// otherwise commit the reader to an unbounded allocation.
    FrameTooLarge {
        /// The length the prefix claimed.
        len: u64,
        /// The bound in force.
        max: u64,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEof => f.write_str("unexpected end of input"),
            WireError::BadTag(t) => write!(f, "unknown tag byte {t:#x}"),
            WireError::BadUtf8 => f.write_str("invalid utf-8 in string field"),
            WireError::BadLength(n) => write!(f, "length field out of bounds: {n}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte bound")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Upper bound on any length field; keeps a corrupted frame from
/// requesting gigabytes.
const MAX_LEN: u64 = 1 << 20;

/// Default upper bound on a frame's length prefix (see
/// [`try_read_frame_bounded`]): no legitimate message in this protocol
/// approaches it, so anything larger is treated as corruption rather
/// than honored with an allocation.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// A value as it travels on the wire (terms as strings).
#[derive(Clone, Debug, PartialEq)]
pub enum WireValue {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Categorical term.
    Term(String),
    /// Boolean.
    Bool(bool),
}

impl WireValue {
    /// Converts a typed value for transmission.
    pub fn from_value(value: &Value, interner: &Interner) -> WireValue {
        match value {
            Value::Int(i) => WireValue::Int(*i),
            Value::Float(f) => WireValue::Float(*f),
            Value::Bool(b) => WireValue::Bool(*b),
            Value::Sym(s) => {
                WireValue::Term(interner.try_resolve(*s).unwrap_or("<foreign>").to_owned())
            }
        }
    }

    /// Converts back to a typed value, interning terms.
    pub fn into_value(self, interner: &mut Interner) -> Value {
        match self {
            WireValue::Int(i) => Value::Int(i),
            WireValue::Float(f) => Value::Float(f),
            WireValue::Bool(b) => Value::Bool(b),
            WireValue::Term(t) => Value::Sym(interner.intern(&t)),
        }
    }
}

/// A predicate as it travels on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct WirePredicate {
    /// Attribute name.
    pub attr: String,
    /// Operator.
    pub op: Operator,
    /// Right-hand side.
    pub value: WireValue,
}

/// Client → server messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientMessage {
    /// Register a client with a notification transport.
    Register {
        /// Display name.
        name: String,
        /// Preferred transport.
        transport: TransportKind,
    },
    /// Register a subscription.
    Subscribe {
        /// Owning client.
        client: ClientId,
        /// Conjunctive predicates.
        predicates: Vec<WirePredicate>,
    },
    /// Remove a subscription.
    Unsubscribe {
        /// Owning client.
        client: ClientId,
        /// Subscription to drop.
        sub: SubId,
    },
    /// Publish an event.
    Publish {
        /// Publishing client.
        client: ClientId,
        /// Attribute–value pairs.
        pairs: Vec<(String, WireValue)>,
    },
    /// Switch the broker between semantic and syntactic mode (§4: "the
    /// application can run in two different modes").
    SetMode {
        /// True = semantic, false = syntactic.
        semantic: bool,
    },
    /// Open (or resume) a session. Must be the first frame of a
    /// connection that wants session semantics; connections that never
    /// send it speak the legacy (session-less) protocol unchanged.
    Hello {
        /// Token of the session to resume, or 0 to open a fresh one.
        session: u64,
        /// Highest notification `seq` this client has observed — an
        /// implicit [`ClientMessage::Ack`] folded into resumption, so
        /// the broker replays only what was actually lost.
        last_seen_seq: u64,
    },
    /// Acknowledge every notification up to and including `seq`. The
    /// broker drops the acknowledged frames from the session's replay
    /// buffer; this message elicits no reply.
    Ack {
        /// Highest contiguous notification `seq` received.
        seq: u64,
    },
    /// Heartbeat probe; the broker answers [`ServerMessage::Pong`] and
    /// refreshes the connection's liveness clock.
    Ping {
        /// Opaque value echoed back in the pong.
        nonce: u64,
    },
    /// Live ontology delta: add synonym pairs to the broker's current
    /// ontology without interrupting publishers (forwarded to
    /// `Broker::set_ontology` as a fork of the running source).
    SetOntology {
        /// `(canonical, alias)` pairs to install in the synonym table.
        synonyms: Vec<(String, String)>,
    },
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerMessage {
    /// Registration accepted.
    Registered {
        /// Assigned id.
        client: ClientId,
    },
    /// Subscription accepted.
    Subscribed {
        /// Assigned id.
        sub: SubId,
    },
    /// Unsubscribe result.
    Unsubscribed {
        /// Whether the subscription existed and was owned by the caller.
        ok: bool,
    },
    /// Publish accepted.
    Published {
        /// Number of subscriptions the event matched.
        matches: u32,
    },
    /// Mode switched.
    ModeSet {
        /// True = semantic.
        semantic: bool,
    },
    /// Request failed.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// An asynchronous match notification pushed to a subscriber. Unlike
    /// the request/reply variants above, this one is server-initiated: the
    /// networked broker interleaves it with replies on the same framed
    /// stream whenever one of the connection's subscriptions matches.
    Notification {
        /// Per-session monotone sequence number (1, 2, 3, …) assigned
        /// when the notification enters the session's replay buffer;
        /// 0 on legacy (session-less) connections. Clients use it for
        /// acknowledgement and duplicate suppression across resumes.
        seq: u64,
        /// Rendered notification payload (same text the simulated
        /// transports deliver).
        payload: String,
    },
    /// Answer to [`ClientMessage::Hello`]: the session is open.
    Welcome {
        /// Token identifying the session (quote it in the next `Hello`).
        session: u64,
        /// True if an existing session was resumed (its subscriptions
        /// are still registered and unacked notifications follow,
        /// replayed in `seq` order); false if a fresh session was
        /// opened — including when the requested token was unknown or
        /// already expired.
        resumed: bool,
    },
    /// Answer to [`ClientMessage::Ping`].
    Pong {
        /// The nonce of the ping being answered.
        nonce: u64,
    },
    /// Answer to [`ClientMessage::SetOntology`]: the delta is live.
    OntologyUpdated {
        /// Matcher control epoch after the swap (monotone; lets clients
        /// fence "my edit is visible to publishes after this point").
        epoch: u64,
    },
}

// ---------------------------------------------------------------------------
// Tag tables
// ---------------------------------------------------------------------------

/// Tag bytes of [`ClientMessage`] variants.
///
/// **Append-only**: a tag, once assigned, is never renumbered or reused —
/// new variants take the next free byte. The table below, the match arms
/// in [`encode_client`]/[`decode_client`], and the tag table in
/// `docs/WIRE_PROTOCOL.md` must stay in sync; `stopss-lint`'s
/// `wire-tags-sync` rule and `tests/wire_doc_drift.rs` enforce it.
pub mod client_tag {
    /// [`super::ClientMessage::Register`].
    pub const REGISTER: u8 = 0;
    /// [`super::ClientMessage::Subscribe`].
    pub const SUBSCRIBE: u8 = 1;
    /// [`super::ClientMessage::Unsubscribe`].
    pub const UNSUBSCRIBE: u8 = 2;
    /// [`super::ClientMessage::Publish`].
    pub const PUBLISH: u8 = 3;
    /// [`super::ClientMessage::SetMode`].
    pub const SET_MODE: u8 = 4;
    /// [`super::ClientMessage::Hello`].
    pub const HELLO: u8 = 5;
    /// [`super::ClientMessage::Ack`].
    pub const ACK: u8 = 6;
    /// [`super::ClientMessage::Ping`].
    pub const PING: u8 = 7;
    /// [`super::ClientMessage::SetOntology`].
    pub const SET_ONTOLOGY: u8 = 8;
}

/// Tag bytes of [`ServerMessage`] variants (append-only; see
/// [`client_tag`]).
pub mod server_tag {
    /// [`super::ServerMessage::Registered`].
    pub const REGISTERED: u8 = 0;
    /// [`super::ServerMessage::Subscribed`].
    pub const SUBSCRIBED: u8 = 1;
    /// [`super::ServerMessage::Unsubscribed`].
    pub const UNSUBSCRIBED: u8 = 2;
    /// [`super::ServerMessage::Published`].
    pub const PUBLISHED: u8 = 3;
    /// [`super::ServerMessage::ModeSet`].
    pub const MODE_SET: u8 = 4;
    /// [`super::ServerMessage::Error`].
    pub const ERROR: u8 = 5;
    /// [`super::ServerMessage::Notification`].
    pub const NOTIFICATION: u8 = 6;
    /// [`super::ServerMessage::Welcome`].
    pub const WELCOME: u8 = 7;
    /// [`super::ServerMessage::Pong`].
    pub const PONG: u8 = 8;
    /// [`super::ServerMessage::OntologyUpdated`].
    pub const ONTOLOGY_UPDATED: u8 = 9;
}

/// Tag bytes of [`WireValue`] variants (append-only; see [`client_tag`]).
pub mod value_tag {
    /// [`super::WireValue::Int`].
    pub const INT: u8 = 0;
    /// [`super::WireValue::Float`].
    pub const FLOAT: u8 = 1;
    /// [`super::WireValue::Term`].
    pub const TERM: u8 = 2;
    /// [`super::WireValue::Bool`].
    pub const BOOL: u8 = 3;
}

/// `(tag, variant name)` for every [`WireValue`], in tag order.
pub const VALUE_TAG_TABLE: &[(u8, &str)] = &[
    (value_tag::INT, "Int"),
    (value_tag::FLOAT, "Float"),
    (value_tag::TERM, "Term"),
    (value_tag::BOOL, "Bool"),
];

/// `(tag, variant name)` for every client message, in tag order. The
/// doc-drift test compares this against the table in
/// `docs/WIRE_PROTOCOL.md`, and `stopss-lint` pins it append-only.
pub const CLIENT_TAG_TABLE: &[(u8, &str)] = &[
    (client_tag::REGISTER, "Register"),
    (client_tag::SUBSCRIBE, "Subscribe"),
    (client_tag::UNSUBSCRIBE, "Unsubscribe"),
    (client_tag::PUBLISH, "Publish"),
    (client_tag::SET_MODE, "SetMode"),
    (client_tag::HELLO, "Hello"),
    (client_tag::ACK, "Ack"),
    (client_tag::PING, "Ping"),
    (client_tag::SET_ONTOLOGY, "SetOntology"),
];

/// `(tag, variant name)` for every server message, in tag order (see
/// [`CLIENT_TAG_TABLE`]).
pub const SERVER_TAG_TABLE: &[(u8, &str)] = &[
    (server_tag::REGISTERED, "Registered"),
    (server_tag::SUBSCRIBED, "Subscribed"),
    (server_tag::UNSUBSCRIBED, "Unsubscribed"),
    (server_tag::PUBLISHED, "Published"),
    (server_tag::MODE_SET, "ModeSet"),
    (server_tag::ERROR, "Error"),
    (server_tag::NOTIFICATION, "Notification"),
    (server_tag::WELCOME, "Welcome"),
    (server_tag::PONG, "Pong"),
    (server_tag::ONTOLOGY_UPDATED, "OntologyUpdated"),
];

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::UnexpectedEof);
    }
    let len = buf.get_u32_le() as u64;
    if len > MAX_LEN {
        return Err(WireError::BadLength(len));
    }
    let len = len as usize;
    if buf.remaining() < len {
        return Err(WireError::UnexpectedEof);
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)
}

fn get_u8(buf: &mut Bytes) -> Result<u8, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::UnexpectedEof);
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut Bytes) -> Result<u32, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::UnexpectedEof);
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes) -> Result<u64, WireError> {
    if buf.remaining() < 8 {
        return Err(WireError::UnexpectedEof);
    }
    Ok(buf.get_u64_le())
}

fn put_value(buf: &mut BytesMut, value: &WireValue) {
    match value {
        WireValue::Int(i) => {
            buf.put_u8(value_tag::INT);
            buf.put_i64_le(*i);
        }
        WireValue::Float(f) => {
            buf.put_u8(value_tag::FLOAT);
            buf.put_u64_le(f.to_bits());
        }
        WireValue::Term(t) => {
            buf.put_u8(value_tag::TERM);
            put_string(buf, t);
        }
        WireValue::Bool(b) => {
            buf.put_u8(value_tag::BOOL);
            buf.put_u8(*b as u8);
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<WireValue, WireError> {
    match get_u8(buf)? {
        value_tag::INT => {
            if buf.remaining() < 8 {
                return Err(WireError::UnexpectedEof);
            }
            Ok(WireValue::Int(buf.get_i64_le()))
        }
        value_tag::FLOAT => Ok(WireValue::Float(f64::from_bits(get_u64(buf)?))),
        value_tag::TERM => Ok(WireValue::Term(get_string(buf)?)),
        value_tag::BOOL => Ok(WireValue::Bool(get_u8(buf)? != 0)),
        tag => Err(WireError::BadTag(tag)),
    }
}

fn operator_tag(op: Operator) -> u8 {
    Operator::ALL
        .iter()
        .position(|o| *o == op)
        .expect("invariant: Operator::ALL enumerates every operator") as u8
}

fn operator_from_tag(tag: u8) -> Result<Operator, WireError> {
    Operator::ALL.get(tag as usize).copied().ok_or(WireError::BadTag(tag))
}

fn transport_tag(kind: TransportKind) -> u8 {
    TransportKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("invariant: TransportKind::ALL enumerates every transport") as u8
}

fn transport_from_tag(tag: u8) -> Result<TransportKind, WireError> {
    TransportKind::ALL.get(tag as usize).copied().ok_or(WireError::BadTag(tag))
}

fn put_predicate(buf: &mut BytesMut, p: &WirePredicate) {
    put_string(buf, &p.attr);
    buf.put_u8(operator_tag(p.op));
    put_value(buf, &p.value);
}

fn get_predicate(buf: &mut Bytes) -> Result<WirePredicate, WireError> {
    let attr = get_string(buf)?;
    let op = operator_from_tag(get_u8(buf)?)?;
    let value = get_value(buf)?;
    Ok(WirePredicate { attr, op, value })
}

fn get_count(buf: &mut Bytes) -> Result<usize, WireError> {
    let n = get_u32(buf)? as u64;
    if n > MAX_LEN {
        return Err(WireError::BadLength(n));
    }
    Ok(n as usize)
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// Encodes a client message (payload only; see [`write_frame`]).
pub fn encode_client(msg: &ClientMessage, buf: &mut BytesMut) {
    match msg {
        ClientMessage::Register { name, transport } => {
            buf.put_u8(client_tag::REGISTER);
            put_string(buf, name);
            buf.put_u8(transport_tag(*transport));
        }
        ClientMessage::Subscribe { client, predicates } => {
            buf.put_u8(client_tag::SUBSCRIBE);
            buf.put_u64_le(client.0);
            buf.put_u32_le(predicates.len() as u32);
            for p in predicates {
                put_predicate(buf, p);
            }
        }
        ClientMessage::Unsubscribe { client, sub } => {
            buf.put_u8(client_tag::UNSUBSCRIBE);
            buf.put_u64_le(client.0);
            buf.put_u64_le(sub.0);
        }
        ClientMessage::Publish { client, pairs } => {
            buf.put_u8(client_tag::PUBLISH);
            buf.put_u64_le(client.0);
            buf.put_u32_le(pairs.len() as u32);
            for (attr, value) in pairs {
                put_string(buf, attr);
                put_value(buf, value);
            }
        }
        ClientMessage::SetMode { semantic } => {
            buf.put_u8(client_tag::SET_MODE);
            buf.put_u8(*semantic as u8);
        }
        ClientMessage::Hello { session, last_seen_seq } => {
            buf.put_u8(client_tag::HELLO);
            buf.put_u64_le(*session);
            buf.put_u64_le(*last_seen_seq);
        }
        ClientMessage::Ack { seq } => {
            buf.put_u8(client_tag::ACK);
            buf.put_u64_le(*seq);
        }
        ClientMessage::Ping { nonce } => {
            buf.put_u8(client_tag::PING);
            buf.put_u64_le(*nonce);
        }
        ClientMessage::SetOntology { synonyms } => {
            buf.put_u8(client_tag::SET_ONTOLOGY);
            buf.put_u32_le(synonyms.len() as u32);
            for (canonical, alias) in synonyms {
                put_string(buf, canonical);
                put_string(buf, alias);
            }
        }
    }
}

/// Decodes a client message.
pub fn decode_client(buf: &mut Bytes) -> Result<ClientMessage, WireError> {
    match get_u8(buf)? {
        client_tag::REGISTER => {
            let name = get_string(buf)?;
            let transport = transport_from_tag(get_u8(buf)?)?;
            Ok(ClientMessage::Register { name, transport })
        }
        client_tag::SUBSCRIBE => {
            let client = ClientId(get_u64(buf)?);
            let n = get_count(buf)?;
            let mut predicates = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                predicates.push(get_predicate(buf)?);
            }
            Ok(ClientMessage::Subscribe { client, predicates })
        }
        client_tag::UNSUBSCRIBE => Ok(ClientMessage::Unsubscribe {
            client: ClientId(get_u64(buf)?),
            sub: SubId(get_u64(buf)?),
        }),
        client_tag::PUBLISH => {
            let client = ClientId(get_u64(buf)?);
            let n = get_count(buf)?;
            let mut pairs = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let attr = get_string(buf)?;
                let value = get_value(buf)?;
                pairs.push((attr, value));
            }
            Ok(ClientMessage::Publish { client, pairs })
        }
        client_tag::SET_MODE => Ok(ClientMessage::SetMode { semantic: get_u8(buf)? != 0 }),
        client_tag::HELLO => {
            Ok(ClientMessage::Hello { session: get_u64(buf)?, last_seen_seq: get_u64(buf)? })
        }
        client_tag::ACK => Ok(ClientMessage::Ack { seq: get_u64(buf)? }),
        client_tag::PING => Ok(ClientMessage::Ping { nonce: get_u64(buf)? }),
        client_tag::SET_ONTOLOGY => {
            let n = get_count(buf)?;
            let mut synonyms = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let canonical = get_string(buf)?;
                let alias = get_string(buf)?;
                synonyms.push((canonical, alias));
            }
            Ok(ClientMessage::SetOntology { synonyms })
        }
        tag => Err(WireError::BadTag(tag)),
    }
}

/// Encodes a server message.
pub fn encode_server(msg: &ServerMessage, buf: &mut BytesMut) {
    match msg {
        ServerMessage::Registered { client } => {
            buf.put_u8(server_tag::REGISTERED);
            buf.put_u64_le(client.0);
        }
        ServerMessage::Subscribed { sub } => {
            buf.put_u8(server_tag::SUBSCRIBED);
            buf.put_u64_le(sub.0);
        }
        ServerMessage::Unsubscribed { ok } => {
            buf.put_u8(server_tag::UNSUBSCRIBED);
            buf.put_u8(*ok as u8);
        }
        ServerMessage::Published { matches } => {
            buf.put_u8(server_tag::PUBLISHED);
            buf.put_u32_le(*matches);
        }
        ServerMessage::ModeSet { semantic } => {
            buf.put_u8(server_tag::MODE_SET);
            buf.put_u8(*semantic as u8);
        }
        ServerMessage::Error { message } => {
            buf.put_u8(server_tag::ERROR);
            put_string(buf, message);
        }
        ServerMessage::Notification { seq, payload } => {
            buf.put_u8(server_tag::NOTIFICATION);
            buf.put_u64_le(*seq);
            put_string(buf, payload);
        }
        ServerMessage::Welcome { session, resumed } => {
            buf.put_u8(server_tag::WELCOME);
            buf.put_u64_le(*session);
            buf.put_u8(*resumed as u8);
        }
        ServerMessage::Pong { nonce } => {
            buf.put_u8(server_tag::PONG);
            buf.put_u64_le(*nonce);
        }
        ServerMessage::OntologyUpdated { epoch } => {
            buf.put_u8(server_tag::ONTOLOGY_UPDATED);
            buf.put_u64_le(*epoch);
        }
    }
}

/// Decodes a server message.
pub fn decode_server(buf: &mut Bytes) -> Result<ServerMessage, WireError> {
    match get_u8(buf)? {
        server_tag::REGISTERED => Ok(ServerMessage::Registered { client: ClientId(get_u64(buf)?) }),
        server_tag::SUBSCRIBED => Ok(ServerMessage::Subscribed { sub: SubId(get_u64(buf)?) }),
        server_tag::UNSUBSCRIBED => Ok(ServerMessage::Unsubscribed { ok: get_u8(buf)? != 0 }),
        server_tag::PUBLISHED => Ok(ServerMessage::Published { matches: get_u32(buf)? }),
        server_tag::MODE_SET => Ok(ServerMessage::ModeSet { semantic: get_u8(buf)? != 0 }),
        server_tag::ERROR => Ok(ServerMessage::Error { message: get_string(buf)? }),
        server_tag::NOTIFICATION => {
            Ok(ServerMessage::Notification { seq: get_u64(buf)?, payload: get_string(buf)? })
        }
        server_tag::WELCOME => {
            Ok(ServerMessage::Welcome { session: get_u64(buf)?, resumed: get_u8(buf)? != 0 })
        }
        server_tag::PONG => Ok(ServerMessage::Pong { nonce: get_u64(buf)? }),
        server_tag::ONTOLOGY_UPDATED => Ok(ServerMessage::OntologyUpdated { epoch: get_u64(buf)? }),
        tag => Err(WireError::BadTag(tag)),
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Appends `payload` to `stream` as one length-prefixed frame.
pub fn write_frame(stream: &mut BytesMut, payload: &[u8]) {
    stream.put_u32_le(payload.len() as u32);
    stream.put_slice(payload);
}

/// Pops one complete frame off `stream`, or returns `None` if more bytes
/// are needed. Corrupted length fields are reported as errors. Uses the
/// default [`MAX_FRAME_LEN`] bound — see [`try_read_frame_bounded`].
pub fn try_read_frame(stream: &mut BytesMut) -> Result<Option<Bytes>, WireError> {
    try_read_frame_bounded(stream, MAX_FRAME_LEN)
}

/// [`try_read_frame`] with an explicit frame-length bound. The length
/// prefix is validated *before* any buffering decision is made on it, so
/// a corrupt or hostile prefix is rejected as
/// [`WireError::FrameTooLarge`] instead of committing the reader to an
/// up-to-4GiB allocation-and-wait. Frame-layer errors are unrecoverable
/// (the stream offset is lost); callers close the connection.
pub fn try_read_frame_bounded(
    stream: &mut BytesMut,
    max_frame_len: usize,
) -> Result<Option<Bytes>, WireError> {
    if stream.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([stream[0], stream[1], stream[2], stream[3]]) as u64;
    if len > max_frame_len as u64 {
        return Err(WireError::FrameTooLarge { len, max: max_frame_len as u64 });
    }
    let len = len as usize;
    if stream.len() < 4 + len {
        return Ok(None);
    }
    stream.advance(4);
    Ok(Some(stream.split_to(len).freeze()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_client(msg: ClientMessage) {
        let mut buf = BytesMut::new();
        encode_client(&msg, &mut buf);
        let mut bytes = buf.freeze();
        let decoded = decode_client(&mut bytes).unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(bytes.remaining(), 0, "nothing left over");
    }

    fn roundtrip_server(msg: ServerMessage) {
        let mut buf = BytesMut::new();
        encode_server(&msg, &mut buf);
        let mut bytes = buf.freeze();
        let decoded = decode_server(&mut bytes).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn client_messages_roundtrip() {
        roundtrip_client(ClientMessage::Register {
            name: "acme corp".into(),
            transport: TransportKind::Smtp,
        });
        roundtrip_client(ClientMessage::Subscribe {
            client: ClientId(7),
            predicates: vec![
                WirePredicate {
                    attr: "university".into(),
                    op: Operator::Eq,
                    value: WireValue::Term("toronto".into()),
                },
                WirePredicate {
                    attr: "professional experience".into(),
                    op: Operator::Ge,
                    value: WireValue::Int(4),
                },
            ],
        });
        roundtrip_client(ClientMessage::Unsubscribe { client: ClientId(7), sub: SubId(3) });
        roundtrip_client(ClientMessage::Publish {
            client: ClientId(8),
            pairs: vec![
                ("school".into(), WireValue::Term("toronto".into())),
                ("graduation year".into(), WireValue::Int(1990)),
                ("gpa".into(), WireValue::Float(3.9)),
                ("available".into(), WireValue::Bool(true)),
            ],
        });
        roundtrip_client(ClientMessage::SetMode { semantic: false });
        roundtrip_client(ClientMessage::Hello { session: 0, last_seen_seq: 0 });
        roundtrip_client(ClientMessage::Hello { session: u64::MAX, last_seen_seq: 917 });
        roundtrip_client(ClientMessage::Ack { seq: 41 });
        roundtrip_client(ClientMessage::Ping { nonce: 0xDEAD_BEEF });
        roundtrip_client(ClientMessage::SetOntology {
            synonyms: vec![
                ("university".into(), "school".into()),
                ("phd".into(), "doctorate".into()),
            ],
        });
        roundtrip_client(ClientMessage::SetOntology { synonyms: vec![] });
    }

    #[test]
    fn server_messages_roundtrip() {
        roundtrip_server(ServerMessage::Registered { client: ClientId(1) });
        roundtrip_server(ServerMessage::Subscribed { sub: SubId(9) });
        roundtrip_server(ServerMessage::Unsubscribed { ok: true });
        roundtrip_server(ServerMessage::Published { matches: 42 });
        roundtrip_server(ServerMessage::ModeSet { semantic: true });
        roundtrip_server(ServerMessage::Error { message: "no such client".into() });
        roundtrip_server(ServerMessage::Notification {
            seq: 0,
            payload: "to acme [client 1]: sub 9 matched via synonym".into(),
        });
        roundtrip_server(ServerMessage::Notification { seq: 7, payload: "replayed".into() });
        roundtrip_server(ServerMessage::Welcome { session: 3, resumed: true });
        roundtrip_server(ServerMessage::Welcome { session: 4, resumed: false });
        roundtrip_server(ServerMessage::Pong { nonce: 99 });
        roundtrip_server(ServerMessage::OntologyUpdated { epoch: 12 });
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut buf = BytesMut::new();
        encode_client(
            &ClientMessage::Register { name: "x".into(), transport: TransportKind::Tcp },
            &mut buf,
        );
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(0..cut);
            assert!(decode_client(&mut partial).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut bytes = Bytes::from_static(&[99]);
        assert_eq!(decode_client(&mut bytes), Err(WireError::BadTag(99)));
        let mut bytes = Bytes::from_static(&[99]);
        assert_eq!(decode_server(&mut bytes), Err(WireError::BadTag(99)));
    }

    #[test]
    fn oversized_frame_prefix_is_rejected_without_allocating() {
        // A hostile length prefix one past the bound: rejected as
        // FrameTooLarge before the reader waits for (or allocates) the
        // claimed bytes — even though the rest of the stream is absent.
        let mut rx = BytesMut::new();
        rx.put_u32_le((MAX_FRAME_LEN + 1) as u32);
        assert_eq!(
            try_read_frame(&mut rx),
            Err(WireError::FrameTooLarge {
                len: (MAX_FRAME_LEN + 1) as u64,
                max: MAX_FRAME_LEN as u64
            }),
        );
        // A stricter explicit bound applies verbatim; at the bound is fine.
        let mut rx = BytesMut::new();
        rx.put_u32_le(8);
        rx.put_slice(&[0u8; 8]);
        assert!(matches!(
            try_read_frame_bounded(&mut rx, 7),
            Err(WireError::FrameTooLarge { len: 8, max: 7 }),
        ));
        let mut rx = BytesMut::new();
        rx.put_u32_le(8);
        rx.put_slice(&[0u8; 8]);
        assert!(try_read_frame_bounded(&mut rx, 8).unwrap().is_some());
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0); // Register
        buf.put_u32_le(u32::MAX); // absurd name length
        let mut bytes = buf.freeze();
        assert!(matches!(decode_client(&mut bytes), Err(WireError::BadLength(_))));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0); // Register
        buf.put_u32_le(2);
        buf.put_slice(&[0xFF, 0xFE]);
        buf.put_u8(0);
        let mut bytes = buf.freeze();
        assert_eq!(decode_client(&mut bytes), Err(WireError::BadUtf8));
    }

    #[test]
    fn framing_reassembles_partial_streams() {
        let mut payload = BytesMut::new();
        encode_server(&ServerMessage::Published { matches: 7 }, &mut payload);
        let payload = payload.freeze();

        let mut stream = BytesMut::new();
        write_frame(&mut stream, &payload);
        write_frame(&mut stream, &payload);

        // Feed the stream byte by byte into a reassembly buffer.
        let full = stream.freeze();
        let mut rx = BytesMut::new();
        let mut frames = Vec::new();
        for b in full.iter() {
            rx.put_u8(*b);
            while let Some(frame) = try_read_frame(&mut rx).unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 2);
        for mut frame in frames {
            assert_eq!(decode_server(&mut frame).unwrap(), ServerMessage::Published { matches: 7 });
        }
    }

    #[test]
    fn corrupt_frame_length_is_an_error() {
        let mut rx = BytesMut::new();
        rx.put_u32_le(u32::MAX);
        rx.put_slice(&[0; 16]);
        assert!(matches!(try_read_frame(&mut rx), Err(WireError::FrameTooLarge { .. })));
    }

    #[test]
    fn wire_value_conversions() {
        let mut interner = Interner::new();
        let sym = interner.intern("phd");
        let v = Value::Sym(sym);
        let wire = WireValue::from_value(&v, &interner);
        assert_eq!(wire, WireValue::Term("phd".into()));
        let back = wire.into_value(&mut interner);
        assert_eq!(back, v);
        assert_eq!(WireValue::from_value(&Value::Float(1.5), &interner), WireValue::Float(1.5));
    }

    /// The tag tables are append-only: tags are dense from zero, in
    /// order, and the historical prefix (everything shipped before the
    /// resilience PR added `Hello`..`SetOntology` / `Welcome`..
    /// `OntologyUpdated`) is frozen byte-for-byte. Renumbering any of
    /// these breaks decode for every peer on the old protocol.
    #[test]
    fn tag_tables_are_append_only() {
        for (table, name) in
            [(CLIENT_TAG_TABLE, "client"), (SERVER_TAG_TABLE, "server"), (VALUE_TAG_TABLE, "value")]
        {
            for (i, (tag, variant)) in table.iter().enumerate() {
                assert_eq!(
                    *tag, i as u8,
                    "{name} table: `{variant}` out of order (tags must be dense from 0)"
                );
            }
        }
        // Frozen v0 prefix — these exact assignments are on the wire in
        // deployed captures and MUST never change.
        let client_v0 = ["Register", "Subscribe", "Unsubscribe", "Publish", "SetMode"];
        let server_v0 = ["Registered", "Subscribed", "Unsubscribed", "Published", "ModeSet"];
        for (i, want) in client_v0.iter().enumerate() {
            assert_eq!(CLIENT_TAG_TABLE[i].1, *want, "client v0 prefix renumbered");
        }
        for (i, want) in server_v0.iter().enumerate() {
            assert_eq!(SERVER_TAG_TABLE[i].1, *want, "server v0 prefix renumbered");
        }
        assert_eq!(VALUE_TAG_TABLE.len(), 4, "value tags are frozen at Int/Float/Term/Bool");
    }

    /// Every table entry's tag byte is exactly what the encoder emits
    /// for the corresponding variant, so the tables can't drift from
    /// the real wire format.
    #[test]
    fn tag_tables_match_encoder_output() {
        let clients: Vec<ClientMessage> = vec![
            ClientMessage::Register { name: "n".into(), transport: TransportKind::Tcp },
            ClientMessage::Subscribe { client: ClientId(1), predicates: vec![] },
            ClientMessage::Unsubscribe { client: ClientId(1), sub: SubId(2) },
            ClientMessage::Publish { client: ClientId(1), pairs: vec![] },
            ClientMessage::SetMode { semantic: true },
            ClientMessage::Hello { session: 1, last_seen_seq: 0 },
            ClientMessage::Ack { seq: 1 },
            ClientMessage::Ping { nonce: 1 },
            ClientMessage::SetOntology { synonyms: vec![] },
        ];
        assert_eq!(clients.len(), CLIENT_TAG_TABLE.len(), "new client variant missing here");
        for (msg, (tag, variant)) in clients.iter().zip(CLIENT_TAG_TABLE) {
            let mut buf = BytesMut::new();
            encode_client(msg, &mut buf);
            assert_eq!(buf[0], *tag, "encoder emits a different tag for `{variant}`");
        }
        let servers: Vec<ServerMessage> = vec![
            ServerMessage::Registered { client: ClientId(1) },
            ServerMessage::Subscribed { sub: SubId(1) },
            ServerMessage::Unsubscribed { ok: true },
            ServerMessage::Published { matches: 0 },
            ServerMessage::ModeSet { semantic: true },
            ServerMessage::Error { message: "e".into() },
            ServerMessage::Notification { seq: 1, payload: "p".into() },
            ServerMessage::Welcome { session: 1, resumed: false },
            ServerMessage::Pong { nonce: 1 },
            ServerMessage::OntologyUpdated { epoch: 1 },
        ];
        assert_eq!(servers.len(), SERVER_TAG_TABLE.len(), "new server variant missing here");
        for (msg, (tag, variant)) in servers.iter().zip(SERVER_TAG_TABLE) {
            let mut buf = BytesMut::new();
            encode_server(msg, &mut buf);
            assert_eq!(buf[0], *tag, "encoder emits a different tag for `{variant}`");
        }
        let values = [
            WireValue::Int(1),
            WireValue::Float(1.5),
            WireValue::Term("t".into()),
            WireValue::Bool(true),
        ];
        for (value, (tag, variant)) in values.iter().zip(VALUE_TAG_TABLE) {
            let mut buf = BytesMut::new();
            put_value(&mut buf, value);
            assert_eq!(buf[0], *tag, "encoder emits a different tag for `{variant}`");
        }
    }
}
