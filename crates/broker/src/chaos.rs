//! Deterministic fault injection for the broker, scored on delivery
//! invariants.
//!
//! A [`ChaosConfig`] seeds three fault families — dropped client
//! connections, slowed (rate-limited) consumers, and notification-engine
//! restarts mid-stream — on top of the transports' own loss/rate
//! behaviours. [`run_chaos`] drives a subscription/event workload through
//! a faulted [`Broker`] and returns a [`ChaosReport`] whose
//! [`ChaosReport::assert_invariants`] checks the two properties the
//! harness exists to pin:
//!
//! 1. **No silent loss** — every match is delivered or shows up in an
//!    explicit failure counter (lost / rate-dropped / orphaned);
//! 2. **Per-subscriber order** — each client observes its notifications
//!    in publication order (events carry a monotone `seq` attribute that
//!    the checker parses back out of delivered payloads).
//!
//! Everything is deterministic under a fixed seed: the chaos control
//! stream, the per-incarnation transport streams, and the single-threaded
//! publish loop (the engine's worker drains a FIFO channel, so transport
//! RNG draws happen in enqueue order). Same seed ⇒ same faults ⇒ same
//! report.

use stopss_types::sync::Arc;

use stopss_ontology::SemanticSource;
use stopss_types::rng::Rng;
use stopss_types::{Event, FxHashMap, SharedInterner, Subscription, Value};

use crate::client::ClientId;
use crate::dispatcher::{Broker, BrokerConfig, TransportFactory};
use crate::eventloop::{BackpressurePolicy, NetBroker, NetBrokerConfig, NetClient};
use crate::session::{SessionClient, SessionClientConfig};
use crate::transport::{
    Delivery, Inbox, SmsSim, SmtpSim, TcpSim, Transport, TransportError, TransportKind, UdpSim,
};
use crate::wire::{ClientMessage, ServerMessage, WireValue};

/// Seeded fault-injection knobs. All probabilities are per-opportunity;
/// zero disables that fault family.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed for the chaos control stream (which faults fire when).
    pub seed: u64,
    /// Per-publication probability of dropping one connected client.
    pub drop_client: f64,
    /// Per-delivery-attempt probability that a consumer is too slow and
    /// the attempt comes back rate-limited (retried by the engine).
    pub slow_consumer: f64,
    /// Restart the notification engine before every `restart_every`-th
    /// publication (0 = never).
    pub restart_every: usize,
    /// UDP loss probability for the simulated datagram transport.
    pub udp_loss: f64,
    /// SMS messages allowed per rate window.
    pub sms_budget: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 2003,
            drop_client: 0.05,
            slow_consumer: 0.1,
            restart_every: 64,
            udp_loss: 0.1,
            sms_budget: 16,
        }
    }
}

/// Wraps a transport so each delivery attempt may first come back
/// rate-limited — a consumer too slow to take the message — with seeded
/// probability. The engine's retry loop then ticks the window and tries
/// again, so slowness costs retries, never silent loss.
pub struct FlakyTransport {
    inner: Box<dyn Transport>,
    rng: Rng,
    stall_probability: f64,
}

impl FlakyTransport {
    /// Wraps `inner`; `stall_probability` per attempt, seeded stream.
    pub fn new(inner: Box<dyn Transport>, stall_probability: f64, seed: u64) -> Self {
        FlakyTransport { inner, rng: Rng::new(seed), stall_probability }
    }
}

impl Transport for FlakyTransport {
    fn kind(&self) -> TransportKind {
        self.inner.kind()
    }

    fn deliver(&mut self, delivery: &Delivery) -> Result<(), TransportError> {
        if self.rng.chance(self.stall_probability) {
            return Err(TransportError::RateLimited);
        }
        self.inner.deliver(delivery)
    }

    fn tick(&mut self) {
        self.inner.tick();
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

/// What happened under fault injection, in conservation-law form.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Events published.
    pub published: u64,
    /// Matches produced by the matcher.
    pub matches: u64,
    /// Matches whose owner was gone at notification time (dropped
    /// clients); counted by the broker, never silently skipped.
    pub orphaned: u64,
    /// Deliveries that reached an inbox (or batch buffer).
    pub delivered: u64,
    /// Deliveries lost in transit (UDP semantics).
    pub lost: u64,
    /// Deliveries dropped after exhausting rate-limit retries.
    pub rate_dropped: u64,
    /// Retry attempts performed (slow consumers + SMS windows).
    pub retried: u64,
    /// Notification-engine restarts injected.
    pub restarts: u64,
    /// Client connections dropped.
    pub dropped_clients: u64,
    /// Per-subscriber ordering violations (empty = order preserved).
    pub ordering_violations: Vec<String>,
}

impl ChaosReport {
    /// Every match, accounted: delivered plus each explicit failure
    /// bucket. [`ChaosReport::assert_invariants`] pins this to
    /// [`ChaosReport::matches`].
    pub fn accounted(&self) -> u64 {
        self.delivered + self.lost + self.rate_dropped + self.orphaned
    }

    /// Asserts the delivery invariants (panics with the discrepancy
    /// otherwise): no silent match loss, and per-subscriber notification
    /// order preserved.
    pub fn assert_invariants(&self) {
        assert_eq!(
            self.matches,
            self.accounted(),
            "match conservation violated: {} matches vs {} accounted \
             ({} delivered + {} lost + {} rate-dropped + {} orphaned)",
            self.matches,
            self.accounted(),
            self.delivered,
            self.lost,
            self.rate_dropped,
            self.orphaned,
        );
        assert!(
            self.ordering_violations.is_empty(),
            "per-subscriber order violated: {:?}",
            self.ordering_violations,
        );
    }
}

/// Runs `events` through a broker under fault injection.
///
/// One client is registered per subscription, round-robin over
/// [`TransportKind::ALL`]. Events are re-issued with a leading monotone
/// `seq` attribute (first pair, so SMS truncation cannot clip it) that
/// the ordering checker parses back out of delivered payloads.
/// Deterministic in `broker_config.seed` + `chaos.seed`.
pub fn run_chaos(
    broker_config: BrokerConfig,
    chaos: &ChaosConfig,
    source: Arc<dyn SemanticSource>,
    interner: SharedInterner,
    subscriptions: &[Subscription],
    events: &[Event],
) -> ChaosReport {
    let broker_config =
        BrokerConfig { udp_loss: chaos.udp_loss, sms_budget: chaos.sms_budget, ..broker_config };
    let broker = chaos_broker(broker_config, chaos, source, interner.clone());

    // One client per subscription, cycling transports so every failure
    // family sees traffic.
    let mut clients = Vec::with_capacity(subscriptions.len());
    for (k, sub) in subscriptions.iter().enumerate() {
        let kind = TransportKind::ALL[k % TransportKind::ALL.len()];
        let client = broker.register_client(format!("chaos-{k}"), kind);
        broker.subscribe(client, sub.predicates().to_vec()).expect("registered client");
        clients.push(client);
    }

    let seq_attr = interner.intern("seq");
    let mut control = Rng::new(chaos.seed);
    let mut connected: Vec<ClientId> = clients.clone();
    let mut report = ChaosReport::default();

    for (k, event) in events.iter().enumerate() {
        if chaos.restart_every > 0 && k > 0 && k % chaos.restart_every == 0 {
            broker.restart_notifier();
        }
        if !connected.is_empty() && control.chance(chaos.drop_client) {
            let victim = connected.swap_remove(control.index(connected.len()));
            if broker.unregister_client(victim) {
                report.dropped_clients += 1;
            }
        }
        // `seq` leads the event so no downstream truncation can clip it.
        let mut stamped = Event::with_capacity(event.len() + 1);
        stamped.push(seq_attr, Value::Int(k as i64));
        for (attr, value) in event.pairs() {
            stamped.push(*attr, *value);
        }
        report.matches += broker.publish(&stamped) as u64;
        report.published += 1;
    }

    report.restarts = broker.notifier_restarts();
    report.orphaned = broker.orphaned_matches();
    let inboxes: Vec<(TransportKind, Inbox)> = TransportKind::ALL
        .iter()
        .filter_map(|kind| broker.inbox(*kind).map(|inbox| (*kind, inbox)))
        .collect();
    let stats = broker.shutdown();
    report.delivered = stats.total_delivered();
    report.lost = stats.per_transport.iter().map(|(_, s)| s.lost).sum();
    report.rate_dropped = stats.per_transport.iter().map(|(_, s)| s.rate_dropped).sum();
    report.retried = stats.per_transport.iter().map(|(_, s)| s.retried).sum();
    for (kind, inbox) in inboxes {
        check_ordering(kind, &inbox, &mut report.ordering_violations);
    }
    report
}

/// Builds a broker whose every transport is wrapped in a seeded
/// [`FlakyTransport`] (slow-consumer stalls) and rebuilt per restart
/// epoch over shared inboxes.
fn chaos_broker(
    config: BrokerConfig,
    chaos: &ChaosConfig,
    source: Arc<dyn SemanticSource>,
    interner: SharedInterner,
) -> Broker {
    let mut inboxes: FxHashMap<TransportKind, Inbox> = FxHashMap::default();
    for kind in TransportKind::ALL {
        inboxes.insert(kind, Inbox::default());
    }
    let factory_inboxes = inboxes.clone();
    let chaos = *chaos;
    let factory: TransportFactory = Box::new(move |epoch| {
        let bare: Vec<Box<dyn Transport>> = vec![
            Box::new(TcpSim::with_inbox(factory_inboxes[&TransportKind::Tcp].clone())),
            Box::new(UdpSim::with_inbox(
                config.udp_loss,
                config.seed.wrapping_add(epoch),
                factory_inboxes[&TransportKind::Udp].clone(),
            )),
            Box::new(SmtpSim::with_inbox(factory_inboxes[&TransportKind::Smtp].clone())),
            Box::new(SmsSim::with_inbox(
                config.sms_budget,
                factory_inboxes[&TransportKind::Sms].clone(),
            )),
        ];
        bare.into_iter()
            .enumerate()
            .map(|(k, t)| {
                let seed = chaos.seed ^ (epoch << 8) ^ k as u64;
                Box::new(FlakyTransport::new(t, chaos.slow_consumer, seed)) as Box<dyn Transport>
            })
            .collect()
    });
    Broker::with_transport_factory(config, source, interner, inboxes, factory)
}

// ---------------------------------------------------------------------------
// Networked chaos
// ---------------------------------------------------------------------------

/// Knobs of the networked fault mode: seeded **mid-frame disconnects**
/// against the event-loop serving path ([`NetBroker`]).
#[derive(Clone, Copy, Debug)]
pub struct NetChaosConfig {
    /// Seed for the chaos control stream (which subscriber dies when).
    pub seed: u64,
    /// Per-publication probability that one connected subscriber writes a
    /// deliberately incomplete frame and disconnects.
    pub mid_frame_disconnect: f64,
    /// Backpressure policy of the event loop under test.
    pub backpressure: BackpressurePolicy,
}

impl Default for NetChaosConfig {
    fn default() -> Self {
        NetChaosConfig {
            seed: 2003,
            mid_frame_disconnect: 0.15,
            backpressure: BackpressurePolicy::Disconnect,
        }
    }
}

/// What happened under networked fault injection, in conservation-law
/// form. All counters are deterministic per seed: every publication is
/// fenced by [`NetBroker::run_until_quiescent`], so thread timing of the
/// notification engine's worker cannot shift a delivery between buckets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetChaosReport {
    /// Events published.
    pub published: u64,
    /// Matches reported by `Published` replies.
    pub matches: u64,
    /// Matches whose owner was gone at notification time (the event loop
    /// unregisters a connection's clients when it observes the
    /// disconnect).
    pub orphaned: u64,
    /// Deliveries the engine handed to the
    /// [`NetTransport`](crate::eventloop::NetTransport)s.
    pub delivered: u64,
    /// Notification frames fully written to a live connection.
    pub sent: u64,
    /// Notifications dropped by [`BackpressurePolicy::DropNewest`].
    pub dropped: u64,
    /// Notifications accounted against dead connections.
    pub disconnected: u64,
    /// Mid-frame disconnects injected.
    pub mid_frame_disconnects: u64,
    /// Partial frames the server observed at connection teardown — must
    /// equal the injected count: a truncated frame is *detected*, never
    /// silently absorbed.
    pub truncated_frames: u64,
    /// Whether the loop reached quiescence inside the turn budget.
    pub quiescent: bool,
    /// Per-subscriber ordering violations among received notifications.
    pub ordering_violations: Vec<String>,
}

impl NetChaosReport {
    /// Asserts the networked no-silent-loss invariants (panics with the
    /// discrepancy otherwise): every match is delivered-or-orphaned,
    /// every delivery terminates in exactly one accounted bucket, every
    /// injected truncation is detected, and per-subscriber notification
    /// order is preserved.
    pub fn assert_invariants(&self) {
        assert!(self.quiescent, "event loop failed to quiesce");
        assert_eq!(
            self.matches,
            self.delivered + self.orphaned,
            "match conservation violated: {} matches vs {} delivered + {} orphaned",
            self.matches,
            self.delivered,
            self.orphaned,
        );
        assert_eq!(
            self.delivered,
            self.sent + self.dropped + self.disconnected,
            "delivery conservation violated: {} delivered vs {} sent + {} dropped + {} disconnected",
            self.delivered,
            self.sent,
            self.dropped,
            self.disconnected,
        );
        assert_eq!(
            self.truncated_frames, self.mid_frame_disconnects,
            "every injected mid-frame disconnect must be detected as a truncated frame",
        );
        assert!(
            self.ordering_violations.is_empty(),
            "per-subscriber order violated: {:?}",
            self.ordering_violations,
        );
    }
}

/// Runs `events` through a [`NetBroker`] with one framed connection per
/// subscription, injecting seeded mid-frame disconnects between
/// publications.
///
/// Each faulted subscriber writes the first half of a valid `Subscribe`
/// frame and closes — the wire-level fault the in-process harness cannot
/// express. Events carry the same leading `(seq, N)` stamp as
/// [`run_chaos`] so per-subscriber order is checked on what actually
/// arrived over the wire. Every publication is fenced by
/// [`NetBroker::run_until_quiescent`], making the full report
/// deterministic in `net.seed`.
pub fn run_net_chaos(
    config: NetBrokerConfig,
    net: &NetChaosConfig,
    source: Arc<dyn SemanticSource>,
    interner: SharedInterner,
    subscriptions: &[Subscription],
    events: &[Event],
) -> NetChaosReport {
    let config = NetBrokerConfig { backpressure: net.backpressure, ..config };
    let mut server = NetBroker::new(config, source, interner.clone())
        .expect("in-memory event loop cannot fail to build");
    let connector = server.connector();
    let turn_budget = 2_000 + 10 * (subscriptions.len() + events.len());

    // One connection + client per subscription, cycling transport kinds;
    // the declared kind only labels the client — delivery always rides
    // the connection.
    let mut conns: Vec<Option<(NetClient, ClientId)>> = Vec::with_capacity(subscriptions.len());
    for (k, sub) in subscriptions.iter().enumerate() {
        let mut client = NetClient::connect(&connector).expect("listener is alive");
        let kind = TransportKind::ALL[k % TransportKind::ALL.len()];
        client
            .send(&ClientMessage::Register { name: format!("net-chaos-{k}"), transport: kind })
            .expect("fresh pipe accepts a frame");
        let id = loop {
            server.turn(Some(std::time::Duration::from_millis(1))).expect("turn");
            match client.poll_recv().expect("well-formed replies").pop() {
                Some(ServerMessage::Registered { client }) => break client,
                Some(other) => panic!("unexpected reply: {other:?}"),
                None => {}
            }
        };
        let predicates = interner.with(|i| crate::server::subscription_to_wire(sub, i));
        client
            .send(&ClientMessage::Subscribe { client: id, predicates })
            .expect("fresh pipe accepts a frame");
        conns.push(Some((client, id)));
    }
    let mut publisher = NetClient::connect(&connector).expect("listener is alive");
    publisher
        .send(&ClientMessage::Register {
            name: "net-chaos-pub".into(),
            transport: TransportKind::Tcp,
        })
        .expect("fresh pipe accepts a frame");
    let publisher_id = loop {
        server.turn(Some(std::time::Duration::from_millis(1))).expect("turn");
        match publisher.poll_recv().expect("well-formed replies").pop() {
            Some(ServerMessage::Registered { client }) => break client,
            Some(other) => panic!("unexpected reply: {other:?}"),
            None => {}
        }
    };
    assert!(server.run_until_quiescent(turn_budget).expect("turn"), "setup must quiesce");

    let mut control = Rng::new(net.seed);
    let mut report = NetChaosReport::default();
    let mut last_seq: FxHashMap<usize, i64> = FxHashMap::default();

    for (k, event) in events.iter().enumerate() {
        // Maybe kill one connected subscriber mid-frame: half a valid
        // Subscribe frame, then a hard close.
        let live: Vec<usize> = (0..conns.len()).filter(|idx| conns[*idx].is_some()).collect();
        if !live.is_empty() && control.chance(net.mid_frame_disconnect) {
            let victim = live[control.index(live.len())];
            let (mut client, id) = conns[victim].take().expect("picked from live set");
            let mut payload = bytes::BytesMut::new();
            crate::wire::encode_client(
                &ClientMessage::Subscribe {
                    client: id,
                    predicates: interner
                        .with(|i| crate::server::subscription_to_wire(&subscriptions[victim], i)),
                },
                &mut payload,
            );
            let mut framed = bytes::BytesMut::new();
            crate::wire::write_frame(&mut framed, &payload);
            client.send_raw(&framed[..framed.len() / 2]).expect("pipe has space");
            client.close();
            report.mid_frame_disconnects += 1;
            // Let the loop observe the disconnect before publishing, so
            // the victim's subsequent matches orphan deterministically.
            assert!(server.run_until_quiescent(turn_budget).expect("turn"), "disconnect fence");
        }

        let pairs: Vec<(String, WireValue)> =
            std::iter::once(("seq".to_string(), WireValue::Int(k as i64)))
                .chain(event.pairs().iter().map(|(attr, value)| {
                    (interner.resolve(*attr), interner.with(|i| WireValue::from_value(value, i)))
                }))
                .collect();
        publisher
            .send(&ClientMessage::Publish { client: publisher_id, pairs })
            .expect("publisher pipe has space");
        report.published += 1;
        assert!(server.run_until_quiescent(turn_budget).expect("turn"), "publish fence");

        // Drain every live subscriber so pipes never fill and order is
        // checked on the wire-delivered frames.
        for (idx, slot) in conns.iter_mut().enumerate() {
            let Some((client, _)) = slot else { continue };
            for msg in client.poll_recv().expect("well-formed frames") {
                match msg {
                    ServerMessage::Notification { payload, .. } => {
                        let Some(seq) = parse_seq(&payload) else { continue };
                        let last = last_seq.entry(idx).or_insert(i64::MIN);
                        if seq < *last {
                            report
                                .ordering_violations
                                .push(format!("conn {idx} saw seq {seq} after {last}"));
                        }
                        *last = seq;
                    }
                    ServerMessage::Subscribed { .. } => {}
                    other => panic!("unexpected push to a subscriber: {other:?}"),
                }
            }
        }
        for msg in publisher.poll_recv().expect("well-formed frames") {
            if let ServerMessage::Published { matches } = msg {
                report.matches += u64::from(matches);
            }
        }
    }

    report.quiescent = server.run_until_quiescent(turn_budget).expect("turn");
    report.orphaned = server.broker().orphaned_matches();
    let net_stats = server.stats();
    report.sent = net_stats.notifications_sent;
    report.dropped = net_stats.notifications_dropped;
    report.disconnected = net_stats.notifications_disconnected;
    report.truncated_frames = net_stats.truncated_frames;
    let (_, delivery) = server.shutdown();
    report.delivered = delivery.total_delivered();
    report
}

// ---------------------------------------------------------------------------
// Session chaos: kills, partitions, restarts, churn — scored on the
// extended conservation identity and per-session seq contiguity.
// ---------------------------------------------------------------------------

/// Knobs of the session-resilience fault mode: seeded connection kills,
/// network partitions, broker front-end restarts, subscription churn and
/// live ontology edits, all against sessioned clients that reconnect and
/// resume (see [`crate::session`]).
#[derive(Clone, Copy, Debug)]
pub struct SessionChaosConfig {
    /// Seed for the chaos control stream (which faults fire when).
    pub seed: u64,
    /// Per-publication probability of hard-killing one established
    /// subscriber connection (the client notices and resumes).
    pub kill: f64,
    /// Per-publication probability of partitioning one established
    /// subscriber's link.
    pub partition: f64,
    /// Logical ticks a partition lasts before the harness heals it.
    pub partition_ticks: u64,
    /// Bounce the whole serving front end (every connection killed, the
    /// notification engine restarted) before every `restart_every`-th
    /// publication (0 = never). Sessions survive in memory; clients
    /// reconnect-with-resume.
    pub restart_every: usize,
    /// Per-publication probability that one subscriber unsubscribes and
    /// immediately resubscribes over the wire (control-plane churn).
    pub churn: f64,
    /// Publisher sends a live `SetOntology` delta before every
    /// `ontology_edit_every`-th publication (0 = never); the edits
    /// themselves are the `ontology_edits` argument of
    /// [`run_session_chaos`], applied cyclically.
    pub ontology_edit_every: usize,
    /// Logical clock ticks advanced per publication (drives heartbeat
    /// and TTL policies; fences never advance the clock, so expiry
    /// scheduling is deterministic).
    pub ticks_per_event: u64,
    /// Backpressure policy at the replay-buffer bound.
    pub backpressure: BackpressurePolicy,
    /// Session-layer knobs of the broker under test.
    pub session: crate::session::SessionConfig,
}

impl Default for SessionChaosConfig {
    fn default() -> Self {
        SessionChaosConfig {
            seed: 2003,
            kill: 0.15,
            partition: 0.1,
            partition_ticks: 8,
            restart_every: 16,
            churn: 0.0,
            ontology_edit_every: 0,
            ticks_per_event: 1,
            backpressure: BackpressurePolicy::DropNewest,
            session: crate::session::SessionConfig::default(),
        }
    }
}

/// What happened under session-layer fault injection, in
/// conservation-law form. Deterministic per seed: every fault is
/// injected at a fenced point (deliveries drained, outbound queues
/// idle, every reachable client caught up), so worker-thread timing can
/// never shift a notification between terminal buckets, and the whole
/// report — payloads included — is bit-identical across runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionChaosReport {
    /// Events published.
    pub published: u64,
    /// Matches reported by `Published` replies.
    pub matches: u64,
    /// Matches whose owner was gone at notification time.
    pub orphaned: u64,
    /// Deliveries the engine handed to the event loop.
    pub delivered: u64,
    /// Terminal: acknowledged without retransmission.
    pub acked: u64,
    /// Terminal: acknowledged after a resume retransmission.
    pub replayed: u64,
    /// Terminal: dropped at the replay bound (`DropNewest`, pre-seq).
    pub dropped: u64,
    /// Terminal: retained by a session that expired.
    pub expired: u64,
    /// Terminal: accounted against dead session-less connections (late
    /// deliveries racing an expiry; zero under fenced injection).
    pub disconnected: u64,
    /// Retained unacknowledged at scoring time (zero once all clients
    /// caught up).
    pub in_flight: u64,
    /// First-transmission notification frames written (telemetry).
    pub sent: u64,
    /// Retransmitted frames written on resumes (telemetry: what
    /// recovery cost on the wire).
    pub replay_frames_sent: u64,
    /// Sessions opened fresh.
    pub sessions_created: u64,
    /// Successful resumes.
    pub sessions_resumed: u64,
    /// Sessions expired (TTL or replay-bound termination).
    pub sessions_expired: u64,
    /// Connections closed for heartbeat silence.
    pub heartbeat_timeouts: u64,
    /// Connection kills injected.
    pub kills: u64,
    /// Partitions injected.
    pub partitions: u64,
    /// Front-end restarts injected.
    pub restarts: u64,
    /// Unsubscribe/resubscribe churn cycles completed.
    pub churned: u64,
    /// Live ontology deltas acknowledged (`OntologyUpdated` replies).
    pub ontology_edits: u64,
    /// Whether the loop reached quiescence at the end.
    pub quiescent: bool,
    /// Per-subscriber seq-contiguity violations (empty = every session
    /// incarnation delivered exactly 1, 2, 3, … with no gap or reorder,
    /// across however many resumes it took).
    pub contiguity_violations: Vec<String>,
    /// Per-subscriber payloads, in arrival order after duplicate
    /// suppression — the differential tier compares these against a
    /// fault-free in-process run.
    pub payloads: Vec<Vec<String>>,
}

impl SessionChaosReport {
    /// Asserts the session-layer no-silent-loss invariants (panics with
    /// the discrepancy otherwise): every match delivered-or-orphaned,
    /// every delivery in exactly one terminal-or-in-flight bucket, and
    /// per-session seq contiguity across resumes.
    pub fn assert_invariants(&self) {
        assert!(self.quiescent, "event loop failed to quiesce");
        assert_eq!(
            self.matches,
            self.delivered + self.orphaned,
            "match conservation violated: {} matches vs {} delivered + {} orphaned",
            self.matches,
            self.delivered,
            self.orphaned,
        );
        assert_eq!(
            self.delivered,
            self.acked
                + self.replayed
                + self.dropped
                + self.expired
                + self.in_flight
                + self.disconnected,
            "session conservation violated: {} delivered vs {} acked + {} replayed + {} dropped \
             + {} expired + {} in-flight + {} disconnected",
            self.delivered,
            self.acked,
            self.replayed,
            self.dropped,
            self.expired,
            self.in_flight,
            self.disconnected,
        );
        assert!(
            self.contiguity_violations.is_empty(),
            "per-session seq contiguity violated: {:?}",
            self.contiguity_violations,
        );
    }
}

/// One sessioned subscriber under the harness: the resilient client plus
/// the application-level state the session layer deliberately does not
/// manage (identity, subscription, expected next seq).
struct SubSlot {
    client: SessionClient,
    id: Option<ClientId>,
    sub: Option<stopss_types::SubId>,
    awaiting_register: bool,
    awaiting_subscribe: bool,
    /// Next seq this subscriber's current session incarnation must
    /// deliver (contiguity check).
    expect_seq: u64,
    /// Broker-clock tick at which the harness heals this link (None =
    /// not partitioned).
    heal_at: Option<u64>,
}

impl SubSlot {
    fn ready(&self) -> bool {
        self.client.established()
            && self.id.is_some()
            && self.sub.is_some()
            && !self.awaiting_subscribe
    }
}

/// Runs `events` through a [`NetBroker`] whose subscribers are
/// [`SessionClient`]s, injecting seeded connection kills, partitions,
/// front-end restarts, subscription churn and live ontology edits —
/// each at a fenced point so the returned [`SessionChaosReport`] is
/// bit-identical per seed.
///
/// Events carry the same leading `(seq, N)` stamp as [`run_chaos`];
/// `ontology_edits` are `(canonical, alias)` synonym pairs applied
/// cyclically over the wire when [`SessionChaosConfig::ontology_edit_every`]
/// fires. Faults target subscribers only; the publisher is itself
/// sessioned so it survives front-end restarts by resuming.
pub fn run_session_chaos(
    config: NetBrokerConfig,
    chaos: &SessionChaosConfig,
    source: Arc<dyn SemanticSource>,
    interner: SharedInterner,
    subscriptions: &[Subscription],
    events: &[Event],
    ontology_edits: &[(String, String)],
) -> SessionChaosReport {
    let config =
        NetBrokerConfig { backpressure: chaos.backpressure, session: chaos.session, ..config };
    let mut server = NetBroker::new(config, source, interner.clone())
        .expect("in-memory event loop cannot fail to build");
    let connector = server.connector();
    let ping_every = u64::from(chaos.session.heartbeat_timeout > 0);
    let client_config = |seed: u64| SessionClientConfig {
        seed,
        backoff_base: 1,
        backoff_cap: 4,
        jitter: 0.5,
        ping_every,
    };

    let mut subs: Vec<SubSlot> = (0..subscriptions.len())
        .map(|k| SubSlot {
            client: SessionClient::new(
                connector.clone(),
                client_config(chaos.seed ^ (k as u64 + 1)),
            ),
            id: None,
            sub: None,
            awaiting_register: false,
            awaiting_subscribe: false,
            expect_seq: 1,
            heal_at: None,
        })
        .collect();
    let mut publisher = SessionClient::new(connector, client_config(chaos.seed ^ 0x5e55));
    let mut publisher_id: Option<ClientId> = None;
    let mut publisher_registering = false;

    let mut report = SessionChaosReport {
        payloads: vec![Vec::new(); subscriptions.len()],
        ..Default::default()
    };
    let mut control = Rng::new(chaos.seed);
    let fence_budget = 400 + 4 * (subscriptions.len() + events.len());

    // One pump round: broker turns, then every client ticks (processing
    // what surfaced), then broker turns again so requests sent during the
    // ticks are served promptly. The broker *clock* never moves here.
    macro_rules! pump {
        () => {{
            server.run_turns(2).expect("turn");
            for k in 0..subs.len() {
                let msgs = subs[k].client.tick().expect("well-formed frames");
                for msg in msgs {
                    match msg {
                        ServerMessage::Welcome { resumed, .. } => {
                            subs[k].awaiting_register = false;
                            subs[k].awaiting_subscribe = false;
                            if !resumed {
                                // Fresh session: any previous identity and
                                // subscription died with the old one.
                                subs[k].id = None;
                                subs[k].sub = None;
                                subs[k].expect_seq = 1;
                            }
                        }
                        ServerMessage::Registered { client } => {
                            subs[k].id = Some(client);
                            subs[k].awaiting_register = false;
                        }
                        ServerMessage::Subscribed { sub } => {
                            subs[k].sub = Some(sub);
                            subs[k].awaiting_subscribe = false;
                        }
                        ServerMessage::Unsubscribed { .. } | ServerMessage::Pong { .. } => {}
                        ServerMessage::Notification { seq, payload } => {
                            if seq != subs[k].expect_seq {
                                report.contiguity_violations.push(format!(
                                    "subscriber {k} saw seq {seq}, expected {}",
                                    subs[k].expect_seq,
                                ));
                            }
                            subs[k].expect_seq = seq + 1;
                            report.payloads[k].push(payload);
                        }
                        other => panic!("unexpected push to subscriber {k}: {other:?}"),
                    }
                }
                // (Re)build application state top-down once established.
                if subs[k].client.established() {
                    if subs[k].id.is_none() && !subs[k].awaiting_register {
                        let register = ClientMessage::Register {
                            name: format!("session-chaos-{k}"),
                            transport: TransportKind::Tcp,
                        };
                        if subs[k].client.request(&register).expect("send") {
                            subs[k].awaiting_register = true;
                        }
                    } else if subs[k].id.is_some()
                        && subs[k].sub.is_none()
                        && !subs[k].awaiting_subscribe
                    {
                        let subscribe = ClientMessage::Subscribe {
                            client: subs[k].id.expect("checked"),
                            predicates: interner.with(|i| {
                                crate::server::subscription_to_wire(&subscriptions[k], i)
                            }),
                        };
                        if subs[k].client.request(&subscribe).expect("send") {
                            subs[k].awaiting_subscribe = true;
                        }
                    }
                }
            }
            for msg in publisher.tick().expect("well-formed frames") {
                match msg {
                    ServerMessage::Welcome { resumed, .. } => {
                        publisher_registering = false;
                        if !resumed {
                            publisher_id = None;
                        }
                    }
                    ServerMessage::Registered { client } => {
                        publisher_id = Some(client);
                        publisher_registering = false;
                    }
                    ServerMessage::Published { matches } => {
                        report.matches += u64::from(matches);
                    }
                    ServerMessage::OntologyUpdated { .. } => report.ontology_edits += 1,
                    ServerMessage::Pong { .. } => {}
                    other => panic!("unexpected push to the publisher: {other:?}"),
                }
            }
            if publisher.established() && publisher_id.is_none() && !publisher_registering {
                let register = ClientMessage::Register {
                    name: "session-chaos-pub".into(),
                    transport: TransportKind::Tcp,
                };
                if publisher.request(&register).expect("send") {
                    publisher_registering = true;
                }
            }
            server.run_turns(1).expect("turn");
        }};
    }

    // Fence: pump until every reachable client is fully caught up —
    // deliveries drained, outbound queues idle, publisher and every
    // non-partitioned subscriber established/subscribed with an empty
    // replay buffer. Partitioned subscribers are exempt by design: their
    // frames accumulate until the heal. The broker clock is frozen, so
    // however many rounds this takes, the post-fence state is the same.
    macro_rules! fence {
        ($what:expr) => {{
            let mut settled = 0;
            for _ in 0..fence_budget {
                pump!();
                let caught_up = server.deliveries_drained()
                    && server.outbound_idle()
                    && publisher.established()
                    && publisher_id.is_some()
                    && subs.iter().all(|s| {
                        s.heal_at.is_some()
                            || (s.ready() && server.session_retained(s.client.session()) == Some(0))
                    });
                settled = if caught_up { settled + 1 } else { 0 };
                if settled >= 2 {
                    break;
                }
            }
            assert!(settled >= 2, "fence failed to settle: {}", $what);
        }};
    }

    fence!("setup");
    let seq_attr = interner.intern("seq");

    for (k, event) in events.iter().enumerate() {
        // Advance logical time and heal partitions that are due — the
        // only two places the session clock interacts with the run.
        server.advance_clock(chaos.ticks_per_event);
        let now = server.clock();
        for slot in subs.iter_mut() {
            if slot.heal_at.is_some_and(|at| now >= at) {
                slot.client.set_partitioned(false);
                slot.heal_at = None;
            }
        }

        // Front-end restart: everything dies at once, then a full fence
        // lets every client resume before the next publication — so the
        // restart exercises reconnect-with-resume at scale without
        // leaving nondeterministic half-resumed states behind.
        if chaos.restart_every > 0 && k > 0 && k % chaos.restart_every == 0 {
            server.kill_all_connections();
            server.broker().restart_notifier();
            report.restarts += 1;
            fence!("restart recovery");
        }

        // Targeted faults. Victims stay unreachable through the publish
        // below (the delivery drain runs broker-only turns, so a killed
        // client cannot resume early): their notifications are retained
        // while detached and replayed on the resume inside the fence.
        let targets: Vec<usize> = subs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.ready() && s.heal_at.is_none())
            .map(|(idx, _)| idx)
            .collect();
        if !targets.is_empty() && control.chance(chaos.kill) {
            let victim = targets[control.index(targets.len())];
            subs[victim].client.kill_connection();
            report.kills += 1;
        }
        let targets: Vec<usize> = subs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.ready() && s.heal_at.is_none())
            .map(|(idx, _)| idx)
            .collect();
        if !targets.is_empty() && control.chance(chaos.partition) {
            let victim = targets[control.index(targets.len())];
            subs[victim].client.set_partitioned(true);
            subs[victim].heal_at = Some(now + chaos.partition_ticks);
            report.partitions += 1;
        }
        if !targets.is_empty() && control.chance(chaos.churn) {
            let victim = targets[control.index(targets.len())];
            if subs[victim].heal_at.is_none() && subs[victim].ready() {
                // The Unsubscribe is served before this iteration's
                // publish (lower token, same turn); the resubscribe goes
                // out on the next client tick, after it — so a churned
                // subscriber deterministically misses this event.
                let unsubscribe = ClientMessage::Unsubscribe {
                    client: subs[victim].id.expect("ready"),
                    sub: subs[victim].sub.expect("ready"),
                };
                if subs[victim].client.request(&unsubscribe).expect("send") {
                    subs[victim].sub = None;
                    report.churned += 1;
                }
            }
        }
        if chaos.ontology_edit_every > 0
            && !ontology_edits.is_empty()
            && k > 0
            && k % chaos.ontology_edit_every == 0
        {
            let edit = &ontology_edits[(k / chaos.ontology_edit_every - 1) % ontology_edits.len()];
            let delta = ClientMessage::SetOntology { synonyms: vec![edit.clone()] };
            assert!(publisher.request(&delta).expect("send"), "publisher is fenced established");
            // Served strictly before the publish below: per-connection
            // frame order is arrival order.
        }

        let mut pairs: Vec<(String, WireValue)> =
            vec![(interner.resolve(seq_attr), WireValue::Int(k as i64))];
        pairs.extend(event.pairs().iter().map(|(attr, value)| {
            (interner.resolve(*attr), interner.with(|i| WireValue::from_value(value, i)))
        }));
        // The publisher survived every fault so far (or resumed during
        // the restart fence); fenced state guarantees it is established.
        assert!(
            publisher
                .request(&ClientMessage::Publish { client: publisher_id.expect("fenced"), pairs })
                .expect("send"),
            "publisher must be established at a fenced point",
        );
        report.published += 1;

        // Route this event's deliveries with broker-only turns: no
        // client ticks, so no client can reconnect, acknowledge or read
        // until every delivery sits in a terminal counter or a replay
        // buffer. This is what pins bucket assignment (acked vs replayed
        // vs retained) regardless of worker-thread timing.
        server.run_turns(1).expect("turn");
        let mut drained = false;
        for _ in 0..fence_budget {
            if server.deliveries_drained() {
                drained = true;
                break;
            }
            server.run_turns(1).expect("turn");
        }
        assert!(drained, "delivery drain failed to settle at event {k}");
        fence!(format!("event {k}"));
    }

    // Heal every outstanding partition and let the system fully recover.
    for slot in subs.iter_mut() {
        if slot.heal_at.take().is_some() {
            slot.client.set_partitioned(false);
        }
    }
    fence!("final recovery");

    report.quiescent = server.run_until_quiescent(fence_budget).expect("turn");
    report.in_flight = server.session_in_flight();
    report.orphaned = server.broker().orphaned_matches();
    let net_stats = server.stats();
    report.acked = net_stats.notifications_acked;
    report.replayed = net_stats.notifications_replayed;
    report.dropped = net_stats.notifications_dropped;
    report.expired = net_stats.notifications_expired;
    report.disconnected = net_stats.notifications_disconnected;
    report.sent = net_stats.notifications_sent;
    report.replay_frames_sent = net_stats.replay_frames_sent;
    report.sessions_created = net_stats.sessions_created;
    report.sessions_resumed = net_stats.sessions_resumed;
    report.sessions_expired = net_stats.sessions_expired;
    report.heartbeat_timeouts = net_stats.heartbeat_timeouts;
    let (_, delivery) = server.shutdown();
    report.delivered = delivery.total_delivered();
    report
}

/// Checks that each client saw its notifications in nondecreasing `seq`
/// order (one event matching several of a client's subscriptions yields
/// equal seqs). SMTP batches several payload lines into one message, so
/// payloads are split per line before parsing.
fn check_ordering(kind: TransportKind, inbox: &Inbox, violations: &mut Vec<String>) {
    let mut last_seq: FxHashMap<ClientId, i64> = FxHashMap::default();
    for message in inbox.lock().iter() {
        for line in message.payload.lines() {
            let Some(seq) = parse_seq(line) else { continue };
            let last = last_seq.entry(message.client).or_insert(i64::MIN);
            if seq < *last {
                violations.push(format!(
                    "{}: {} saw seq {seq} after {last}",
                    kind.name(),
                    message.client,
                ));
            }
            *last = seq;
        }
    }
}

/// Extracts the monotone sequence number from a rendered payload, which
/// contains `(seq, N)` from the event's leading pair.
fn parse_seq(payload: &str) -> Option<i64> {
    let tail = payload.split("(seq, ").nth(1)?;
    let digits: String = tail.chars().take_while(|c| c.is_ascii_digit() || *c == '-').collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flaky_transport_stalls_then_delegates() {
        let (tcp, inbox) = TcpSim::new();
        // Probability 1: every attempt stalls until the engine ticks — but
        // FlakyTransport itself keeps stalling, so nothing arrives.
        let mut always = FlakyTransport::new(Box::new(tcp), 1.0, 7);
        let d = Delivery { client: ClientId(1), payload: "x".into() };
        assert_eq!(always.deliver(&d), Err(TransportError::RateLimited));
        assert!(inbox.lock().is_empty());

        let (tcp2, inbox2) = TcpSim::new();
        let mut never = FlakyTransport::new(Box::new(tcp2), 0.0, 7);
        assert_eq!(never.deliver(&d), Ok(()));
        assert_eq!(inbox2.lock().len(), 1);
        assert_eq!(never.kind(), TransportKind::Tcp);
    }

    #[test]
    fn parse_seq_reads_the_leading_pair() {
        assert_eq!(
            parse_seq("to a [client#1]: sub#2 matched via x — event (seq, 41), (b, c)"),
            Some(41)
        );
        assert_eq!(parse_seq("no sequence here"), None);
    }

    #[test]
    fn ordering_checker_flags_regressions() {
        let inbox = Inbox::default();
        let msg = |seq: i64| crate::transport::ReceivedMessage {
            client: ClientId(1),
            payload: format!("event (seq, {seq}), (a, b)"),
        };
        inbox.lock().extend([msg(1), msg(1), msg(3)]);
        let mut violations = Vec::new();
        check_ordering(TransportKind::Tcp, &inbox, &mut violations);
        assert!(violations.is_empty(), "nondecreasing is fine: {violations:?}");
        inbox.lock().push(msg(2));
        check_ordering(TransportKind::Tcp, &inbox, &mut violations);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("seq 2 after 3"), "{violations:?}");
    }
}
