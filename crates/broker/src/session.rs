//! The session layer of the networked broker: state that survives the
//! connection.
//!
//! PR 8's event loop treated every disconnect as terminal — subscriptions
//! torn down, queued notifications written off as `disconnected`. This
//! module adds the recovery half: a connection opens (or resumes) a
//! *session* with [`ClientMessage::Hello`], and from then on the broker
//! side keeps per-session state in a `SessionTable` entry that outlives
//! the connection:
//!
//! * the session's registered clients (and through them its
//!   subscriptions, which stay in the matcher across disconnects);
//! * a per-session monotone notification `seq` (1, 2, 3, …);
//! * a bounded **replay buffer** of unacknowledged notifications.
//!
//! A client that reconnects quotes its session token and the highest
//! `seq` it saw; the broker replays exactly the retained frames above
//! that mark, in order. A session that stays detached past
//! [`SessionConfig::session_ttl`] logical ticks is expired: its
//! subscriptions are unsubscribed and every retained frame is counted
//! `expired` — so the conservation identity grows to
//!
//! ```text
//! delivered == sent_acked + replayed + in_flight + dropped + expired
//! ```
//!
//! and loss remains impossible to hide (see `NetStats` in
//! [`crate::eventloop`] for the exact bucket definitions).
//!
//! # Logical time
//!
//! Session TTLs, heartbeat timeouts and the client's reconnect backoff
//! all run on an explicit **logical clock** advanced by the driver
//! (`NetBroker::advance_clock`, [`SessionClient::tick`]), never on
//! wall-clock or turn counts. Turns-to-quiescence depend on the
//! notification worker's thread timing; a clock derived from them would
//! make expiry scheduling racy. With driver-advanced ticks, the same
//! seed and the same drive sequence expire the same sessions on every
//! run — the determinism the chaos tier scores bit-for-bit.

use std::collections::VecDeque;
use std::io;

use mio_lite::{SimConnector, Token};
use stopss_types::rng::Rng;
use stopss_types::FxHashMap;

use crate::client::ClientId;
use crate::eventloop::NetClient;
use crate::wire::{ClientMessage, ServerMessage, WireError};

/// Broker-side session knobs (part of
/// [`NetBrokerConfig`](crate::eventloop::NetBrokerConfig)). All durations
/// are in logical ticks — see the module docs.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Maximum retained (unacknowledged) notifications per session.
    /// At the bound the event loop's `BackpressurePolicy` applies:
    /// `DropNewest` drops the new notification with accounting,
    /// `Disconnect` terminates the whole session (its retained frames
    /// count `expired` — it can no longer keep its no-loss promise).
    pub replay_buffer_frames: usize,
    /// Logical ticks a *detached* session survives before expiry. At
    /// expiry its clients' subscriptions are unsubscribed, its clients
    /// unregistered, and every retained frame is counted `expired`.
    pub session_ttl: u64,
    /// Logical ticks of inbound silence after which an *attached*
    /// sessioned connection is presumed partitioned and closed (the
    /// session detaches and the TTL countdown starts). 0 disables the
    /// heartbeat check; legacy connections are never heartbeat-closed.
    pub heartbeat_timeout: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { replay_buffer_frames: 1024, session_ttl: 64, heartbeat_timeout: 0 }
    }
}

/// One retained (delivered-but-unacknowledged) notification.
#[derive(Clone, Debug)]
pub struct RetainedFrame {
    /// Per-session monotone sequence number.
    pub seq: u64,
    /// Rendered payload.
    pub payload: String,
    /// True once the frame has been retransmitted on a resume; its
    /// eventual ack then counts `replayed` rather than `sent_acked`.
    pub retransmitted: bool,
}

/// Broker-side state of one session (see the module docs).
#[derive(Debug)]
pub struct Session {
    /// The attached connection, if any.
    pub conn: Option<Token>,
    /// Clients registered under this session.
    pub clients: Vec<ClientId>,
    /// Next sequence number to assign (starts at 1).
    pub next_seq: u64,
    /// Highest acknowledged sequence number.
    pub acked: u64,
    /// Retained unacknowledged notifications, in `seq` order.
    pub replay: VecDeque<RetainedFrame>,
    /// Logical tick the connection detached (None while attached).
    pub detached_at: Option<u64>,
}

impl Session {
    /// Opens a fresh session attached to `conn`.
    pub fn new(conn: Token) -> Session {
        Session {
            conn: Some(conn),
            clients: Vec::new(),
            next_seq: 1,
            acked: 0,
            replay: VecDeque::new(),
            detached_at: None,
        }
    }

    /// Retains `payload` for replay if the buffer has room: assigns the
    /// next sequence number, appends the frame, and returns the seq.
    /// Returns `None` when the replay buffer already holds `max_frames`
    /// frames — the caller picks the backpressure outcome (drop the
    /// delivery or expire the session); the buffer is never overrun and
    /// a seq is never burned on a shed delivery, so received seqs stay
    /// contiguous.
    pub fn try_retain(&mut self, payload: String, max_frames: usize) -> Option<u64> {
        if self.replay.len() >= max_frames {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.replay.push_back(RetainedFrame { seq, payload, retransmitted: false });
        Some(seq)
    }

    /// Drops every retained frame with `seq <= upto` (a cumulative ack).
    /// Returns `(sent_acked, replayed)` — how many of the dropped frames
    /// reached their terminal bucket without/with a retransmission.
    pub fn ack(&mut self, upto: u64) -> (u64, u64) {
        let mut fresh = 0;
        let mut replayed = 0;
        while let Some(front) = self.replay.front() {
            if front.seq > upto {
                break;
            }
            let frame =
                self.replay.pop_front().expect("invariant: loop condition verified a front frame");
            if frame.retransmitted {
                replayed += 1;
            } else {
                fresh += 1;
            }
        }
        self.acked = self.acked.max(upto.min(self.next_seq.saturating_sub(1)));
        (fresh, replayed)
    }
}

/// The broker-side table of live sessions; owned and driven by the
/// networked event loop.
#[derive(Debug, Default)]
pub struct SessionTable {
    sessions: FxHashMap<u64, Session>,
    client_session: FxHashMap<ClientId, u64>,
    next_token: u64,
}

impl SessionTable {
    /// Opens a fresh session attached to `conn`, returning its token.
    pub fn create(&mut self, conn: Token) -> u64 {
        self.next_token += 1;
        let token = self.next_token;
        self.sessions.insert(token, Session::new(conn));
        token
    }

    /// The session behind `token`, if it is still live.
    pub fn get_mut(&mut self, token: u64) -> Option<&mut Session> {
        self.sessions.get_mut(&token)
    }

    /// Whether `token` names a live session.
    pub fn contains(&self, token: u64) -> bool {
        self.sessions.contains_key(&token)
    }

    /// Binds a freshly registered client to its session.
    pub fn bind_client(&mut self, token: u64, client: ClientId) {
        if let Some(session) = self.sessions.get_mut(&token) {
            session.clients.push(client);
            self.client_session.insert(client, token);
        }
    }

    /// The session token a client is bound to, if any.
    pub fn session_of(&self, client: ClientId) -> Option<u64> {
        self.client_session.get(&client).copied()
    }

    /// Removes a session, unbinding its clients. The caller owns the
    /// accounting of the returned state.
    pub fn remove(&mut self, token: u64) -> Option<Session> {
        let session = self.sessions.remove(&token)?;
        for client in &session.clients {
            self.client_session.remove(client);
        }
        Some(session)
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no session is live (attached or detached).
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Total retained unacknowledged frames across live sessions — the
    /// `in_flight` term of the extended conservation identity.
    pub fn in_flight(&self) -> u64 {
        self.sessions.values().map(|s| s.replay.len() as u64).sum()
    }

    /// Retained frame count of one session, if it is live.
    pub fn retained(&self, token: u64) -> Option<u64> {
        self.sessions.get(&token).map(|s| s.replay.len() as u64)
    }

    /// Tokens of detached sessions whose TTL has lapsed at `now`
    /// (deterministically ordered so expiry accounting is reproducible).
    pub fn expired(&self, now: u64, ttl: u64) -> Vec<u64> {
        let mut due: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.detached_at.is_some_and(|d| now.saturating_sub(d) >= ttl))
            .map(|(token, _)| *token)
            .collect();
        due.sort_unstable();
        due
    }
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// Client-side resilience knobs. Durations are logical ticks (one
/// [`SessionClient::tick`] = one tick).
#[derive(Clone, Copy, Debug)]
pub struct SessionClientConfig {
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
    /// First reconnect delay; doubles per consecutive failure.
    pub backoff_base: u64,
    /// Upper bound on the reconnect delay (the cap of the capped
    /// exponential backoff).
    pub backoff_cap: u64,
    /// Fraction of the computed delay that deterministic jitter may
    /// subtract (`0.0` = none, `0.5` = up to half). Jitter is drawn from
    /// the seeded stream, so the same seed reconnects on the same ticks.
    pub jitter: f64,
    /// Send a [`ClientMessage::Ping`] after this many ticks without one
    /// (0 = never). Keeps an idle connection alive under a broker-side
    /// heartbeat timeout — and lets a partition be detected, because
    /// pings stop getting through.
    pub ping_every: u64,
}

impl Default for SessionClientConfig {
    fn default() -> Self {
        SessionClientConfig {
            seed: 2003,
            backoff_base: 1,
            backoff_cap: 16,
            jitter: 0.5,
            ping_every: 0,
        }
    }
}

/// Counters of one [`SessionClient`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionClientStats {
    /// Connection attempts that reached the handshake.
    pub connects: u64,
    /// Welcomes with `resumed == true`.
    pub resumes: u64,
    /// Welcomes that opened a fresh session.
    pub fresh_sessions: u64,
    /// Notifications suppressed as duplicates (`seq <= last_seen_seq`) —
    /// replays of frames that did arrive before the disconnect.
    pub duplicates_suppressed: u64,
    /// Notifications delivered to the caller (post-dedup).
    pub notifications: u64,
    /// Disconnects observed (peer close or send failure).
    pub disconnects: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ClientState {
    /// Waiting for the backoff delay to lapse before reconnecting.
    Backoff { until: u64 },
    /// Connected, `Hello` sent, waiting for the `Welcome`.
    AwaitingWelcome,
    /// Session open; notifications flow and are acknowledged.
    Established,
}

/// A resilient client over the session protocol: connects, handshakes,
/// acknowledges notifications, suppresses duplicates by `seq`, and — when
/// the connection dies — automatically reconnects with capped exponential
/// backoff plus deterministic jitter and resumes the session.
///
/// Drive it by calling [`SessionClient::tick`] once per logical tick,
/// interleaved with broker turns; each call returns the server messages
/// that surfaced (post-dedup). The caller reacts to
/// `Welcome { resumed: false }` by (re)issuing its `Register`/`Subscribe`
/// requests — the client cannot know what state the application wants.
pub struct SessionClient {
    connector: SimConnector,
    config: SessionClientConfig,
    inner: Option<NetClient>,
    state: ClientState,
    session: u64,
    last_seen_seq: u64,
    /// Highest mark already acknowledged on the current connection.
    ack_sent: u64,
    clock: u64,
    rng: Rng,
    failures: u32,
    last_ping: u64,
    stats: SessionClientStats,
}

impl SessionClient {
    /// A client that will connect to `connector` on its first tick.
    pub fn new(connector: SimConnector, config: SessionClientConfig) -> SessionClient {
        SessionClient {
            connector,
            config,
            inner: None,
            state: ClientState::Backoff { until: 0 },
            session: 0,
            last_seen_seq: 0,
            ack_sent: 0,
            clock: 0,
            rng: Rng::new(config.seed),
            failures: 0,
            last_ping: 0,
            stats: SessionClientStats::default(),
        }
    }

    /// Advances one logical tick: reconnects if due, drains and
    /// acknowledges inbound messages, sends a heartbeat if due, and
    /// detects a dead connection (scheduling the next backoff). Returns
    /// the surfaced messages — notifications post-dedup, plus handshake
    /// and reply traffic the caller may want to react to.
    pub fn tick(&mut self) -> Result<Vec<ServerMessage>, WireError> {
        self.clock += 1;
        if self.inner.is_none() {
            if let ClientState::Backoff { until } = self.state {
                if self.clock >= until {
                    self.connect();
                }
            }
        }
        let mut out = Vec::new();
        let Some(client) = self.inner.as_mut() else {
            return Ok(out);
        };
        for msg in client.poll_recv()? {
            match msg {
                ServerMessage::Welcome { session, resumed } => {
                    self.session = session;
                    self.failures = 0;
                    self.state = ClientState::Established;
                    if resumed {
                        self.stats.resumes += 1;
                        // The resume Hello already acked everything seen.
                        self.ack_sent = self.last_seen_seq;
                    } else {
                        // Fresh session (first connect, or the old one
                        // expired): its seqs restart at 1.
                        self.last_seen_seq = 0;
                        self.ack_sent = 0;
                        self.stats.fresh_sessions += 1;
                    }
                    out.push(ServerMessage::Welcome { session, resumed });
                }
                ServerMessage::Notification { seq, payload } => {
                    if seq != 0 && seq <= self.last_seen_seq {
                        self.stats.duplicates_suppressed += 1;
                        continue;
                    }
                    if seq != 0 {
                        self.last_seen_seq = seq;
                    }
                    self.stats.notifications += 1;
                    out.push(ServerMessage::Notification { seq, payload });
                }
                other => out.push(other),
            }
        }
        // Cumulative ack — only when the mark advanced this tick.
        if self.state == ClientState::Established && self.last_seen_seq > self.ack_sent {
            let ack = ClientMessage::Ack { seq: self.last_seen_seq };
            let inner = self.inner.as_mut().expect("invariant: self.inner is Some on this path");
            if inner.send(&ack).is_err() {
                self.on_disconnect();
                return Ok(out);
            }
            self.ack_sent = self.last_seen_seq;
        }
        if self.config.ping_every > 0
            && self.state == ClientState::Established
            && self.clock.saturating_sub(self.last_ping) >= self.config.ping_every
        {
            self.last_ping = self.clock;
            let ping = ClientMessage::Ping { nonce: self.clock };
            let inner = self.inner.as_mut().expect("invariant: self.inner is Some on this path");
            if inner.send(&ping).is_err() {
                self.on_disconnect();
                return Ok(out);
            }
        }
        let inner = self.inner.as_mut().expect("invariant: self.inner is Some on this path");
        let _ = inner.flush();
        if inner.peer_closed() {
            self.on_disconnect();
        }
        Ok(out)
    }

    /// Sends a request if the session is established; `Ok(false)` means
    /// not-currently-established (the caller retries on a later tick; the
    /// session layer does not queue application requests).
    pub fn request(&mut self, msg: &ClientMessage) -> io::Result<bool> {
        if self.state != ClientState::Established {
            return Ok(false);
        }
        let Some(inner) = self.inner.as_mut() else {
            return Ok(false);
        };
        match inner.send(msg) {
            Ok(()) => Ok(true),
            Err(_) => {
                self.on_disconnect();
                Ok(false)
            }
        }
    }

    /// Hard-kills the current connection (chaos: the link dies under the
    /// client). The client notices on this call and schedules a resume.
    pub fn kill_connection(&mut self) {
        if let Some(mut inner) = self.inner.take() {
            inner.close();
            self.stats.disconnects += 1;
            self.schedule_backoff();
        }
    }

    /// Partitions (or heals) the current connection's link, if any —
    /// while partitioned nothing flows in either direction and the close
    /// of either end stays invisible.
    pub fn set_partitioned(&self, partitioned: bool) {
        if let Some(inner) = self.inner.as_ref() {
            inner.set_partitioned(partitioned);
        }
    }

    /// True while the session handshake has completed on a live
    /// connection.
    pub fn established(&self) -> bool {
        self.state == ClientState::Established
    }

    /// The session token granted by the last `Welcome` (0 before the
    /// first handshake).
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Highest notification `seq` observed (the dedup / resume mark).
    pub fn last_seen_seq(&self) -> u64 {
        self.last_seen_seq
    }

    /// This client's counters.
    pub fn stats(&self) -> SessionClientStats {
        self.stats
    }

    fn connect(&mut self) {
        match NetClient::connect(&self.connector) {
            Ok(mut client) => {
                let hello = ClientMessage::Hello {
                    session: self.session,
                    last_seen_seq: self.last_seen_seq,
                };
                if client.send(&hello).is_ok() {
                    self.inner = Some(client);
                    self.state = ClientState::AwaitingWelcome;
                    self.stats.connects += 1;
                } else {
                    self.schedule_backoff();
                }
            }
            Err(_) => self.schedule_backoff(),
        }
    }

    fn on_disconnect(&mut self) {
        self.inner = None;
        self.stats.disconnects += 1;
        self.schedule_backoff();
    }

    /// Capped exponential backoff with deterministic jitter: delay =
    /// `min(base << failures, cap)` minus up to `jitter` of itself, drawn
    /// from the seeded stream, never below 1 tick.
    fn schedule_backoff(&mut self) {
        let exp = self.failures.min(16);
        let raw = self
            .config
            .backoff_base
            .saturating_mul(1u64 << exp)
            .min(self.config.backoff_cap)
            .max(1);
        let jitter = (raw as f64 * self.config.jitter.clamp(0.0, 1.0) * self.rng.next_f64()) as u64;
        let delay = raw.saturating_sub(jitter).max(1);
        self.failures = self.failures.saturating_add(1);
        self.state = ClientState::Backoff { until: self.clock + delay };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_splits_terminal_buckets_and_is_cumulative() {
        let mut s = Session::new(Token(2));
        for seq in 1..=4u64 {
            s.replay.push_back(RetainedFrame {
                seq,
                payload: format!("p{seq}"),
                retransmitted: seq == 2,
            });
            s.next_seq = seq + 1;
        }
        let (fresh, replayed) = s.ack(3);
        assert_eq!((fresh, replayed), (2, 1), "seqs 1,3 fresh; seq 2 was retransmitted");
        assert_eq!(s.acked, 3);
        assert_eq!(s.replay.len(), 1);
        // Re-acking the same mark is a no-op; acking past next_seq clamps.
        assert_eq!(s.ack(3), (0, 0));
        let (fresh, replayed) = s.ack(100);
        assert_eq!((fresh, replayed), (1, 0));
        assert_eq!(s.acked, 4, "acked clamps to the highest assigned seq");
    }

    #[test]
    fn backoff_is_capped_exponential_and_deterministic() {
        let delays = |seed: u64| -> Vec<u64> {
            let listener = mio_lite::SimListener::new();
            let mut c = SessionClient::new(
                listener.connector(),
                SessionClientConfig {
                    seed,
                    backoff_base: 1,
                    backoff_cap: 8,
                    jitter: 0.5,
                    ..SessionClientConfig::default()
                },
            );
            c.clock = 100;
            let mut out = Vec::new();
            for _ in 0..8 {
                c.schedule_backoff();
                let ClientState::Backoff { until } = c.state else { panic!("backoff") };
                out.push(until - c.clock);
            }
            out
        };
        let a = delays(7);
        let b = delays(7);
        assert_eq!(a, b, "same seed, same reconnect schedule");
        assert!(a.iter().all(|d| (1..=8).contains(d)), "within [1, cap]: {a:?}");
        // The un-jittered envelope grows then caps; with jitter <= 50% the
        // late delays must still exceed half the cap at least once.
        assert!(a[4..].iter().any(|d| *d >= 4), "cap region not collapsed by jitter: {a:?}");
        assert_ne!(a, delays(8), "different seed, different jitter");
    }

    #[test]
    fn expired_reports_detached_sessions_in_token_order() {
        let mut table = SessionTable::default();
        let s1 = table.create(Token(2));
        let s2 = table.create(Token(3));
        let s3 = table.create(Token(4));
        table.get_mut(s1).unwrap().detached_at = Some(10);
        table.get_mut(s3).unwrap().detached_at = Some(12);
        assert_eq!(table.expired(14, 4), vec![s1], "only s1 is past TTL at tick 14");
        assert_eq!(table.expired(16, 4), vec![s1, s3], "token order, attached s2 immune");
        let _ = s2;
    }
}
