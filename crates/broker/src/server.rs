//! The demo front-end.
//!
//! Stands in for the paper's "web-based application for client
//! registration and subscription/publication input" (§4): a command
//! handler over the wire protocol. The web UI was presentation; the
//! command surface underneath — register, subscribe, publish, switch
//! between semantic and syntactic mode — is reproduced verbatim and is
//! what the workload generator drives.

use bytes::{Bytes, BytesMut};
use stopss_types::{Event, Predicate, Subscription};

use crate::dispatcher::Broker;
use crate::notify::DeliveryStats;
use crate::wire::{
    decode_client, encode_server, ClientMessage, ServerMessage, WirePredicate, WireValue,
};

/// The demo server: decodes client commands and drives the broker.
pub struct DemoServer {
    broker: Broker,
}

impl DemoServer {
    /// Wraps a broker.
    pub fn new(broker: Broker) -> Self {
        DemoServer { broker }
    }

    /// The underlying broker (for inbox inspection and direct calls).
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// Handles one decoded command.
    pub fn handle(&self, msg: ClientMessage) -> ServerMessage {
        match msg {
            ClientMessage::Register { name, transport } => {
                let client = self.broker.register_client(name, transport);
                ServerMessage::Registered { client }
            }
            ClientMessage::Subscribe { client, predicates } => {
                let typed = self.intern_predicates(predicates);
                match self.broker.subscribe(client, typed) {
                    Ok(sub) => ServerMessage::Subscribed { sub },
                    Err(e) => ServerMessage::Error { message: e.to_string() },
                }
            }
            ClientMessage::Unsubscribe { client, sub } => {
                match self.broker.unsubscribe(client, sub) {
                    Ok(ok) => ServerMessage::Unsubscribed { ok },
                    Err(e) => ServerMessage::Error { message: e.to_string() },
                }
            }
            ClientMessage::Publish { client: _, pairs } => {
                let event = self.intern_event(pairs);
                let matches = self.broker.publish(&event) as u32;
                ServerMessage::Published { matches }
            }
            ClientMessage::SetMode { semantic } => {
                self.broker.set_semantic_mode(semantic);
                ServerMessage::ModeSet { semantic }
            }
            ClientMessage::SetOntology { synonyms } => self.apply_ontology_delta(synonyms),
            // Session frames are consumed by the networked event loop
            // before its serve phase; reaching the command handler means
            // the transport in use has no session layer.
            ClientMessage::Hello { .. }
            | ClientMessage::Ack { .. }
            | ClientMessage::Ping { .. } => ServerMessage::Error {
                message: "session frame on a transport without a session layer".into(),
            },
        }
    }

    /// Applies a live synonym delta: clones the running ontology, adds
    /// the pairs, swaps the fork in via [`Broker::set_ontology`]. Fails
    /// as an `Error` reply when the active source is not a single plain
    /// ontology (nothing is mutated in that case).
    fn apply_ontology_delta(&self, synonyms: Vec<(String, String)>) -> ServerMessage {
        let source = self.broker.semantic_source();
        let Some(base) = source.as_ontology() else {
            return ServerMessage::Error {
                message: "live ontology delta requires a single-domain ontology source".into(),
            };
        };
        let mut forked = base.clone();
        let interner = self.broker.interner().clone();
        for (canonical, alias) in synonyms {
            let root = interner.intern(&canonical);
            let alias = interner.intern(&alias);
            if let Err(e) = interner.with(|i| forked.synonyms.add_synonym(root, alias, i)) {
                return ServerMessage::Error { message: format!("bad synonym pair: {e}") };
            }
        }
        self.broker.set_ontology(stopss_types::sync::Arc::new(forked));
        ServerMessage::OntologyUpdated { epoch: self.broker.matcher_control_epoch() }
    }

    /// Handles a batch of decoded commands in arrival order, coalescing
    /// every **run of consecutive `Subscribe` messages** into one
    /// [`Broker::subscribe_batch`] call (one matcher fork-and-swap for the
    /// whole run). Any other message acts as a barrier: the pending run is
    /// flushed first, so a `Publish` after a `Subscribe` observes the
    /// subscription exactly as it would under one-at-a-time handling.
    /// Replies are positional — the `k`-th reply answers the `k`-th
    /// message — and identical to what [`DemoServer::handle`] would
    /// produce for each message in sequence. This is the serving path the
    /// networked event loop uses for each poll turn's decoded frames.
    pub fn handle_batch(&self, msgs: Vec<ClientMessage>) -> Vec<ServerMessage> {
        let mut replies: Vec<ServerMessage> = Vec::with_capacity(msgs.len());
        // Pending run of Subscribe requests: broker-level request plus the
        // reply slot (pre-filled with a placeholder, overwritten at flush).
        let mut pending: Vec<(crate::client::ClientId, Vec<Predicate>, usize)> = Vec::new();
        let flush = |pending: &mut Vec<(crate::client::ClientId, Vec<Predicate>, usize)>,
                     replies: &mut Vec<ServerMessage>| {
            if pending.is_empty() {
                return;
            }
            let run = std::mem::take(pending);
            let slots: Vec<usize> = run.iter().map(|(_, _, slot)| *slot).collect();
            let requests = run.into_iter().map(|(c, p, _)| (c, p, None)).collect();
            for (slot, result) in slots.into_iter().zip(self.broker.subscribe_batch(requests)) {
                replies[slot] = match result {
                    Ok(sub) => ServerMessage::Subscribed { sub },
                    Err(e) => ServerMessage::Error { message: e.to_string() },
                };
            }
        };
        for msg in msgs {
            match msg {
                ClientMessage::Subscribe { client, predicates } => {
                    let typed = self.intern_predicates(predicates);
                    let slot = replies.len();
                    replies.push(ServerMessage::Error { message: "pending".into() });
                    pending.push((client, typed, slot));
                }
                other => {
                    flush(&mut pending, &mut replies);
                    replies.push(self.handle(other));
                }
            }
        }
        flush(&mut pending, &mut replies);
        replies
    }

    /// Handles one encoded frame payload; malformed input becomes an
    /// `Error` reply rather than a failure.
    pub fn handle_frame(&self, mut frame: Bytes) -> ServerMessage {
        match decode_client(&mut frame) {
            Ok(msg) => self.handle(msg),
            Err(e) => ServerMessage::Error { message: format!("bad request: {e}") },
        }
    }

    /// Convenience: handle a frame and encode the reply.
    pub fn handle_frame_encoded(&self, frame: Bytes) -> Bytes {
        let reply = self.handle_frame(frame);
        let mut buf = BytesMut::new();
        encode_server(&reply, &mut buf);
        buf.freeze()
    }

    /// Stops the broker, draining notifications.
    pub fn shutdown(self) -> DeliveryStats {
        self.broker.shutdown()
    }

    fn intern_predicates(&self, predicates: Vec<WirePredicate>) -> Vec<Predicate> {
        let interner = self.broker.interner().clone();
        predicates
            .into_iter()
            .map(|p| {
                let attr = interner.intern(&p.attr);
                let value = match p.value {
                    WireValue::Int(i) => stopss_types::Value::Int(i),
                    WireValue::Float(f) => stopss_types::Value::Float(f),
                    WireValue::Bool(b) => stopss_types::Value::Bool(b),
                    WireValue::Term(t) => stopss_types::Value::Sym(interner.intern(&t)),
                };
                Predicate::new(attr, p.op, value)
            })
            .collect()
    }

    fn intern_event(&self, pairs: Vec<(String, WireValue)>) -> Event {
        let interner = self.broker.interner().clone();
        pairs
            .into_iter()
            .map(|(attr, value)| {
                let attr = interner.intern(&attr);
                let value = match value {
                    WireValue::Int(i) => stopss_types::Value::Int(i),
                    WireValue::Float(f) => stopss_types::Value::Float(f),
                    WireValue::Bool(b) => stopss_types::Value::Bool(b),
                    WireValue::Term(t) => stopss_types::Value::Sym(interner.intern(&t)),
                };
                (attr, value)
            })
            .collect()
    }
}

/// Renders a subscription back to wire predicates (used by tooling/tests).
pub fn subscription_to_wire(
    sub: &Subscription,
    interner: &stopss_types::Interner,
) -> Vec<WirePredicate> {
    sub.predicates()
        .iter()
        .map(|p| WirePredicate {
            attr: interner.try_resolve(p.attr).unwrap_or("<?>").to_owned(),
            op: p.op,
            value: WireValue::from_value(&p.value, interner),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::BrokerConfig;
    use crate::transport::TransportKind;
    use crate::wire::encode_client;
    use std::sync::Arc;
    use stopss_types::{Interner, Operator, SharedInterner};
    use stopss_workload::JobFinderDomain;

    fn server() -> DemoServer {
        let mut interner = Interner::new();
        let domain = JobFinderDomain::build(&mut interner);
        let broker = Broker::new(
            BrokerConfig::default(),
            Arc::new(domain.ontology),
            SharedInterner::from_interner(interner),
        );
        DemoServer::new(broker)
    }

    fn register(server: &DemoServer, name: &str) -> crate::client::ClientId {
        match server
            .handle(ClientMessage::Register { name: name.into(), transport: TransportKind::Tcp })
        {
            ServerMessage::Registered { client } => client,
            other => panic!("unexpected reply: {other:?}"),
        }
    }

    /// The full paper flow, §1: recruiter subscribes, candidate publishes,
    /// the semantic mode matches and the syntactic mode does not.
    #[test]
    fn paper_demo_flow_over_the_wire() {
        let server = server();
        let company = register(&server, "acme");
        let candidate = register(&server, "alice");

        let subscribe = ClientMessage::Subscribe {
            client: company,
            predicates: vec![
                WirePredicate {
                    attr: "university".into(),
                    op: Operator::Eq,
                    value: WireValue::Term("uoft".into()),
                },
                WirePredicate {
                    attr: "degree".into(),
                    op: Operator::Eq,
                    value: WireValue::Term("phd".into()),
                },
                WirePredicate {
                    attr: "professional experience".into(),
                    op: Operator::Ge,
                    value: WireValue::Int(4),
                },
            ],
        };
        assert!(matches!(server.handle(subscribe), ServerMessage::Subscribed { .. }));

        // E: (school, uoft)(degree, phd)(work experience, …)(graduation year, 1990)
        let publish = ClientMessage::Publish {
            client: candidate,
            pairs: vec![
                ("school".into(), WireValue::Term("uoft".into())),
                ("degree".into(), WireValue::Term("phd".into())),
                ("graduation year".into(), WireValue::Int(1990)),
            ],
        };
        assert_eq!(server.handle(publish.clone()), ServerMessage::Published { matches: 1 });

        // Syntactic mode: "school" is not "university" and there is no
        // professional-experience attribute at all.
        server.handle(ClientMessage::SetMode { semantic: false });
        assert_eq!(server.handle(publish.clone()), ServerMessage::Published { matches: 0 });
        server.handle(ClientMessage::SetMode { semantic: true });
        assert_eq!(server.handle(publish), ServerMessage::Published { matches: 1 });
    }

    #[test]
    fn frames_decode_and_errors_are_replies() {
        let server = server();
        let mut buf = BytesMut::new();
        encode_client(
            &ClientMessage::Register { name: "x".into(), transport: TransportKind::Sms },
            &mut buf,
        );
        let reply = server.handle_frame(buf.freeze());
        assert!(matches!(reply, ServerMessage::Registered { .. }));

        let garbage = Bytes::from_static(&[0xDE, 0xAD]);
        let reply = server.handle_frame(garbage);
        assert!(matches!(reply, ServerMessage::Error { .. }));
    }

    #[test]
    fn handle_frame_encoded_roundtrips() {
        let server = server();
        let mut buf = BytesMut::new();
        encode_client(
            &ClientMessage::Register { name: "x".into(), transport: TransportKind::Udp },
            &mut buf,
        );
        let mut reply = server.handle_frame_encoded(buf.freeze());
        let decoded = crate::wire::decode_server(&mut reply).unwrap();
        assert!(matches!(decoded, ServerMessage::Registered { .. }));
    }

    #[test]
    fn subscribe_for_unknown_client_is_an_error_reply() {
        let server = server();
        let reply = server.handle(ClientMessage::Subscribe {
            client: crate::client::ClientId(404),
            predicates: vec![],
        });
        assert!(matches!(reply, ServerMessage::Error { .. }));
    }

    #[test]
    fn handle_batch_equals_sequential_handling() {
        let batch_server = server();
        let seq_server = server();
        let uni = |who: &str| WirePredicate {
            attr: "university".into(),
            op: Operator::Eq,
            value: WireValue::Term(who.into()),
        };
        let script = |client: crate::client::ClientId| {
            vec![
                ClientMessage::Subscribe { client, predicates: vec![uni("uoft")] },
                ClientMessage::Subscribe { client, predicates: vec![uni("uoft")] },
                // Barrier: the publish must observe both subscriptions.
                ClientMessage::Publish {
                    client,
                    pairs: vec![("school".into(), WireValue::Term("uoft".into()))],
                },
                ClientMessage::Subscribe { client, predicates: vec![uni("mit")] },
                // Unknown client inside a run must reject positionally
                // without consuming a SubId for the good ones around it.
                ClientMessage::Subscribe {
                    client: crate::client::ClientId(404),
                    predicates: vec![uni("uoft")],
                },
                ClientMessage::Subscribe { client, predicates: vec![uni("uoft")] },
                ClientMessage::Publish {
                    client,
                    pairs: vec![("school".into(), WireValue::Term("uoft".into()))],
                },
            ]
        };
        let batch_client = register(&batch_server, "acme");
        let seq_client = register(&seq_server, "acme");
        let batched = batch_server.handle_batch(script(batch_client));
        let sequential: Vec<ServerMessage> =
            script(seq_client).into_iter().map(|m| seq_server.handle(m)).collect();
        assert_eq!(batched, sequential);
        assert_eq!(batched[2], ServerMessage::Published { matches: 2 });
        assert_eq!(batched[6], ServerMessage::Published { matches: 3 });
        assert!(matches!(batched[4], ServerMessage::Error { .. }));
        assert!(batch_server.handle_batch(Vec::new()).is_empty());
    }

    #[test]
    fn subscription_to_wire_reverses_interning() {
        let server = server();
        let company = register(&server, "acme");
        let _ = company;
        let mut interner = Interner::new();
        let sub = stopss_types::SubscriptionBuilder::new(&mut interner)
            .term_eq("university", "uoft")
            .build(stopss_types::SubId(1));
        let wire = subscription_to_wire(&sub, &interner);
        assert_eq!(wire[0].attr, "university");
        assert_eq!(wire[0].value, WireValue::Term("uoft".into()));
    }
}
