//! # stopss-broker
//!
//! The demonstration runtime of the S-ToPSS paper (Figure 2): everything
//! around the matcher that turns it into a running publish/subscribe
//! service.
//!
//! * [`Broker`] — client registry, subscription ownership, publish →
//!   notify pipeline, semantic/syntactic mode switch;
//! * [`NotificationEngine`] — queued delivery over per-client transports;
//! * [`transport`] — simulated TCP / UDP / SMTP / SMS with their
//!   characteristic behaviours (loss, batching, rate limits, truncation);
//! * [`chaos`] — seeded fault injection (dropped connections, slow
//!   consumers, engine restarts) scored on delivery/ordering invariants;
//! * [`wire`] — the length-framed binary protocol of the demo front-end;
//! * [`DemoServer`] — the command surface standing in for the paper's web
//!   application.

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod dispatcher;
pub mod notify;
pub mod server;
pub mod transport;
pub mod wire;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport, FlakyTransport};
pub use client::{ClientId, ClientInfo};
pub use dispatcher::{Broker, BrokerConfig, BrokerError, TransportFactory};
pub use notify::{DeliveryStats, NotificationEngine, TransportStats};
pub use server::{subscription_to_wire, DemoServer};
pub use transport::{
    Delivery, Inbox, ReceivedMessage, SmsSim, SmtpSim, TcpSim, Transport, TransportError,
    TransportKind, UdpSim, SMS_MAX_CHARS,
};
pub use wire::{
    decode_client, decode_server, encode_client, encode_server, try_read_frame, write_frame,
    ClientMessage, ServerMessage, WireError, WirePredicate, WireValue,
};
