//! # stopss-broker
//!
//! The demonstration runtime of the S-ToPSS paper (Figure 2): everything
//! around the matcher that turns it into a running publish/subscribe
//! service.
//!
//! * [`Broker`] — client registry, subscription ownership, publish →
//!   notify pipeline, semantic/syntactic mode switch;
//! * [`NotificationEngine`] — queued delivery over per-client transports;
//! * [`transport`] — simulated TCP / UDP / SMTP / SMS with their
//!   characteristic behaviours (loss, batching, rate limits, truncation);
//! * [`chaos`] — seeded fault injection (dropped connections, slow
//!   consumers, engine restarts) scored on delivery/ordering invariants;
//! * [`wire`] — the length-framed binary protocol of the demo front-end
//!   (normative spec: `docs/WIRE_PROTOCOL.md` at the repository root);
//! * [`DemoServer`] — the command surface standing in for the paper's web
//!   application;
//! * [`eventloop`] — the networked serving path: a readiness event loop
//!   ([`NetBroker`]) multiplexing many framed connections onto the broker
//!   core, with bounded outbound queues and an explicit
//!   [`BackpressurePolicy`];
//! * [`session`] — the resilience layer on top of it: sessions that
//!   survive the connection, bounded replay buffers, reconnect-with-
//!   resume ([`SessionClient`]), heartbeats, and TTL expiry with full
//!   accounting.
//!
//! The repository-level guides `docs/ARCHITECTURE.md` (system shape),
//! `docs/WIRE_PROTOCOL.md` (frame/message spec) and `docs/OPERATIONS.md`
//! (knob and benchmark reference) cover how these pieces fit together.

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod dispatcher;
pub mod eventloop;
pub mod notify;
pub mod server;
pub mod session;
pub mod transport;
pub mod wire;

pub use chaos::{
    run_chaos, run_net_chaos, run_session_chaos, ChaosConfig, ChaosReport, FlakyTransport,
    NetChaosConfig, NetChaosReport, SessionChaosConfig, SessionChaosReport,
};
pub use client::{ClientId, ClientInfo};
pub use dispatcher::{Broker, BrokerConfig, BrokerError, TransportFactory};
pub use eventloop::{
    BackpressurePolicy, NetBroker, NetBrokerConfig, NetClient, NetStats, NetTransport,
};
pub use notify::{DeliveryStats, NotificationEngine, TransportStats};
pub use server::{subscription_to_wire, DemoServer};
pub use session::{SessionClient, SessionClientConfig, SessionClientStats, SessionConfig};
pub use transport::{
    Delivery, Inbox, ReceivedMessage, SmsSim, SmtpSim, TcpSim, Transport, TransportError,
    TransportKind, UdpSim, SMS_MAX_CHARS,
};
pub use wire::{
    decode_client, decode_server, encode_client, encode_server, try_read_frame,
    try_read_frame_bounded, write_frame, ClientMessage, ServerMessage, WireError, WirePredicate,
    WireValue, MAX_FRAME_LEN,
};
