//! The notification engine.
//!
//! "Our software demonstration presents a notification engine that can
//! send notifications to the clients using different transports" (§4).
//!
//! Deliveries flow through a crossbeam channel to one worker thread that
//! owns the transports. Rate-limited failures are retried after a window
//! tick (windows open only on the retry path, keeping retry counts
//! deterministic); lost datagrams are counted and abandoned
//! (fire-and-forget semantics). Batching transports are flushed whenever
//! the queue drains and at shutdown.

use std::thread::JoinHandle;

use stopss_types::sync::atomic::{AtomicU64, Ordering};
use stopss_types::sync::Arc;

use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use stopss_types::FxHashMap;

use crate::transport::{Delivery, Transport, TransportError, TransportKind};

/// Per-transport delivery counters (lock-free snapshot).
#[derive(Default, Debug)]
struct Counters {
    attempted: AtomicU64,
    delivered: AtomicU64,
    lost: AtomicU64,
    retried: AtomicU64,
    rate_dropped: AtomicU64,
}

/// Snapshot of one transport's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Deliveries handed to the transport.
    pub attempted: u64,
    /// Successfully delivered (or buffered for batch send).
    pub delivered: u64,
    /// Lost in transit (UDP semantics).
    pub lost: u64,
    /// Retry attempts performed.
    pub retried: u64,
    /// Dropped after exhausting rate-limit retries.
    pub rate_dropped: u64,
}

/// Snapshot of the engine's counters across all transports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Per-transport stats in [`TransportKind::ALL`] order.
    pub per_transport: Vec<(TransportKind, TransportStats)>,
}

impl DeliveryStats {
    /// Stats for one transport kind.
    pub fn get(&self, kind: TransportKind) -> TransportStats {
        self.per_transport.iter().find(|(k, _)| *k == kind).map(|(_, s)| *s).unwrap_or_default()
    }

    /// Total deliveries attempted.
    pub fn total_attempted(&self) -> u64 {
        self.per_transport.iter().map(|(_, s)| s.attempted).sum()
    }

    /// Total deliveries that reached an inbox (or batch buffer).
    pub fn total_delivered(&self) -> u64 {
        self.per_transport.iter().map(|(_, s)| s.delivered).sum()
    }

    /// Total terminal failures: lost datagrams plus deliveries dropped
    /// after exhausting rate-limit retries. Every attempted delivery is
    /// either delivered or a failure: `total_attempted == total_delivered
    /// + total_failures` holds at shutdown.
    pub fn total_failures(&self) -> u64 {
        self.per_transport.iter().map(|(_, s)| s.lost + s.rate_dropped).sum()
    }

    /// Folds another snapshot into this one (summing per-transport
    /// counters), keeping [`TransportKind::ALL`] order. Used to carry
    /// counters across notification-engine restarts.
    pub fn merge(&mut self, other: &DeliveryStats) {
        for (kind, stats) in &other.per_transport {
            match self.per_transport.iter_mut().find(|(k, _)| k == kind) {
                Some((_, mine)) => {
                    mine.attempted += stats.attempted;
                    mine.delivered += stats.delivered;
                    mine.lost += stats.lost;
                    mine.retried += stats.retried;
                    mine.rate_dropped += stats.rate_dropped;
                }
                None => self.per_transport.push((*kind, *stats)),
            }
        }
        self.per_transport
            .sort_by_key(|(kind, _)| TransportKind::ALL.iter().position(|k| k == kind));
    }
}

/// How many rate-limit retries before a delivery is abandoned.
const MAX_RETRIES: u32 = 3;

/// The notification engine: queue + worker + transports.
pub struct NotificationEngine {
    sender: Option<Sender<(TransportKind, Delivery)>>,
    worker: Option<JoinHandle<()>>,
    counters: Arc<FxHashMap<TransportKind, Counters>>,
}

impl NotificationEngine {
    /// Starts the engine over the given transports (one per kind; kinds
    /// may be missing, deliveries to them are rejected by `enqueue`).
    pub fn start(transports: Vec<Box<dyn Transport>>) -> Self {
        let mut counters_map: FxHashMap<TransportKind, Counters> = FxHashMap::default();
        for t in &transports {
            counters_map.insert(t.kind(), Counters::default());
        }
        let counters = Arc::new(counters_map);
        let (sender, receiver) = channel::unbounded();
        let worker_counters = counters.clone();
        let worker = std::thread::Builder::new()
            .name("stopss-notify".into())
            .spawn(move || worker_loop(receiver, transports, worker_counters))
            .expect("invariant: spawning the notification worker cannot fail");
        NotificationEngine { sender: Some(sender), worker: Some(worker), counters }
    }

    /// Enqueues a delivery; returns false if the transport kind is not
    /// configured or the engine is shutting down.
    pub fn enqueue(&self, kind: TransportKind, delivery: Delivery) -> bool {
        if !self.counters.contains_key(&kind) {
            return false;
        }
        match &self.sender {
            Some(sender) => sender.send((kind, delivery)).is_ok(),
            None => false,
        }
    }

    /// Current counter snapshot (transports may still be draining; totals
    /// are monotone).
    pub fn stats(&self) -> DeliveryStats {
        let mut per_transport: Vec<(TransportKind, TransportStats)> = self
            .counters
            .iter()
            .map(|(kind, c)| {
                // ordering: monotone delivery counters (delivered ==
                // sent + dropped + disconnected is checked on final,
                // quiesced stats); a live snapshot needs no
                // cross-counter consistency.
                (
                    *kind,
                    TransportStats {
                        attempted: c.attempted.load(Ordering::Relaxed),
                        delivered: c.delivered.load(Ordering::Relaxed),
                        lost: c.lost.load(Ordering::Relaxed),
                        retried: c.retried.load(Ordering::Relaxed),
                        rate_dropped: c.rate_dropped.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        per_transport.sort_by_key(|(kind, _)| TransportKind::ALL.iter().position(|k| k == kind));
        DeliveryStats { per_transport }
    }

    /// Drains the queue, flushes batching transports, stops the worker and
    /// returns the final stats.
    pub fn shutdown(mut self) -> DeliveryStats {
        self.sender.take(); // close the channel; the worker drains and exits
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        self.stats()
    }
}

impl Drop for NotificationEngine {
    fn drop(&mut self) {
        self.sender.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn worker_loop(
    receiver: Receiver<(TransportKind, Delivery)>,
    transports: Vec<Box<dyn Transport>>,
    counters: Arc<FxHashMap<TransportKind, Counters>>,
) {
    let mut by_kind: FxHashMap<TransportKind, Box<dyn Transport>> = FxHashMap::default();
    for t in transports {
        by_kind.insert(t.kind(), t);
    }
    // Block for each delivery; when the channel closes, fall through to
    // the final flush.
    while let Ok((kind, delivery)) = receiver.recv() {
        process_one(kind, &delivery, &mut by_kind, &counters);
        // Opportunistically drain without blocking, then flush batchers so
        // SMTP mail leaves whenever the system goes quiet. Rate windows are
        // NOT reopened here: ticks happen only on the retry path inside
        // `process_one`, so retry accounting does not depend on how the
        // queue happened to batch under scheduler timing.
        loop {
            match receiver.try_recv() {
                Ok((kind, delivery)) => process_one(kind, &delivery, &mut by_kind, &counters),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break,
            }
        }
        for t in by_kind.values_mut() {
            t.flush();
        }
    }
    for t in by_kind.values_mut() {
        t.flush();
    }
}

fn process_one(
    kind: TransportKind,
    delivery: &Delivery,
    by_kind: &mut FxHashMap<TransportKind, Box<dyn Transport>>,
    counters: &FxHashMap<TransportKind, Counters>,
) {
    let Some(transport) = by_kind.get_mut(&kind) else {
        return;
    };
    let c = &counters[&kind];
    // ordering: monotone delivery counters (here and below); only the
    // single worker thread increments, readers take snapshots.
    // conservation: attempted == delivered + lost + rate_dropped
    c.attempted.fetch_add(1, Ordering::Relaxed);
    let mut attempt = 0;
    loop {
        match transport.deliver(delivery) {
            Ok(()) => {
                c.delivered.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(TransportError::Lost) => {
                c.lost.fetch_add(1, Ordering::Relaxed);
                return; // datagram semantics: no retry
            }
            Err(TransportError::RateLimited) => {
                if attempt >= MAX_RETRIES {
                    c.rate_dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                attempt += 1;
                c.retried.fetch_add(1, Ordering::Relaxed);
                transport.tick(); // open the next rate window
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientId;
    use crate::transport::{SmsSim, SmtpSim, TcpSim, UdpSim};

    fn delivery(client: u64, payload: &str) -> Delivery {
        Delivery { client: ClientId(client), payload: payload.to_owned() }
    }

    fn engine_with_all() -> (
        NotificationEngine,
        crate::transport::Inbox,
        crate::transport::Inbox,
        crate::transport::Inbox,
        crate::transport::Inbox,
    ) {
        let (tcp, tcp_inbox) = TcpSim::new();
        let (udp, udp_inbox) = UdpSim::new(0.5, 7);
        let (smtp, smtp_inbox) = SmtpSim::new();
        let (sms, sms_inbox) = SmsSim::new(100);
        let engine = NotificationEngine::start(vec![
            Box::new(tcp),
            Box::new(udp),
            Box::new(smtp),
            Box::new(sms),
        ]);
        (engine, tcp_inbox, udp_inbox, smtp_inbox, sms_inbox)
    }

    #[test]
    fn tcp_deliveries_all_arrive() {
        let (engine, tcp_inbox, ..) = engine_with_all();
        for k in 0..50 {
            assert!(engine.enqueue(TransportKind::Tcp, delivery(1, &format!("m{k}"))));
        }
        let stats = engine.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 50);
        assert_eq!(tcp_inbox.lock().len(), 50);
    }

    #[test]
    fn udp_losses_are_counted_not_retried() {
        let (engine, _tcp, udp_inbox, ..) = engine_with_all();
        for k in 0..200 {
            engine.enqueue(TransportKind::Udp, delivery(2, &format!("m{k}")));
        }
        let stats = engine.shutdown();
        let udp = stats.get(TransportKind::Udp);
        assert_eq!(udp.attempted, 200);
        assert_eq!(udp.delivered + udp.lost, 200);
        assert!(udp.lost > 50, "seeded ≈50% loss, got {}", udp.lost);
        assert_eq!(udp.retried, 0);
        assert_eq!(udp_inbox.lock().len() as u64, udp.delivered);
    }

    #[test]
    fn smtp_batches_are_flushed_at_shutdown() {
        let (engine, _tcp, _udp, smtp_inbox, _sms) = engine_with_all();
        for k in 0..10 {
            engine.enqueue(TransportKind::Smtp, delivery(3, &format!("mail{k}")));
        }
        let stats = engine.shutdown();
        assert_eq!(stats.get(TransportKind::Smtp).delivered, 10);
        let inbox = smtp_inbox.lock();
        let total_lines: usize = inbox.iter().map(|m| m.payload.lines().count()).sum();
        assert_eq!(total_lines, 10, "all mail delivered, possibly batched");
        assert!(inbox.len() <= 10);
    }

    #[test]
    fn sms_rate_limit_recovers_via_retry() {
        let (sms, sms_inbox) = SmsSim::new(1);
        let engine = NotificationEngine::start(vec![Box::new(sms)]);
        for k in 0..5 {
            engine.enqueue(TransportKind::Sms, delivery(4, &format!("sms{k}")));
        }
        let stats = engine.shutdown();
        let s = stats.get(TransportKind::Sms);
        assert_eq!(s.delivered, 5, "retries after window ticks deliver everything");
        assert!(s.retried >= 4);
        assert_eq!(sms_inbox.lock().len(), 5);
    }

    #[test]
    fn unconfigured_transport_is_rejected() {
        let (tcp, _inbox) = TcpSim::new();
        let engine = NotificationEngine::start(vec![Box::new(tcp)]);
        assert!(!engine.enqueue(TransportKind::Sms, delivery(1, "x")));
        let stats = engine.shutdown();
        assert_eq!(stats.get(TransportKind::Sms), TransportStats::default());
    }

    /// A transport that never accepts a delivery: every attempt is
    /// rate-limited, so the engine burns its full retry budget and then
    /// drops. Pins the shutdown accounting identity.
    struct FailingTransport;

    impl Transport for FailingTransport {
        fn kind(&self) -> TransportKind {
            TransportKind::Tcp
        }

        fn deliver(&mut self, _delivery: &Delivery) -> Result<(), TransportError> {
            Err(TransportError::RateLimited)
        }
    }

    #[test]
    fn shutdown_accounting_balances_under_total_failure() {
        const N: u64 = 25;
        let engine = NotificationEngine::start(vec![Box::new(FailingTransport)]);
        for k in 0..N {
            assert!(engine.enqueue(TransportKind::Tcp, delivery(1, &format!("m{k}"))));
        }
        let stats = engine.shutdown();
        let s = stats.get(TransportKind::Tcp);
        assert_eq!(s.attempted, N);
        assert_eq!(s.delivered, 0);
        assert_eq!(s.rate_dropped, N, "every delivery exhausts its retries");
        assert_eq!(s.retried, N * MAX_RETRIES as u64);
        assert_eq!(stats.total_attempted(), stats.total_delivered() + stats.total_failures());
    }

    #[test]
    fn merge_sums_counters_and_keeps_kind_order() {
        let mut a = DeliveryStats {
            per_transport: vec![(
                TransportKind::Udp,
                TransportStats { attempted: 3, delivered: 2, lost: 1, ..Default::default() },
            )],
        };
        let b = DeliveryStats {
            per_transport: vec![
                (
                    TransportKind::Tcp,
                    TransportStats { attempted: 5, delivered: 5, ..Default::default() },
                ),
                (
                    TransportKind::Udp,
                    TransportStats { attempted: 4, delivered: 4, ..Default::default() },
                ),
            ],
        };
        a.merge(&b);
        assert_eq!(a.get(TransportKind::Udp).attempted, 7);
        assert_eq!(a.get(TransportKind::Udp).delivered, 6);
        assert_eq!(a.get(TransportKind::Udp).lost, 1);
        assert_eq!(a.get(TransportKind::Tcp).delivered, 5);
        let kinds: Vec<_> = a.per_transport.iter().map(|(k, _)| *k).collect();
        assert_eq!(kinds, vec![TransportKind::Tcp, TransportKind::Udp], "ALL order");
        assert_eq!(a.total_attempted(), a.total_delivered() + a.total_failures());
    }

    #[test]
    fn stats_snapshot_while_running() {
        let (engine, ..) = engine_with_all();
        engine.enqueue(TransportKind::Tcp, delivery(1, "x"));
        // Snapshot may or may not have caught the delivery yet; totals are
        // monotone and shutdown settles them.
        let _ = engine.stats();
        let final_stats = engine.shutdown();
        assert_eq!(final_stats.get(TransportKind::Tcp).delivered, 1);
    }
}
