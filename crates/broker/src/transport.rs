//! Simulated notification transports.
//!
//! Figure 2 of the paper shows the notification engine fanning out over
//! SMS, TCP, UDP and SMTP. Real network endpoints would make the
//! demonstration non-reproducible, so each transport is simulated
//! in-memory *with its characteristic failure mode preserved*:
//!
//! * [`TcpSim`] — reliable, ordered, never drops;
//! * [`UdpSim`] — fire-and-forget with seeded, deterministic loss;
//! * [`SmsSim`] — token-bucket rate limiting and 160-character payload
//!   truncation;
//! * [`SmtpSim`] — mailbox batching: messages accumulate per client and
//!   are sent as one "email" per flush.
//!
//! Everything downstream (queueing, retries, per-transport accounting)
//! exercises the same code paths a networked deployment would.

use stopss_types::sync::{Arc, Mutex};

use crate::client::ClientId;
// The broker sits below the workload crate in the experiment stack, so it
// takes the deterministic PCG32 from the shared bottom layer —
// `stopss_workload::rng` re-exports this same implementation.
use stopss_types::rng::Rng;

/// The transport families of the demo setup.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// Reliable stream.
    Tcp,
    /// Lossy datagrams.
    Udp,
    /// Batched mail.
    Smtp,
    /// Rate-limited short messages.
    Sms,
}

impl TransportKind {
    /// All kinds, for sweeps and round-robin assignment.
    pub const ALL: [TransportKind; 4] =
        [TransportKind::Tcp, TransportKind::Udp, TransportKind::Smtp, TransportKind::Sms];

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Tcp => "tcp",
            TransportKind::Udp => "udp",
            TransportKind::Smtp => "smtp",
            TransportKind::Sms => "sms",
        }
    }
}

/// A notification rendered for delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Destination client.
    pub client: ClientId,
    /// Rendered payload.
    pub payload: String,
}

/// Why a delivery attempt failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The message was lost (no retry will help — datagram semantics).
    Lost,
    /// Temporarily over the rate limit (retrying after a window helps).
    RateLimited,
}

/// A message observed at the receiving end of a simulated transport.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReceivedMessage {
    /// Destination client.
    pub client: ClientId,
    /// Payload as the receiver saw it (possibly truncated or batched).
    pub payload: String,
}

/// Shared inbox handle for inspecting what a transport delivered.
pub type Inbox = Arc<Mutex<Vec<ReceivedMessage>>>;

/// A notification transport.
pub trait Transport: Send {
    /// Transport family.
    fn kind(&self) -> TransportKind;

    /// Attempts one delivery.
    fn deliver(&mut self, delivery: &Delivery) -> Result<(), TransportError>;

    /// Called by the engine between retry attempts; rate-limited
    /// transports refill their budget here.
    fn tick(&mut self) {}

    /// Flushes any buffered messages (batching transports).
    fn flush(&mut self) {}
}

/// Reliable, ordered delivery.
pub struct TcpSim {
    inbox: Inbox,
}

impl TcpSim {
    /// Creates the transport and returns it with its inbox.
    pub fn new() -> (Self, Inbox) {
        let inbox: Inbox = Arc::default();
        (TcpSim::with_inbox(inbox.clone()), inbox)
    }

    /// Creates the transport over an existing inbox — restarted engines
    /// keep appending to the same receiving end.
    pub fn with_inbox(inbox: Inbox) -> Self {
        TcpSim { inbox }
    }
}

impl Transport for TcpSim {
    fn kind(&self) -> TransportKind {
        TransportKind::Tcp
    }

    fn deliver(&mut self, delivery: &Delivery) -> Result<(), TransportError> {
        self.inbox
            .lock()
            .push(ReceivedMessage { client: delivery.client, payload: delivery.payload.clone() });
        Ok(())
    }
}

/// Fire-and-forget datagrams with seeded loss.
pub struct UdpSim {
    inbox: Inbox,
    rng: Rng,
    loss_probability: f64,
}

impl UdpSim {
    /// Creates the transport with the given deterministic loss rate.
    pub fn new(loss_probability: f64, seed: u64) -> (Self, Inbox) {
        let inbox: Inbox = Arc::default();
        (UdpSim::with_inbox(loss_probability, seed, inbox.clone()), inbox)
    }

    /// Creates the transport over an existing inbox.
    pub fn with_inbox(loss_probability: f64, seed: u64, inbox: Inbox) -> Self {
        UdpSim { inbox, rng: Rng::new(seed), loss_probability }
    }
}

impl Transport for UdpSim {
    fn kind(&self) -> TransportKind {
        TransportKind::Udp
    }

    fn deliver(&mut self, delivery: &Delivery) -> Result<(), TransportError> {
        if self.rng.chance(self.loss_probability) {
            return Err(TransportError::Lost);
        }
        self.inbox
            .lock()
            .push(ReceivedMessage { client: delivery.client, payload: delivery.payload.clone() });
        Ok(())
    }
}

/// SMS payload limit (classic GSM single-segment).
pub const SMS_MAX_CHARS: usize = 160;

/// Rate-limited, truncating short messages.
pub struct SmsSim {
    inbox: Inbox,
    /// Remaining sends in the current window.
    tokens: u32,
    /// Window budget restored by `tick`.
    budget: u32,
    truncated: u64,
}

impl SmsSim {
    /// Creates the transport with `budget` messages per rate window.
    pub fn new(budget: u32) -> (Self, Inbox) {
        let inbox: Inbox = Arc::default();
        (SmsSim::with_inbox(budget, inbox.clone()), inbox)
    }

    /// Creates the transport over an existing inbox.
    pub fn with_inbox(budget: u32, inbox: Inbox) -> Self {
        SmsSim { inbox, tokens: budget, budget, truncated: 0 }
    }

    /// Number of payloads clipped to [`SMS_MAX_CHARS`].
    pub fn truncated_count(&self) -> u64 {
        self.truncated
    }
}

impl Transport for SmsSim {
    fn kind(&self) -> TransportKind {
        TransportKind::Sms
    }

    fn deliver(&mut self, delivery: &Delivery) -> Result<(), TransportError> {
        if self.tokens == 0 {
            return Err(TransportError::RateLimited);
        }
        self.tokens -= 1;
        let payload = if delivery.payload.chars().count() > SMS_MAX_CHARS {
            self.truncated += 1;
            delivery.payload.chars().take(SMS_MAX_CHARS).collect()
        } else {
            delivery.payload.clone()
        };
        self.inbox.lock().push(ReceivedMessage { client: delivery.client, payload });
        Ok(())
    }

    fn tick(&mut self) {
        self.tokens = self.budget;
    }
}

/// Batched mail: deliveries accumulate per client until `flush`.
pub struct SmtpSim {
    inbox: Inbox,
    pending: Vec<(ClientId, Vec<String>)>,
    batches_sent: u64,
}

impl SmtpSim {
    /// Creates the transport.
    pub fn new() -> (Self, Inbox) {
        let inbox: Inbox = Arc::default();
        (SmtpSim::with_inbox(inbox.clone()), inbox)
    }

    /// Creates the transport over an existing inbox.
    pub fn with_inbox(inbox: Inbox) -> Self {
        SmtpSim { inbox, pending: Vec::new(), batches_sent: 0 }
    }

    /// Number of batch emails sent.
    pub fn batches_sent(&self) -> u64 {
        self.batches_sent
    }
}

impl Transport for SmtpSim {
    fn kind(&self) -> TransportKind {
        TransportKind::Smtp
    }

    fn deliver(&mut self, delivery: &Delivery) -> Result<(), TransportError> {
        match self.pending.iter_mut().find(|(c, _)| *c == delivery.client) {
            Some((_, msgs)) => msgs.push(delivery.payload.clone()),
            None => self.pending.push((delivery.client, vec![delivery.payload.clone()])),
        }
        Ok(())
    }

    fn flush(&mut self) {
        let mut inbox = self.inbox.lock();
        for (client, messages) in self.pending.drain(..) {
            self.batches_sent += 1;
            inbox.push(ReceivedMessage { client, payload: messages.join("\n") });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivery(client: u64, payload: &str) -> Delivery {
        Delivery { client: ClientId(client), payload: payload.to_owned() }
    }

    #[test]
    fn tcp_is_reliable_and_ordered() {
        let (mut tcp, inbox) = TcpSim::new();
        for k in 0..10 {
            tcp.deliver(&delivery(1, &format!("msg{k}"))).unwrap();
        }
        let got = inbox.lock();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].payload, "msg0");
        assert_eq!(got[9].payload, "msg9");
    }

    #[test]
    fn udp_drops_deterministically() {
        let (mut udp, inbox) = UdpSim::new(0.5, 42);
        let mut lost = 0;
        for k in 0..1_000 {
            if udp.deliver(&delivery(1, &format!("m{k}"))).is_err() {
                lost += 1;
            }
        }
        assert!((380..620).contains(&lost), "≈50% loss, got {lost}");
        assert_eq!(inbox.lock().len(), 1_000 - lost);
        // Determinism: same seed, same losses.
        let (mut udp2, _inbox2) = UdpSim::new(0.5, 42);
        let mut lost2 = 0;
        for k in 0..1_000 {
            if udp2.deliver(&delivery(1, &format!("m{k}"))).is_err() {
                lost2 += 1;
            }
        }
        assert_eq!(lost, lost2);
    }

    #[test]
    fn udp_with_zero_loss_never_drops() {
        let (mut udp, inbox) = UdpSim::new(0.0, 1);
        for k in 0..100 {
            udp.deliver(&delivery(1, &format!("m{k}"))).unwrap();
        }
        assert_eq!(inbox.lock().len(), 100);
    }

    #[test]
    fn sms_rate_limits_until_tick() {
        let (mut sms, inbox) = SmsSim::new(2);
        sms.deliver(&delivery(1, "a")).unwrap();
        sms.deliver(&delivery(1, "b")).unwrap();
        assert_eq!(sms.deliver(&delivery(1, "c")), Err(TransportError::RateLimited));
        sms.tick();
        sms.deliver(&delivery(1, "c")).unwrap();
        assert_eq!(inbox.lock().len(), 3);
    }

    #[test]
    fn sms_truncates_long_payloads() {
        let (mut sms, inbox) = SmsSim::new(10);
        let long = "x".repeat(500);
        sms.deliver(&delivery(1, &long)).unwrap();
        assert_eq!(inbox.lock()[0].payload.chars().count(), SMS_MAX_CHARS);
        assert_eq!(sms.truncated_count(), 1);
        sms.deliver(&delivery(1, "short")).unwrap();
        assert_eq!(sms.truncated_count(), 1);
    }

    #[test]
    fn smtp_batches_per_client() {
        let (mut smtp, inbox) = SmtpSim::new();
        smtp.deliver(&delivery(1, "a")).unwrap();
        smtp.deliver(&delivery(2, "b")).unwrap();
        smtp.deliver(&delivery(1, "c")).unwrap();
        assert!(inbox.lock().is_empty(), "nothing before flush");
        smtp.flush();
        let got = inbox.lock();
        assert_eq!(got.len(), 2);
        let c1 = got.iter().find(|m| m.client == ClientId(1)).unwrap();
        assert_eq!(c1.payload, "a\nc");
        assert_eq!(smtp.batches_sent(), 2);
        drop(got);
        smtp.flush();
        assert_eq!(inbox.lock().len(), 2, "empty flush sends nothing");
    }

    #[test]
    fn kinds_have_names() {
        for kind in TransportKind::ALL {
            assert!(!kind.name().is_empty());
        }
    }
}
