//! The networked serving path: one event loop multiplexing many framed
//! client connections onto the broker core.
//!
//! [`NetBroker`] owns a `mio-lite` [`Poll`] and three kinds of sources:
//! the accept listener (token 0), a [`Waker`] the notification engine's
//! worker thread rings when a delivery lands (token 1), and one
//! [`SimStream`] per client connection (tokens 2+). Each call to
//! [`NetBroker::turn`] runs one readiness cycle:
//!
//! 1. **Accept** every pending connection.
//! 2. **Read** each readable connection to `WouldBlock`, splitting the
//!    byte stream into frames ([`try_read_frame`]) and decoding
//!    [`ClientMessage`]s.
//! 3. **Serve** the whole turn's messages through
//!    [`DemoServer::handle_batch`] — consecutive `Subscribe` frames (from
//!    any mix of connections) coalesce into one
//!    [`Broker::subscribe_batch`] control mutation, so a connection storm
//!    of N subscriptions costs one matcher fork, not N.
//! 4. **Route** replies back to their connections, and drain the shared
//!    delivery queue the [`NetTransport`]s fill, turning each delivery
//!    into a [`ServerMessage::Notification`] frame on its subscriber's
//!    connection.
//! 5. **Flush** outbound queues until each connection's pipe pushes back.
//!
//! # Backpressure
//!
//! Every connection has a bounded outbound frame queue
//! ([`NetBrokerConfig::max_outbound_frames`]) on top of the bounded byte
//! pipe. Replies always enqueue (they are request-bounded); notification
//! frames beyond the bound hit the configured [`BackpressurePolicy`]:
//! either the slow consumer is **disconnected** (its queued notifications
//! are counted, its clients unregistered so later matches surface as
//! [`Broker::orphaned_matches`]) or the newest notification is **dropped
//! with accounting**. Nothing is ever silently lost: every delivery the
//! engine hands to a [`NetTransport`] ends in exactly one of
//! [`NetStats::notifications_sent`], [`NetStats::notifications_dropped`]
//! or [`NetStats::notifications_disconnected`], which is the conservation
//! identity the networked test- and chaos-suites score (see
//! `tests/netbroker_end_to_end.rs` and `docs/ARCHITECTURE.md`).
//!
//! # Sessions
//!
//! A connection whose *first* frame is [`ClientMessage::Hello`] opts into
//! the session layer (see [`crate::session`]): the broker answers
//! [`ServerMessage::Welcome`] and from then on the connection's clients,
//! subscriptions and unacknowledged notifications belong to a *session*
//! that survives the connection. Sessioned notifications carry a
//! per-session monotone `seq` and are retained in a bounded replay buffer
//! until the client acknowledges them ([`ClientMessage::Ack`]); a
//! reconnecting client quotes its token and last seen `seq` in `Hello`
//! and receives exactly the retained frames above that mark, in order.
//! Connections that never send `Hello` speak the PR 8 protocol unchanged
//! (their notifications carry `seq == 0`).
//!
//! For sessioned connections the conservation identity grows — every
//! notification the engine delivers for a sessioned client terminates in
//! exactly one of [`NetStats::notifications_acked`] (acked, never
//! retransmitted), [`NetStats::notifications_replayed`] (acked after a
//! retransmission), [`NetStats::notifications_dropped`] (replay buffer
//! full under [`BackpressurePolicy::DropNewest`], dropped *before* a seq
//! is assigned — so received seqs stay contiguous) or
//! [`NetStats::notifications_expired`] (retained by a session that
//! expired) — or it is still *in flight*, i.e. retained unacknowledged in
//! a live session ([`NetBroker::session_in_flight`]):
//!
//! ```text
//! delivered == acked + replayed + dropped + expired + in_flight
//! ```
//!
//! Session TTLs and heartbeat timeouts run on an explicit logical clock
//! the driver advances with [`NetBroker::advance_clock`] — never on turn
//! counts, whose relation to deliveries depends on worker-thread timing.
//!
//! # Determinism
//!
//! `mio-lite` reports readiness in ascending token order and the listener
//! accepts in connect order, so a single-threaded driver observing the
//! same client actions produces the same frame order, the same
//! [`ClientId`]/[`stopss_types::SubId`] assignments and the same reply
//! sequence on every run. The only asynchrony is the notification
//! engine's worker thread, whose deliveries are fenced by
//! [`NetBroker::run_until_quiescent`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, Read, Write};
use std::time::Duration;

use bytes::{BufMut, Bytes, BytesMut};
use mio_lite::{
    Events, Interest, Poll, Registry, SimConnector, SimListener, SimStream, Token, Waker,
    DEFAULT_PIPE_CAPACITY,
};
use stopss_ontology::SemanticSource;
use stopss_types::sync::{Arc, Mutex};
use stopss_types::{FxHashMap, SharedInterner};

use crate::client::ClientId;
use crate::dispatcher::{Broker, BrokerConfig, TransportFactory};
use crate::notify::DeliveryStats;
use crate::server::DemoServer;
use crate::session::{SessionConfig, SessionTable};
use crate::transport::{Delivery, Transport, TransportError, TransportKind};
use crate::wire::{
    decode_client, encode_server, try_read_frame, try_read_frame_bounded, write_frame,
    ClientMessage, ServerMessage, WireError, MAX_FRAME_LEN,
};

/// Token of the accept listener.
const LISTENER: Token = Token(0);
/// Token of the notification waker.
const WAKER: Token = Token(1);
/// First token handed to a client connection.
const FIRST_CONN: usize = 2;

/// What to do with a notification for a connection whose outbound queue
/// is already at [`NetBrokerConfig::max_outbound_frames`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Disconnect the slow consumer: its queued and in-flight
    /// notifications are counted in
    /// [`NetStats::notifications_disconnected`], its clients are
    /// unregistered from the broker (so later matches are accounted as
    /// [`Broker::orphaned_matches`]), and its connection is closed.
    Disconnect,
    /// Keep the connection and drop the *newest* notification, counting
    /// it in [`NetStats::notifications_dropped`]. Replies are never
    /// dropped.
    DropNewest,
}

/// Configuration of the networked broker.
pub struct NetBrokerConfig {
    /// Configuration of the underlying [`Broker`] core.
    pub broker: BrokerConfig,
    /// Policy for notifications to connections at the outbound bound.
    pub backpressure: BackpressurePolicy,
    /// Maximum queued outbound frames per connection before
    /// [`NetBrokerConfig::backpressure`] applies to new notifications.
    pub max_outbound_frames: usize,
    /// Per-direction byte capacity of each connection's simulated pipe.
    pub pipe_capacity: usize,
    /// Readiness events drained per poll; overflow stays pending for the
    /// next turn, so this bounds per-turn work, not total throughput.
    pub events_per_poll: usize,
    /// Largest inbound frame the loop will buffer; a length prefix past
    /// this bound is an unrecoverable protocol error (the connection is
    /// closed before any allocation happens).
    pub max_frame_len: usize,
    /// Session-layer knobs (replay-buffer bound, TTL, heartbeat). Only
    /// connections that opt in with [`ClientMessage::Hello`] are
    /// affected.
    pub session: SessionConfig,
}

impl Default for NetBrokerConfig {
    fn default() -> Self {
        NetBrokerConfig {
            broker: BrokerConfig::default(),
            backpressure: BackpressurePolicy::Disconnect,
            max_outbound_frames: 256,
            pipe_capacity: DEFAULT_PIPE_CAPACITY,
            events_per_poll: 1024,
            max_frame_len: MAX_FRAME_LEN,
            session: SessionConfig::default(),
        }
    }
}

/// Counters of the event loop.
///
/// For *legacy* (session-less) connections, every notification the
/// engine delivers to a [`NetTransport`] terminates in exactly one of
/// `notifications_sent`, `notifications_dropped` or
/// `notifications_disconnected` once the loop is quiescent.
///
/// For *sessioned* connections the terminal buckets are
/// `notifications_acked`, `notifications_replayed`,
/// `notifications_dropped` and `notifications_expired`, with
/// [`NetBroker::session_in_flight`] covering the retained remainder (see
/// the module docs for the full identity); `notifications_sent` then
/// counts first transmissions as pure telemetry — a sent frame is not
/// terminal until it is acknowledged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub connections_accepted: u64,
    /// Connections closed (EOF, error, protocol violation, or
    /// backpressure disconnect).
    pub connections_closed: u64,
    /// Complete frames read off connections.
    pub frames_read: u64,
    /// Connections killed for unrecoverable framing errors (a corrupt
    /// length prefix). Malformed *payloads* inside a well-framed message
    /// get an `Error` reply instead and are not counted here.
    pub protocol_errors: u64,
    /// Connections that closed with a partial frame still buffered —
    /// the mid-frame-disconnect signature the chaos harness injects.
    pub truncated_frames: u64,
    /// Total matches reported by `Published` replies this loop served.
    pub matches_seen: u64,
    /// Notification frames fully written to a connection's pipe.
    pub notifications_sent: u64,
    /// Notifications dropped by [`BackpressurePolicy::DropNewest`].
    pub notifications_dropped: u64,
    /// Notifications for connections that no longer exist: queued frames
    /// of a disconnected consumer, the notification that triggered a
    /// [`BackpressurePolicy::Disconnect`], and late deliveries for
    /// clients whose connection already went away.
    pub notifications_disconnected: u64,
    /// Sessions opened by a fresh [`ClientMessage::Hello`] handshake.
    pub sessions_created: u64,
    /// Successful resumes (`Welcome { resumed: true }`).
    pub sessions_resumed: u64,
    /// Sessions expired: detached past the TTL, or terminated whole at a
    /// full replay buffer under [`BackpressurePolicy::Disconnect`].
    pub sessions_expired: u64,
    /// Attached sessioned connections closed for inbound silence past
    /// [`SessionConfig::heartbeat_timeout`] logical ticks.
    pub heartbeat_timeouts: u64,
    /// Sessioned notifications acknowledged without ever being
    /// retransmitted — the happy-path terminal bucket.
    pub notifications_acked: u64,
    /// Sessioned notifications acknowledged after at least one
    /// retransmission on a resume.
    pub notifications_replayed: u64,
    /// Sessioned notifications retained by a session when it expired —
    /// delivered by the engine, never acknowledged, now terminally lost
    /// *with accounting*.
    pub notifications_expired: u64,
    /// Retransmitted notification frames fully written on a resume
    /// (telemetry: how much replay traffic recovery cost).
    pub replay_frames_sent: u64,
}

/// The queue [`NetTransport`]s push into and the event loop drains.
type SharedQueue = Arc<Mutex<VecDeque<Delivery>>>;

/// A [`Transport`] that hands deliveries to the event loop instead of a
/// simulated medium: it pushes onto the shared queue and rings the
/// loop's [`Waker`]. It never fails — loss, if any, happens *visibly* at
/// the connection under the [`BackpressurePolicy`] — so the notification
/// engine's `attempted == delivered` for every kind. The networked
/// broker installs one per [`TransportKind`] (all sharing the queue)
/// because the engine silently rejects deliveries for unconfigured
/// kinds, which would violate the no-silent-loss invariant.
pub struct NetTransport {
    kind: TransportKind,
    queue: SharedQueue,
    waker: Arc<Waker>,
}

impl Transport for NetTransport {
    fn kind(&self) -> TransportKind {
        self.kind
    }

    fn deliver(&mut self, delivery: &Delivery) -> Result<(), TransportError> {
        self.queue.lock().push_back(delivery.clone());
        let _ = self.waker.wake();
        Ok(())
    }
}

/// What a queued outbound frame carries — flush accounting differs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FrameKind {
    /// A request reply (or handshake frame); never counted as a
    /// notification.
    Reply,
    /// A first-transmission notification.
    Notification,
    /// A retransmitted notification on a resume.
    Replay,
}

/// One queued outbound frame: the framed bytes (length prefix included)
/// plus the write offset reached so far.
struct OutFrame {
    bytes: Bytes,
    written: usize,
    kind: FrameKind,
}

impl OutFrame {
    fn new(msg: &ServerMessage, kind: FrameKind) -> OutFrame {
        let mut payload = BytesMut::new();
        encode_server(msg, &mut payload);
        let mut framed = BytesMut::new();
        write_frame(&mut framed, &payload);
        OutFrame { bytes: framed.freeze(), written: 0, kind }
    }
}

/// Per-connection state.
struct Conn {
    stream: SimStream,
    /// Reassembly buffer for inbound bytes.
    rx: BytesMut,
    /// Outbound frames not yet fully written to the pipe.
    out: VecDeque<OutFrame>,
    /// Clients registered over this connection (legacy protocol only —
    /// a sessioned connection's clients belong to its session).
    clients: Vec<ClientId>,
    /// Notification frames currently in `out`.
    notifications_queued: u64,
    /// The session this connection is attached to, once it has opted in
    /// with a `Hello`.
    session: Option<u64>,
    /// Logical tick of the last inbound bytes (heartbeat bookkeeping).
    last_inbound: u64,
}

impl Conn {
    fn new(stream: SimStream, now: u64) -> Conn {
        Conn {
            stream,
            rx: BytesMut::new(),
            out: VecDeque::new(),
            clients: Vec::new(),
            notifications_queued: 0,
            session: None,
            last_inbound: now,
        }
    }
}

/// How one decoded inbound frame will be answered: session-protocol
/// frames are consumed before the serve phase with their reply frames
/// precomputed, so the per-connection reply order still matches arrival
/// order.
enum Planned {
    /// Flows through [`DemoServer::handle_batch`]; one reply each.
    Command(ClientMessage),
    /// Handled by the session layer; zero or more reply frames, already
    /// rendered.
    Direct(Vec<(ServerMessage, FrameKind)>),
    /// Undecodable payload; answered with an `Error` reply.
    Malformed(WireError),
}

/// The networked broker: a readiness event loop serving the framed wire
/// protocol over many multiplexed connections (see the module docs for
/// the turn structure and the backpressure/conservation contract).
pub struct NetBroker {
    poll: Poll,
    registry: Registry,
    events: Events,
    listener: SimListener,
    server: DemoServer,
    conns: BTreeMap<Token, Conn>,
    client_conn: FxHashMap<ClientId, Token>,
    queue: SharedQueue,
    next_token: usize,
    policy: BackpressurePolicy,
    max_outbound_frames: usize,
    max_frame_len: usize,
    session_cfg: SessionConfig,
    sessions: SessionTable,
    clock: u64,
    stats: NetStats,
}

impl NetBroker {
    /// Builds the event loop: broker core with one [`NetTransport`] per
    /// transport kind, the accept listener, and the delivery waker.
    pub fn new(
        config: NetBrokerConfig,
        source: Arc<dyn SemanticSource>,
        interner: SharedInterner,
    ) -> io::Result<NetBroker> {
        let poll = Poll::new()?;
        let registry = poll.registry();
        let waker = Arc::new(Waker::new(&registry, WAKER)?);
        let queue: SharedQueue = SharedQueue::default();
        let factory_queue = queue.clone();
        let factory: TransportFactory = Box::new(move |_epoch| {
            TransportKind::ALL
                .into_iter()
                .map(|kind| {
                    Box::new(NetTransport {
                        kind,
                        queue: factory_queue.clone(),
                        waker: waker.clone(),
                    }) as Box<dyn Transport>
                })
                .collect()
        });
        let broker = Broker::with_transport_factory(
            config.broker,
            source,
            interner,
            FxHashMap::default(),
            factory,
        );
        let mut listener = SimListener::with_pipe_capacity(config.pipe_capacity);
        registry.register(&mut listener, LISTENER, Interest::READABLE)?;
        Ok(NetBroker {
            poll,
            registry,
            events: Events::with_capacity(config.events_per_poll),
            listener,
            server: DemoServer::new(broker),
            conns: BTreeMap::new(),
            client_conn: FxHashMap::default(),
            queue,
            next_token: FIRST_CONN,
            policy: config.backpressure,
            max_outbound_frames: config.max_outbound_frames.max(1),
            max_frame_len: config.max_frame_len.max(16),
            session_cfg: config.session,
            sessions: SessionTable::default(),
            clock: 0,
            stats: NetStats::default(),
        })
    }

    /// A handle clients use to connect (cloneable, sendable).
    pub fn connector(&self) -> SimConnector {
        self.listener.connector()
    }

    /// The broker core behind the loop.
    pub fn broker(&self) -> &Broker {
        self.server.broker()
    }

    /// Event-loop counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Number of live connections.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// Runs one event-loop turn: poll (bounded by `timeout`), accept,
    /// read, serve, notify, flush. See the module docs.
    pub fn turn(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.poll.poll(&mut self.events, timeout)?;
        let mut accept = false;
        let mut readable: Vec<Token> = Vec::new();
        let mut flushable: BTreeSet<Token> = BTreeSet::new();
        for event in self.events.iter() {
            let token = event.token();
            if token == LISTENER {
                accept = true;
                continue;
            }
            if token == WAKER {
                continue; // the queue drain below covers it
            }
            if event.is_readable() {
                readable.push(token);
            }
            if event.is_writable() {
                flushable.insert(token);
            }
        }
        if accept {
            self.accept_all()?;
        }

        // Read phase: one entry per complete frame, in token order then
        // arrival order — the turn's canonical serving order.
        let mut entries: Vec<(Token, Result<ClientMessage, WireError>)> = Vec::new();
        for token in readable {
            self.read_conn(token, &mut entries);
        }

        // Session phase: Hello/Ack/Ping are consumed by the session layer
        // here, before the serve phase; their reply frames are
        // precomputed in arrival order so each connection's reply
        // sequence still matches the order it sent its requests in.
        let mut planned: Vec<(Token, Planned)> = Vec::with_capacity(entries.len());
        for (token, decoded) in entries {
            let item = match decoded {
                Ok(ClientMessage::Hello { session, last_seen_seq }) => {
                    Planned::Direct(self.handle_hello(token, session, last_seen_seq))
                }
                Ok(ClientMessage::Ack { seq }) => Planned::Direct(self.handle_ack(token, seq)),
                Ok(ClientMessage::Ping { nonce }) => {
                    Planned::Direct(vec![(ServerMessage::Pong { nonce }, FrameKind::Reply)])
                }
                Ok(msg) => Planned::Command(msg),
                Err(e) => Planned::Malformed(e),
            };
            planned.push((token, item));
        }

        // Serve phase: the turn's command frames through the batched path.
        let msgs: Vec<ClientMessage> = planned
            .iter()
            .filter_map(|(_, item)| match item {
                Planned::Command(msg) => Some(msg.clone()),
                _ => None,
            })
            .collect();
        let mut replies = self.server.handle_batch(msgs).into_iter();
        for (token, item) in planned {
            let frames: Vec<(ServerMessage, FrameKind)> = match item {
                Planned::Command(_) => {
                    let reply = replies
                        .next()
                        .expect("invariant: the server returns one reply per served message");
                    match &reply {
                        ServerMessage::Registered { client } => {
                            match self.conns.get(&token).and_then(|c| c.session) {
                                Some(stoken) => self.sessions.bind_client(stoken, *client),
                                None if self.conns.contains_key(&token) => {
                                    self.client_conn.insert(*client, token);
                                    self.conns
                                        .get_mut(&token)
                                        .expect("invariant: conn checked live in this arm")
                                        .clients
                                        .push(*client);
                                }
                                None => {
                                    // Registered over a connection that
                                    // died this turn: retract the
                                    // registration so its matches cannot
                                    // dangle unaccounted.
                                    self.server.broker().unregister_client(*client);
                                }
                            }
                        }
                        ServerMessage::Published { matches } => {
                            self.stats.matches_seen += u64::from(*matches);
                        }
                        _ => {}
                    }
                    vec![(reply, FrameKind::Reply)]
                }
                Planned::Direct(frames) => frames,
                Planned::Malformed(e) => vec![(
                    ServerMessage::Error { message: format!("bad request: {e}") },
                    FrameKind::Reply,
                )],
            };
            if let Some(conn) = self.conns.get_mut(&token) {
                for (msg, kind) in frames {
                    if kind != FrameKind::Reply {
                        conn.notifications_queued += 1;
                    }
                    conn.out.push_back(OutFrame::new(&msg, kind));
                }
                flushable.insert(token);
            }
        }

        // Notification phase: drain what the engine delivered since the
        // last turn and route each onto its subscriber's connection.
        let deliveries: Vec<Delivery> = {
            let mut queue = self.queue.lock();
            queue.drain(..).collect()
        };
        for delivery in deliveries {
            if let Some(stoken) = self.sessions.session_of(delivery.client) {
                self.route_session_notification(stoken, delivery, &mut flushable);
                continue;
            }
            let Some(&token) = self.client_conn.get(&delivery.client) else {
                self.stats.notifications_disconnected += 1;
                continue;
            };
            let over = {
                let conn = self
                    .conns
                    .get(&token)
                    .expect("invariant: client_conn only maps to live connections");
                conn.out.len() >= self.max_outbound_frames
            };
            if over {
                // conservation: delivered == notifications_sent + notifications_dropped + notifications_disconnected
                match self.policy {
                    BackpressurePolicy::DropNewest => {
                        self.stats.notifications_dropped += 1;
                    }
                    BackpressurePolicy::Disconnect => {
                        self.stats.notifications_disconnected += 1;
                        self.close_conn(token);
                        flushable.remove(&token);
                    }
                }
                continue;
            }
            let conn = self
                .conns
                .get_mut(&token)
                .expect("invariant: conn was live at the backpressure check");
            conn.out.push_back(OutFrame::new(
                &ServerMessage::Notification { seq: 0, payload: delivery.payload },
                FrameKind::Notification,
            ));
            conn.notifications_queued += 1;
            flushable.insert(token);
        }

        // Flush phase: write until each touched pipe pushes back.
        for token in flushable {
            self.flush_conn(token);
        }
        Ok(())
    }

    /// Turns the loop until the served workload has fully settled or
    /// `max_turns` elapsed; returns whether quiescence was reached.
    ///
    /// Quiescent means: two consecutive turns saw no readiness at all,
    /// the delivery queue is empty, no connection has outbound frames
    /// pending, and the conservation identity
    /// `matches_seen == orphaned_matches + engine deliveries` holds —
    /// i.e. every match this loop produced has reached a terminal,
    /// accounted state.
    pub fn run_until_quiescent(&mut self, max_turns: usize) -> io::Result<bool> {
        let mut idle_turns = 0;
        for _ in 0..max_turns {
            self.turn(Some(Duration::from_millis(1)))?;
            if self.events.is_empty() && self.settled() {
                idle_turns += 1;
                if idle_turns >= 2 {
                    return Ok(true);
                }
            } else {
                idle_turns = 0;
            }
        }
        Ok(false)
    }

    /// Advances the logical session clock by `ticks`, then enforces the
    /// two time-based policies: attached sessioned connections silent for
    /// [`SessionConfig::heartbeat_timeout`] ticks are closed (their
    /// sessions detach and start the TTL countdown), and detached
    /// sessions past [`SessionConfig::session_ttl`] are expired — their
    /// subscriptions unsubscribed, their clients unregistered, and every
    /// retained frame counted in [`NetStats::notifications_expired`].
    ///
    /// The clock only moves here: drivers that never call this get
    /// sessions that never time out, and the same drive sequence expires
    /// the same sessions on every run.
    pub fn advance_clock(&mut self, ticks: u64) {
        self.clock += ticks;
        if self.session_cfg.heartbeat_timeout > 0 {
            let silent: Vec<Token> = self
                .conns
                .iter()
                .filter(|(_, conn)| {
                    conn.session.is_some()
                        && self.clock.saturating_sub(conn.last_inbound)
                            >= self.session_cfg.heartbeat_timeout
                })
                .map(|(token, _)| *token)
                .collect();
            for token in silent {
                self.stats.heartbeat_timeouts += 1;
                self.close_conn(token);
            }
        }
        for stoken in self.sessions.expired(self.clock, self.session_cfg.session_ttl) {
            self.expire_session(stoken);
        }
    }

    /// The current logical session clock.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// True once every match served so far has been delivered by the
    /// engine (or orphaned) *and* the loop has routed the resulting
    /// deliveries out of the shared queue — i.e. each one now sits in a
    /// terminal counter, a connection's outbound queue, or a replay
    /// buffer. The chaos harness fences fault injection on this so
    /// worker-thread timing can never shift a delivery between buckets.
    pub fn deliveries_drained(&self) -> bool {
        if !self.queue.lock().is_empty() {
            return false;
        }
        let broker = self.server.broker();
        self.stats.matches_seen
            == broker.orphaned_matches() + broker.delivery_stats().total_delivered()
    }

    /// True when every connection that *can* make write progress has an
    /// empty outbound queue (partitioned links are excluded — their
    /// frames are blocked by design).
    pub fn outbound_idle(&self) -> bool {
        self.conns.values().all(|conn| conn.out.is_empty() || conn.stream.partitioned())
    }

    /// Retained (unacknowledged) frame count of session `token`, if it
    /// is live.
    pub fn session_retained(&self, token: u64) -> Option<u64> {
        self.sessions.retained(token)
    }

    /// Retained unacknowledged notifications across live sessions — the
    /// `in_flight` term of the session conservation identity.
    pub fn session_in_flight(&self) -> u64 {
        self.sessions.in_flight()
    }

    /// Number of live sessions (attached or detached).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Closes every live connection at once — the chaos harness's
    /// broker-front-end bounce. Sessions detach (their state survives in
    /// memory and their TTL countdown starts); legacy connections lose
    /// their clients as usual. Pair with
    /// [`Broker::restart_notifier`](crate::dispatcher::Broker::restart_notifier)
    /// to model a full restart of the serving tier.
    pub fn kill_all_connections(&mut self) {
        let tokens: Vec<Token> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
    }

    /// Runs exactly `n` turns with a short poll timeout — the driver's
    /// tool for interleaving broker progress with client ticks without
    /// requiring quiescence.
    pub fn run_turns(&mut self, n: usize) -> io::Result<()> {
        for _ in 0..n {
            self.turn(Some(Duration::from_millis(1)))?;
        }
        Ok(())
    }

    /// Handles a `Hello`: opens a fresh session, or — when `requested`
    /// names a live one — resumes it: the session is stolen from any
    /// zombie connection still attached, `last_seen_seq` acts as a
    /// cumulative ack, and every still-retained frame is queued for
    /// retransmission (in seq order, right after the `Welcome`).
    fn handle_hello(
        &mut self,
        token: Token,
        requested: u64,
        last_seen_seq: u64,
    ) -> Vec<(ServerMessage, FrameKind)> {
        let Some(conn) = self.conns.get(&token) else {
            return Vec::new(); // the connection died earlier this turn
        };
        if conn.session.is_some() {
            let message = "duplicate Hello on an established session".into();
            return vec![(ServerMessage::Error { message }, FrameKind::Reply)];
        }
        if !conn.clients.is_empty() {
            let message = "Hello must be the first frame of a connection".into();
            return vec![(ServerMessage::Error { message }, FrameKind::Reply)];
        }
        if requested != 0 && self.sessions.contains(requested) {
            let old = self
                .sessions
                .get_mut(requested)
                .expect("invariant: contains(requested) checked")
                .conn
                .take();
            if let Some(old_token) = old {
                if old_token != token {
                    self.close_conn(old_token);
                }
            }
            let session =
                self.sessions.get_mut(requested).expect("invariant: contains(requested) checked");
            session.conn = Some(token);
            session.detached_at = None;
            let (fresh, replayed) = session.ack(last_seen_seq);
            let mut frames = vec![(
                ServerMessage::Welcome { session: requested, resumed: true },
                FrameKind::Reply,
            )];
            for frame in session.replay.iter_mut() {
                frame.retransmitted = true;
                frames.push((
                    ServerMessage::Notification { seq: frame.seq, payload: frame.payload.clone() },
                    FrameKind::Replay,
                ));
            }
            // conservation: delivered == notifications_acked + notifications_replayed + notifications_dropped + notifications_expired
            self.stats.notifications_acked += fresh;
            self.stats.notifications_replayed += replayed;
            self.stats.sessions_resumed += 1;
            self.conns.get_mut(&token).expect("invariant: hello arrives on a live conn").session =
                Some(requested);
            frames
        } else {
            // Unknown (or zero) token: grant a fresh session. A client
            // whose old session expired learns it here — `resumed: false`
            // tells it to re-register and re-subscribe from scratch.
            let stoken = self.sessions.create(token);
            self.conns.get_mut(&token).expect("invariant: hello arrives on a live conn").session =
                Some(stoken);
            self.stats.sessions_created += 1;
            vec![(ServerMessage::Welcome { session: stoken, resumed: false }, FrameKind::Reply)]
        }
    }

    /// Handles an `Ack`: trims the session's replay buffer up to `seq`,
    /// crediting each trimmed frame to its terminal bucket. Acks elicit
    /// no reply — the one documented exception to one-reply-per-request.
    fn handle_ack(&mut self, token: Token, seq: u64) -> Vec<(ServerMessage, FrameKind)> {
        let Some(stoken) = self.conns.get(&token).and_then(|c| c.session) else {
            let message = "Ack outside a session".into();
            return vec![(ServerMessage::Error { message }, FrameKind::Reply)];
        };
        if let Some(session) = self.sessions.get_mut(stoken) {
            let (fresh, replayed) = session.ack(seq);
            self.stats.notifications_acked += fresh;
            self.stats.notifications_replayed += replayed;
        }
        Vec::new()
    }

    /// Routes one engine delivery to a sessioned client: assign the next
    /// seq, retain the frame in the replay buffer, and — if the session
    /// is attached — queue the frame on its connection. The replay bound
    /// supersedes `max_outbound_frames` for sessioned traffic: at the
    /// bound, `DropNewest` drops the delivery *before* a seq is assigned
    /// (so received seqs stay contiguous) and `Disconnect` expires the
    /// session whole — it can no longer keep its no-loss promise, and
    /// the triggering delivery joins its retained frames in
    /// [`NetStats::notifications_expired`].
    fn route_session_notification(
        &mut self,
        stoken: u64,
        delivery: Delivery,
        flushable: &mut BTreeSet<Token>,
    ) {
        let Some(session) = self.sessions.get_mut(stoken) else {
            self.stats.notifications_disconnected += 1;
            return;
        };
        let Some(seq) =
            session.try_retain(delivery.payload.clone(), self.session_cfg.replay_buffer_frames)
        else {
            match self.policy {
                BackpressurePolicy::DropNewest => {
                    self.stats.notifications_dropped += 1;
                }
                BackpressurePolicy::Disconnect => {
                    self.stats.notifications_expired += 1;
                    let conn = session.conn;
                    self.expire_session(stoken);
                    if let Some(token) = conn {
                        flushable.remove(&token);
                    }
                }
            }
            return;
        };
        if let Some(token) = session.conn {
            let conn = self
                .conns
                .get_mut(&token)
                .expect("invariant: session.conn only points at live connections");
            conn.out.push_back(OutFrame::new(
                &ServerMessage::Notification { seq, payload: delivery.payload },
                FrameKind::Notification,
            ));
            conn.notifications_queued += 1;
            flushable.insert(token);
        }
        // Detached: the frame is retained only, to be replayed on resume.
    }

    /// Expires a session terminally: closes its attached connection (if
    /// any), unsubscribes and unregisters its clients (so later matches
    /// surface as [`Broker::orphaned_matches`] rather than dangling), and
    /// counts every retained frame in
    /// [`NetStats::notifications_expired`].
    fn expire_session(&mut self, stoken: u64) {
        let Some(session) = self.sessions.remove(stoken) else {
            return;
        };
        if let Some(token) = session.conn {
            if let Some(mut conn) = self.conns.remove(&token) {
                let _ = self.registry.deregister(&mut conn.stream);
                if !conn.rx.is_empty() {
                    self.stats.truncated_frames += 1;
                }
                self.stats.connections_closed += 1;
                // Queued-but-unwritten notification frames on this
                // connection are exactly the retained frames counted
                // below — no `disconnected` accounting, or they would be
                // counted twice.
            }
        }
        for client in &session.clients {
            self.server.broker().unsubscribe_all(*client);
            self.server.broker().unregister_client(*client);
        }
        self.stats.notifications_expired += session.replay.len() as u64;
        self.stats.sessions_expired += 1;
    }

    /// True if every produced match is terminally accounted and nothing
    /// is queued anywhere in the loop.
    fn settled(&self) -> bool {
        if !self.queue.lock().is_empty() {
            return false;
        }
        if self.conns.values().any(|c| !c.out.is_empty()) {
            return false;
        }
        let broker = self.server.broker();
        let delivered = broker.delivery_stats().total_delivered();
        // conservation: matches_seen == orphaned_matches + delivered
        self.stats.matches_seen == broker.orphaned_matches() + delivered
    }

    /// Shuts the loop down: drops every connection (closing the pipes)
    /// and stops the broker, returning the loop's counters and the final
    /// engine delivery statistics.
    pub fn shutdown(mut self) -> (NetStats, DeliveryStats) {
        let tokens: Vec<Token> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
        let stats = self.stats;
        (stats, self.server.shutdown())
    }

    fn accept_all(&mut self) -> io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok(mut stream) => {
                    let token = Token(self.next_token);
                    self.next_token += 1;
                    self.registry.register(
                        &mut stream,
                        token,
                        Interest::READABLE | Interest::WRITABLE,
                    )?;
                    self.conns.insert(token, Conn::new(stream, self.clock));
                    self.stats.connections_accepted += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads `token` to `WouldBlock`/EOF, appending one entry per
    /// complete frame. EOF or a corrupt length prefix closes the
    /// connection — frames already complete are still served, a partial
    /// trailing frame is discarded and counted
    /// ([`NetStats::truncated_frames`]).
    fn read_conn(
        &mut self,
        token: Token,
        entries: &mut Vec<(Token, Result<ClientMessage, WireError>)>,
    ) {
        let mut close = false;
        let mut fatal = false;
        let now = self.clock;
        if let Some(conn) = self.conns.get_mut(&token) {
            let mut buf = [0u8; 4096];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rx.put_slice(&buf[..n]);
                        conn.last_inbound = now;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
            loop {
                match try_read_frame_bounded(&mut conn.rx, self.max_frame_len) {
                    Ok(Some(mut frame)) => {
                        self.stats.frames_read += 1;
                        entries.push((token, decode_client(&mut frame)));
                    }
                    Ok(None) => break,
                    Err(_) => {
                        fatal = true;
                        break;
                    }
                }
            }
        }
        if fatal {
            self.stats.protocol_errors += 1;
            close = true;
        }
        if close {
            self.close_conn(token);
        }
    }

    /// Writes `token`'s queued frames until its pipe pushes back.
    fn flush_conn(&mut self, token: Token) {
        let mut close = false;
        if let Some(conn) = self.conns.get_mut(&token) {
            while let Some(front) = conn.out.front_mut() {
                match conn.stream.write(&front.bytes[front.written..]) {
                    Ok(n) => {
                        front.written += n;
                        if front.written == front.bytes.len() {
                            match front.kind {
                                FrameKind::Reply => {}
                                FrameKind::Notification => {
                                    self.stats.notifications_sent += 1;
                                    conn.notifications_queued -= 1;
                                }
                                FrameKind::Replay => {
                                    self.stats.replay_frames_sent += 1;
                                    conn.notifications_queued -= 1;
                                }
                            }
                            conn.out.pop_front();
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
        }
        if close {
            self.close_conn(token);
        }
    }

    /// Tears a connection down. A *legacy* connection loses its clients
    /// (unregistered from the broker, so future matches become orphans,
    /// which the conservation identity counts) and its queued
    /// notifications are accounted as disconnected. A *sessioned*
    /// connection merely detaches: its session keeps its clients,
    /// subscriptions and retained frames, and the TTL countdown starts —
    /// queued-but-unwritten notification frames are not lost, every one
    /// of them is still in the replay buffer. Either way the stream is
    /// dropped — closing both pipes and waking the peer.
    fn close_conn(&mut self, token: Token) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.registry.deregister(&mut conn.stream);
        if !conn.rx.is_empty() {
            self.stats.truncated_frames += 1;
        }
        self.stats.connections_closed += 1;
        match conn.session {
            Some(stoken) if self.sessions.contains(stoken) => {
                let session =
                    self.sessions.get_mut(stoken).expect("invariant: contains(stoken) checked");
                session.conn = None;
                session.detached_at = Some(self.clock);
            }
            _ => {
                for client in &conn.clients {
                    self.client_conn.remove(client);
                    self.server.broker().unregister_client(*client);
                }
                self.stats.notifications_disconnected += conn.notifications_queued;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// A test/load-generator client over one [`SimStream`]: frames outbound
/// messages (buffering what the bounded pipe refuses), reassembles and
/// decodes inbound frames. Drive it by alternating `send`/[`NetClient::flush`]
/// with broker turns and draining [`NetClient::poll_recv`].
pub struct NetClient {
    stream: SimStream,
    rx: BytesMut,
    tx: BytesMut,
}

impl NetClient {
    /// Connects to the broker behind `connector`.
    pub fn connect(connector: &SimConnector) -> io::Result<NetClient> {
        Ok(NetClient { stream: connector.connect()?, rx: BytesMut::new(), tx: BytesMut::new() })
    }

    /// Frames and queues `msg`, then writes as much as the pipe accepts.
    pub fn send(&mut self, msg: &ClientMessage) -> io::Result<()> {
        let mut payload = BytesMut::new();
        crate::wire::encode_client(msg, &mut payload);
        write_frame(&mut self.tx, &payload);
        self.flush().map(|_| ())
    }

    /// Queues raw bytes verbatim — the chaos harness uses this to leave a
    /// deliberately incomplete frame on the wire before disconnecting.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.tx.put_slice(bytes);
        self.flush().map(|_| ())
    }

    /// Writes buffered outbound bytes; `Ok(true)` once fully flushed,
    /// `Ok(false)` if the pipe pushed back.
    pub fn flush(&mut self) -> io::Result<bool> {
        while !self.tx.is_empty() {
            match self.stream.write(&self.tx) {
                Ok(n) => self.tx.advance(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Bytes queued but not yet accepted by the pipe.
    pub fn pending_to_send(&self) -> usize {
        self.tx.len()
    }

    /// Reads everything available and decodes the complete frames.
    /// Returns the decoded messages (possibly none); a closed peer just
    /// ends the read — check [`NetClient::peer_closed`].
    pub fn poll_recv(&mut self) -> Result<Vec<ServerMessage>, WireError> {
        let mut buf = [0u8; 4096];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => self.rx.put_slice(&buf[..n]),
                Err(_) => break, // WouldBlock: nothing more right now
            }
        }
        let mut msgs = Vec::new();
        while let Some(mut frame) = try_read_frame(&mut self.rx)? {
            msgs.push(crate::wire::decode_server(&mut frame)?);
        }
        Ok(msgs)
    }

    /// True once the broker side closed this connection.
    pub fn peer_closed(&self) -> bool {
        self.stream.peer_closed()
    }

    /// Partitions (or heals) this connection's link: while partitioned,
    /// nothing flows in either direction and a close of either end stays
    /// invisible — exactly what a network partition looks like from an
    /// endpoint.
    pub fn set_partitioned(&self, partitioned: bool) {
        self.stream.set_partitioned(partitioned);
    }

    /// Whether the link is currently partitioned.
    pub fn partitioned(&self) -> bool {
        self.stream.partitioned()
    }

    /// Closes the connection now (both directions). Bytes already in the
    /// pipe remain readable by the broker; anything queued locally but
    /// not yet written is gone — which is exactly how a mid-frame
    /// disconnect manifests.
    pub fn close(&mut self) {
        self.stream.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireValue;
    use stopss_types::Interner;
    use stopss_workload::JobFinderDomain;

    fn net_broker(config: NetBrokerConfig) -> NetBroker {
        let mut interner = Interner::new();
        let domain = JobFinderDomain::build(&mut interner);
        NetBroker::new(config, Arc::new(domain.ontology), SharedInterner::from_interner(interner))
            .unwrap()
    }

    fn register(client: &mut NetClient, broker: &mut NetBroker, name: &str) -> ClientId {
        client
            .send(&ClientMessage::Register { name: name.into(), transport: TransportKind::Tcp })
            .unwrap();
        for _ in 0..50 {
            broker.turn(Some(Duration::from_millis(1))).unwrap();
            if let Some(msg) = client.poll_recv().unwrap().pop() {
                match msg {
                    ServerMessage::Registered { client } => return client,
                    other => panic!("unexpected reply: {other:?}"),
                }
            }
        }
        panic!("no Registered reply");
    }

    #[test]
    fn single_connection_full_flow() {
        let mut broker = net_broker(NetBrokerConfig::default());
        let mut client = NetClient::connect(&broker.connector()).unwrap();
        let id = register(&mut client, &mut broker, "acme");

        client
            .send(&ClientMessage::Subscribe {
                client: id,
                predicates: vec![crate::wire::WirePredicate {
                    attr: "university".into(),
                    op: stopss_types::Operator::Eq,
                    value: WireValue::Term("uoft".into()),
                }],
            })
            .unwrap();
        client
            .send(&ClientMessage::Publish {
                client: id,
                pairs: vec![("school".into(), WireValue::Term("uoft".into()))],
            })
            .unwrap();
        assert!(broker.run_until_quiescent(200).unwrap());
        let replies = client.poll_recv().unwrap();
        assert!(replies.iter().any(|r| matches!(r, ServerMessage::Subscribed { .. })));
        assert!(replies.iter().any(|r| matches!(r, ServerMessage::Published { matches: 1 })));
        assert!(
            replies.iter().any(|r| matches!(r, ServerMessage::Notification { .. })),
            "the subscriber must receive its own match over the wire: {replies:?}"
        );
        let stats = broker.stats();
        assert_eq!(stats.matches_seen, 1);
        assert_eq!(stats.notifications_sent, 1);
        assert_eq!(stats.notifications_dropped + stats.notifications_disconnected, 0);
    }

    #[test]
    fn malformed_payload_gets_error_reply_and_keeps_connection() {
        let mut broker = net_broker(NetBrokerConfig::default());
        let mut client = NetClient::connect(&broker.connector()).unwrap();
        let _ = register(&mut client, &mut broker, "acme");
        // A well-framed but undecodable payload.
        let mut framed = BytesMut::new();
        write_frame(&mut framed, &[0xDE, 0xAD]);
        client.send_raw(&framed).unwrap();
        assert!(broker.run_until_quiescent(200).unwrap());
        let replies = client.poll_recv().unwrap();
        assert!(matches!(&replies[..], [ServerMessage::Error { .. }]), "{replies:?}");
        assert!(!client.peer_closed(), "payload errors must not kill the connection");
        assert_eq!(broker.connection_count(), 1);
    }

    #[test]
    fn corrupt_frame_length_disconnects() {
        let mut broker = net_broker(NetBrokerConfig::default());
        let mut client = NetClient::connect(&broker.connector()).unwrap();
        let _ = register(&mut client, &mut broker, "acme");
        client.send_raw(&u32::MAX.to_le_bytes()).unwrap();
        assert!(broker.run_until_quiescent(200).unwrap());
        assert!(client.peer_closed(), "a corrupt length prefix is unrecoverable");
        assert_eq!(broker.stats().protocol_errors, 1);
        assert_eq!(broker.connection_count(), 0);
        assert_eq!(broker.broker().client_count(), 0, "its client must be unregistered");
    }
}
