//! The broker: S-ToPSS wired to clients and the notification engine.
//!
//! This is the runtime of Figure 2: subscriptions and publications arrive
//! (from the demo front-end or the workload generator), the semantic
//! matcher decides who is interested, and the notification engine delivers
//! over each client's preferred transport. The matcher sits behind a
//! `RwLock`: the whole publish path is `&self` (per-publication mutable
//! state lives behind interior mutability inside the matcher), so
//! publishers share a *read* lock and only subscription mutations —
//! `subscribe`, `unsubscribe`, `set_semantic_mode` — take the write lock.
//! Client and ownership tables take their own read-mostly locks.
//!
//! When [`BrokerConfig::matcher`] asks for more than one shard, the broker
//! runs over [`stopss_core::ShardedSToPSS`] instead of the single-threaded
//! matcher, with byte-identical match sets and notifications.
//!
//! [`Broker::publish_batch`] runs the two stages as a **pipeline**:
//! stage 1 — the event-side semantic pass — needs only the immutable
//! configuration/ontology/interner, so the broker snapshots a
//! [`stopss_core::SemanticFrontEnd`] handle and prepares the batch in
//! chunks *outside* any matcher lock, on a dedicated scoped worker that
//! stays one chunk ahead; stage 2 — engine match + verify on the
//! precomputed artifacts — runs concurrently under a read lock, chunk by
//! chunk, so preparation of chunk *k+1* overlaps matching of chunk *k*
//! and subscribers are never blocked for the whole batch. A configuration
//! epoch guards the seam: if `set_semantic_mode` switched stages while a
//! chunk was in flight, the stale artifacts are discarded and that chunk
//! is republished from the raw events under the *same* read lock (the
//! `&self` match path removed the former second exclusive acquisition).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

use parking_lot::{Mutex, RwLock};
use stopss_core::{
    Config, Match, MatcherStats, PreparedEvent, SToPSS, SemanticFrontEnd, ShardedSToPSS, StageMask,
    Tolerance, PIPELINE_CHUNK,
};
use stopss_ontology::SemanticSource;
use stopss_types::{Event, FxHashMap, Predicate, SharedInterner, SubId, Subscription};

use crate::client::{ClientId, ClientInfo};
use crate::notify::{DeliveryStats, NotificationEngine};
use crate::transport::{
    Delivery, Inbox, SmsSim, SmtpSim, TcpSim, Transport, TransportKind, UdpSim,
};

/// Broker construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct BrokerConfig {
    /// Matcher configuration (engine, strategy, stages, …).
    pub matcher: Config,
    /// UDP loss probability for the simulated datagram transport.
    pub udp_loss: f64,
    /// SMS messages allowed per rate window.
    pub sms_budget: u32,
    /// Seed for transport randomness.
    pub seed: u64,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig { matcher: Config::default(), udp_loss: 0.05, sms_budget: 64, seed: 2003 }
    }
}

/// Broker operation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BrokerError {
    /// The client id is not registered.
    UnknownClient(ClientId),
    /// The subscription exists but belongs to someone else.
    NotOwner {
        /// The caller.
        client: ClientId,
        /// The contested subscription.
        sub: SubId,
    },
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::UnknownClient(c) => write!(f, "unknown client {c}"),
            BrokerError::NotOwner { client, sub } => {
                write!(f, "{client} does not own {sub}")
            }
        }
    }
}

impl std::error::Error for BrokerError {}

/// Builds the transport set for one notification-engine incarnation.
/// Called with the restart epoch (0 for the initial engine, then 1, 2, …)
/// so seeded transports can derive a fresh-but-deterministic stream per
/// incarnation. Transports should write into long-lived inboxes (the
/// `with_inbox` constructors) so receivers survive restarts.
pub type TransportFactory = Box<dyn Fn(u64) -> Vec<Box<dyn Transport>> + Send + Sync>;

/// The matcher the broker runs over: single-threaded or sharded,
/// selected by [`Config::shards`]. Both produce identical match sets;
/// the enum keeps the broker's lock-around-the-matcher structure intact.
enum MatcherBackend {
    /// One monolithic engine (the seed architecture).
    Single(SToPSS),
    /// Hash-sharded engines with a scoped-thread worker pool.
    Sharded(ShardedSToPSS),
}

impl MatcherBackend {
    fn build(config: Config, source: Arc<dyn SemanticSource>, interner: SharedInterner) -> Self {
        if config.effective_shards() > 1 {
            MatcherBackend::Sharded(ShardedSToPSS::new(config, source, interner))
        } else {
            MatcherBackend::Single(SToPSS::new(config, source, interner))
        }
    }

    fn len(&self) -> usize {
        match self {
            MatcherBackend::Single(m) => m.len(),
            MatcherBackend::Sharded(m) => m.len(),
        }
    }

    fn stats(&self) -> MatcherStats {
        match self {
            MatcherBackend::Single(m) => m.stats(),
            MatcherBackend::Sharded(m) => m.stats(),
        }
    }

    fn subscribe_with(&mut self, sub: Subscription, tolerance: Option<Tolerance>) {
        match (self, tolerance) {
            (MatcherBackend::Single(m), Some(t)) => m.subscribe_with_tolerance(sub, t),
            (MatcherBackend::Single(m), None) => m.subscribe(sub),
            (MatcherBackend::Sharded(m), Some(t)) => m.subscribe_with_tolerance(sub, t),
            (MatcherBackend::Sharded(m), None) => m.subscribe(sub),
        }
    }

    fn unsubscribe(&mut self, id: SubId) -> bool {
        match self {
            MatcherBackend::Single(m) => m.unsubscribe(id),
            MatcherBackend::Sharded(m) => m.unsubscribe(id),
        }
    }

    fn publish(&self, event: &Event) -> Vec<Match> {
        match self {
            MatcherBackend::Single(m) => m.publish(event),
            MatcherBackend::Sharded(m) => m.publish(event),
        }
    }

    fn publish_batch(&self, events: &[Event]) -> Vec<Vec<Match>> {
        match self {
            MatcherBackend::Single(m) => m.publish_batch(events),
            MatcherBackend::Sharded(m) => m.publish_batch(events),
        }
    }

    /// The event-side semantic front-end handle (config snapshot + shared
    /// ontology/interner + verification classes to warm), detachable so
    /// batches can be prepared outside any matcher lock.
    fn frontend(&self) -> SemanticFrontEnd {
        match self {
            MatcherBackend::Single(m) => m.frontend(),
            MatcherBackend::Sharded(m) => m.frontend(),
        }
    }

    /// Publishes precomputed front-end artifacts (the matching stage of
    /// the pipeline). Artifacts must match the current configuration.
    fn publish_prepared_batch(&self, prepared: &[PreparedEvent]) -> Vec<Vec<Match>> {
        match self {
            MatcherBackend::Single(m) => {
                prepared.iter().map(|p| m.publish_prepared(p).matches).collect()
            }
            MatcherBackend::Sharded(m) => {
                m.publish_prepared_batch(prepared).into_iter().map(|r| r.matches).collect()
            }
        }
    }

    fn set_stages(&mut self, stages: StageMask) {
        match self {
            MatcherBackend::Single(m) => m.set_stages(stages),
            MatcherBackend::Sharded(m) => m.set_stages(stages),
        }
    }
}

/// The publish/subscribe broker of the demonstration setup.
pub struct Broker {
    /// Read lock for the (interior-mutable, `&self`) publish path; write
    /// lock for subscription and configuration mutations.
    matcher: RwLock<MatcherBackend>,
    clients: RwLock<FxHashMap<ClientId, ClientInfo>>,
    sub_owner: RwLock<FxHashMap<SubId, ClientId>>,
    /// Read lock to enqueue; write lock only to swap the engine on
    /// [`Broker::restart_notifier`].
    notifier: RwLock<NotificationEngine>,
    /// Counters of engines retired by restarts, folded together so
    /// [`Broker::delivery_stats`] spans every incarnation.
    retired_delivery: Mutex<DeliveryStats>,
    /// Rebuilds transports for each engine incarnation.
    transport_factory: TransportFactory,
    notifier_restarts: AtomicU64,
    inboxes: FxHashMap<TransportKind, Inbox>,
    interner: SharedInterner,
    /// Stage mask used in semantic mode (restored by `set_semantic_mode`).
    semantic_stages: StageMask,
    semantic: RwLock<bool>,
    /// Bumped (under the matcher write lock) whenever the matcher's
    /// semantic configuration changes; lets `publish_batch` detect that
    /// artifacts prepared outside the lock went stale mid-flight.
    matcher_epoch: AtomicU64,
    /// Matches whose owner lookup missed in `notify_matches` — a
    /// subscription matched by an in-flight publish and unsubscribed
    /// before its notification was enqueued. Counted (not silently
    /// dropped) so delivery accounting stays auditable.
    orphaned_matches: AtomicU64,
    next_client: AtomicU64,
    next_sub: AtomicU64,
}

impl Broker {
    /// Builds a broker with all four simulated transports.
    pub fn new(
        config: BrokerConfig,
        source: Arc<dyn SemanticSource>,
        interner: SharedInterner,
    ) -> Broker {
        let mut inboxes = FxHashMap::default();
        for kind in TransportKind::ALL {
            inboxes.insert(kind, Inbox::default());
        }
        let factory_inboxes = inboxes.clone();
        let factory: TransportFactory = Box::new(move |epoch| {
            vec![
                Box::new(TcpSim::with_inbox(factory_inboxes[&TransportKind::Tcp].clone())),
                Box::new(UdpSim::with_inbox(
                    config.udp_loss,
                    // Each incarnation draws a fresh deterministic stream.
                    config.seed.wrapping_add(epoch),
                    factory_inboxes[&TransportKind::Udp].clone(),
                )),
                Box::new(SmtpSim::with_inbox(factory_inboxes[&TransportKind::Smtp].clone())),
                Box::new(SmsSim::with_inbox(
                    config.sms_budget,
                    factory_inboxes[&TransportKind::Sms].clone(),
                )),
            ]
        });
        Broker::with_transport_factory(config, source, interner, inboxes, factory)
    }

    /// Builds a broker over custom transports. `factory` is invoked with
    /// epoch 0 for the initial notification engine and with 1, 2, … on
    /// each [`Broker::restart_notifier`]; `inboxes` are the receiving
    /// ends exposed through [`Broker::inbox`].
    pub fn with_transport_factory(
        config: BrokerConfig,
        source: Arc<dyn SemanticSource>,
        interner: SharedInterner,
        inboxes: FxHashMap<TransportKind, Inbox>,
        factory: TransportFactory,
    ) -> Broker {
        Broker {
            matcher: RwLock::new(MatcherBackend::build(config.matcher, source, interner.clone())),
            clients: RwLock::new(FxHashMap::default()),
            sub_owner: RwLock::new(FxHashMap::default()),
            notifier: RwLock::new(NotificationEngine::start(factory(0))),
            retired_delivery: Mutex::new(DeliveryStats::default()),
            transport_factory: factory,
            notifier_restarts: AtomicU64::new(0),
            inboxes,
            interner,
            semantic_stages: config.matcher.stages,
            semantic: RwLock::new(!config.matcher.stages.is_syntactic()),
            matcher_epoch: AtomicU64::new(0),
            orphaned_matches: AtomicU64::new(0),
            next_client: AtomicU64::new(1),
            next_sub: AtomicU64::new(1),
        }
    }

    /// The shared interner for building events/subscriptions.
    pub fn interner(&self) -> &SharedInterner {
        &self.interner
    }

    /// Registers a client.
    pub fn register_client(&self, name: impl Into<String>, transport: TransportKind) -> ClientId {
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        self.clients.write().insert(id, ClientInfo { name: name.into(), transport });
        id
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        self.clients.read().len()
    }

    /// Drops a client connection. The client's subscriptions stay in the
    /// matcher (the dropped endpoint may reconnect under a new
    /// registration), so their subsequent matches become unroutable and
    /// are counted in [`Broker::orphaned_matches`] — the accounting the
    /// chaos harness scores. Returns false for unknown ids.
    pub fn unregister_client(&self, client: ClientId) -> bool {
        self.clients.write().remove(&client).is_some()
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.matcher.read().len()
    }

    /// Registers a subscription for `client` with the system tolerance.
    pub fn subscribe(
        &self,
        client: ClientId,
        predicates: Vec<Predicate>,
    ) -> Result<SubId, BrokerError> {
        self.subscribe_with_tolerance(client, predicates, None)
    }

    /// Registers a subscription with an optional subscriber tolerance
    /// (the information-loss knob of §3.2).
    pub fn subscribe_with_tolerance(
        &self,
        client: ClientId,
        predicates: Vec<Predicate>,
        tolerance: Option<Tolerance>,
    ) -> Result<SubId, BrokerError> {
        if !self.clients.read().contains_key(&client) {
            return Err(BrokerError::UnknownClient(client));
        }
        let id = SubId(self.next_sub.fetch_add(1, Ordering::Relaxed));
        let sub = Subscription::new(id, predicates);
        // Owner first, matcher second: from the instant a publish can
        // match the subscription, its notifications are routable.
        self.sub_owner.write().insert(id, client);
        self.matcher.write().subscribe_with(sub, tolerance);
        Ok(id)
    }

    /// Removes a subscription; only its owner may do so.
    pub fn unsubscribe(&self, client: ClientId, sub: SubId) -> Result<bool, BrokerError> {
        match self.sub_owner.read().get(&sub) {
            Some(owner) if *owner != client => {
                return Err(BrokerError::NotOwner { client, sub });
            }
            None => return Ok(false),
            Some(_) => {}
        }
        // Matcher first, owner table second — the reverse order would let
        // a concurrent publish match the subscription after its owner
        // entry vanished, silently dropping the notification. This way a
        // publish that matched before the matcher removal still finds the
        // owner; once the matcher removal returns, no new match can
        // reference `sub`. The remaining window (matched before removal,
        // notified after both removals) is inherent to concurrent
        // unsubscription and is *counted* by `notify_matches` instead of
        // skipped silently (see [`Broker::orphaned_matches`]).
        let existed = self.matcher.write().unsubscribe(sub);
        self.sub_owner.write().remove(&sub);
        Ok(existed)
    }

    /// Publishes an event: matches it and enqueues one notification per
    /// matched subscription. Returns the number of matches.
    ///
    /// Publishers hold only a *read* lock — the matcher's publish path is
    /// `&self` — so concurrent publishers proceed in parallel and only
    /// subscription/configuration mutations serialize against them.
    pub fn publish(&self, event: &Event) -> usize {
        let matches = self.matcher.read().publish(event);
        self.notify_matches(event, &matches);
        matches.len()
    }

    /// Publishes a batch of events through the two-stage pipeline,
    /// enqueuing notifications exactly as [`Broker::publish`] would per
    /// event. Returns the total number of matches across the batch.
    ///
    /// Stage 1 (the event-side semantic pass) runs *outside* any matcher
    /// lock on a detached [`SemanticFrontEnd`] handle, one pipeline chunk
    /// ahead of stage 2 (engine match + verify on the precomputed
    /// artifacts), which holds only a read lock per chunk — so the
    /// front-end prepares chunk *k+1* while the shards match chunk *k*,
    /// and notifications for chunk *k* are enqueued before chunk *k+1*
    /// matches. The artifacts carry the per-publication tier cache: with
    /// provenance on, the classifier's tier closures are warmed in
    /// stage 1, and so are the verification-class closures of every
    /// registered non-system tolerance, so the under-lock stage pays
    /// neither the semantic closure nor any first-use class closure. If
    /// the semantic mode switched while a chunk was in flight, its stale
    /// artifacts are discarded and that chunk is republished from the raw
    /// events under the same read lock.
    pub fn publish_batch(&self, events: &[Event]) -> usize {
        if events.is_empty() {
            return 0;
        }
        let (frontend, epoch) = self.frontend_snapshot();
        // Mirror the sharded matcher's own gate: overlapping the stages
        // costs a preparer thread, so single-chunk batches — and
        // configurations without the budget or hardware for overlap —
        // take the plain barrier instead.
        if events.len() <= PIPELINE_CHUNK || !frontend.config().pipeline_overlap() {
            let prepared = frontend.prepare_batch(events);
            return self.match_and_notify(events, &prepared, epoch);
        }
        // Capacity 1: stage 1 stays exactly one chunk ahead of stage 2.
        let (tx, rx) = mpsc::sync_channel::<Vec<PreparedEvent>>(1);
        let frontend = &frontend;
        crossbeam::thread::scope(|scope| {
            scope.spawn(move |_| {
                for chunk in events.chunks(PIPELINE_CHUNK) {
                    // The receiver only drops mid-batch if the match
                    // stage panicked; stop preparing in that case.
                    if tx.send(frontend.prepare_batch(chunk)).is_err() {
                        break;
                    }
                }
            });
            let mut total = 0;
            let mut offset = 0;
            for prepared in rx {
                let chunk = &events[offset..offset + prepared.len()];
                offset += prepared.len();
                total += self.match_and_notify(chunk, &prepared, epoch);
            }
            total
        })
        .expect("publish pipeline panicked")
    }

    /// Snapshots the detached front-end handle and the configuration
    /// epoch it was taken under (the staleness token for
    /// [`Broker::match_and_notify`]).
    fn frontend_snapshot(&self) -> (SemanticFrontEnd, u64) {
        let matcher = self.matcher.read();
        (matcher.frontend(), self.matcher_epoch.load(Ordering::Acquire))
    }

    /// Stage 2 for one pipeline chunk: matches the precomputed artifacts
    /// under a read lock and enqueues notifications. If the configuration
    /// epoch moved since `epoch` (a concurrent `set_semantic_mode`), the
    /// artifacts are stale — semantically prepared under the wrong stage
    /// mask — so the chunk is republished from the raw events instead,
    /// under the *same* read lock (the `&self` match path needs no second
    /// exclusive acquisition). The epoch cannot move while the read lock
    /// is held, because `set_semantic_mode` bumps it under the write lock.
    fn match_and_notify(&self, events: &[Event], prepared: &[PreparedEvent], epoch: u64) -> usize {
        let match_sets = {
            let matcher = self.matcher.read();
            if self.matcher_epoch.load(Ordering::Acquire) == epoch {
                matcher.publish_prepared_batch(prepared)
            } else {
                matcher.publish_batch(events)
            }
        };
        let mut total = 0;
        for (event, matches) in events.iter().zip(&match_sets) {
            self.notify_matches(event, matches);
            total += matches.len();
        }
        total
    }

    fn notify_matches(&self, event: &Event, matches: &[Match]) {
        if matches.is_empty() {
            return;
        }
        let clients = self.clients.read();
        let owners = self.sub_owner.read();
        let rendered = self.interner.with(|i| format!("event {}", event.display(i)));
        for m in matches {
            let Some(owner) = owners.get(&m.sub) else {
                // The subscription was matched by an in-flight publish and
                // unsubscribed before this notification was enqueued.
                self.orphaned_matches.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            let Some(info) = clients.get(owner) else {
                self.orphaned_matches.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            let payload = format!(
                "to {} [{}]: {} matched via {} — {}",
                info.name, owner, m.sub, m.origin, rendered
            );
            self.notifier.read().enqueue(info.transport, Delivery { client: *owner, payload });
        }
    }

    /// Matches whose notification was dropped because the owning
    /// subscription disappeared between matching and notification (a
    /// publish racing an unsubscribe). Zero in the absence of concurrent
    /// unsubscription.
    pub fn orphaned_matches(&self) -> u64 {
        self.orphaned_matches.load(Ordering::Relaxed)
    }

    /// True if the broker runs over the sharded matcher backend.
    pub fn is_sharded(&self) -> bool {
        matches!(&*self.matcher.read(), MatcherBackend::Sharded(_))
    }

    /// Switches between semantic and syntactic mode ("the application can
    /// run in two different modes", §4).
    pub fn set_semantic_mode(&self, semantic: bool) {
        let mut flag = self.semantic.write();
        if *flag == semantic {
            return;
        }
        *flag = semantic;
        let stages = if semantic { self.semantic_stages } else { StageMask::syntactic() };
        let mut matcher = self.matcher.write();
        matcher.set_stages(stages);
        // Bumped while still holding the matcher write lock, so an
        // in-flight `publish_batch` cannot match stale artifacts against
        // the new configuration without noticing.
        self.matcher_epoch.fetch_add(1, Ordering::Release);
    }

    /// True if the broker currently matches semantically.
    pub fn is_semantic(&self) -> bool {
        *self.semantic.read()
    }

    /// Matcher counters (aggregated across shards for the sharded backend).
    pub fn matcher_stats(&self) -> MatcherStats {
        self.matcher.read().stats()
    }

    /// Notification counters: retired incarnations folded with a live
    /// snapshot of the current engine.
    pub fn delivery_stats(&self) -> DeliveryStats {
        let mut stats = self.retired_delivery.lock().clone();
        stats.merge(&self.notifier.read().stats());
        stats
    }

    /// Restarts the notification engine mid-stream: the current engine is
    /// shut down (draining its queue and flushing batchers), its final
    /// counters are folded into the retired total, and a fresh engine is
    /// started from the transport factory. Notifications enqueued before
    /// the restart are never lost — shutdown drains — and enqueues under
    /// the swap serialize against it on the notifier lock. Returns the
    /// retired engine's final stats.
    pub fn restart_notifier(&self) -> DeliveryStats {
        let mut notifier = self.notifier.write();
        let epoch = self.notifier_restarts.fetch_add(1, Ordering::Relaxed) + 1;
        let old = std::mem::replace(
            &mut *notifier,
            NotificationEngine::start((self.transport_factory)(epoch)),
        );
        let final_stats = old.shutdown();
        self.retired_delivery.lock().merge(&final_stats);
        final_stats
    }

    /// Number of notification-engine restarts performed.
    pub fn notifier_restarts(&self) -> u64 {
        self.notifier_restarts.load(Ordering::Relaxed)
    }

    /// Receiving-end inbox of a simulated transport.
    pub fn inbox(&self, kind: TransportKind) -> Option<Inbox> {
        self.inboxes.get(&kind).cloned()
    }

    /// Stops the notification engine (draining the queue) and returns the
    /// final delivery statistics across every engine incarnation.
    pub fn shutdown(self) -> DeliveryStats {
        let mut stats = self.retired_delivery.into_inner();
        stats.merge(&self.notifier.into_inner().shutdown());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_types::{Interner, Operator, SubscriptionBuilder};
    use stopss_workload::JobFinderDomain;

    fn jobs_broker(config: BrokerConfig) -> (Broker, SharedInterner) {
        let mut interner = Interner::new();
        let domain = JobFinderDomain::build(&mut interner);
        let shared = SharedInterner::from_interner(interner);
        let broker = Broker::new(config, Arc::new(domain.ontology), shared.clone());
        (broker, shared)
    }

    fn recruiter_predicates(interner: &SharedInterner) -> Vec<Predicate> {
        let mut snapshot = interner.snapshot();
        let sub = SubscriptionBuilder::new(&mut snapshot)
            .term_eq("university", "uoft")
            .pred("professional experience", Operator::Ge, 4i64)
            .build(SubId(0));
        for (_, s) in snapshot.iter() {
            interner.intern(s);
        }
        sub.predicates().to_vec()
    }

    fn candidate_event(interner: &SharedInterner) -> Event {
        let mut snapshot = interner.snapshot();
        let event = stopss_types::EventBuilder::new(&mut snapshot)
            .term("school", "uoft")
            .pair("graduation year", 1993i64)
            .build();
        for (_, s) in snapshot.iter() {
            interner.intern(s);
        }
        event
    }

    #[test]
    fn end_to_end_match_delivers_notification() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        let sub = broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        let matches = broker.publish(&candidate_event(&interner));
        assert_eq!(matches, 1);
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 1);
        assert!(sub.0 > 0);
    }

    #[test]
    fn notification_payload_names_the_match() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        let sub = broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        broker.publish(&candidate_event(&interner));
        let inbox = broker.inbox(TransportKind::Tcp).unwrap();
        let _ = broker.shutdown();
        let messages = inbox.lock();
        assert_eq!(messages.len(), 1);
        let payload = &messages[0].payload;
        assert!(payload.contains("acme"), "{payload}");
        assert!(payload.contains(&sub.to_string()), "{payload}");
        assert!(payload.contains("mapping"), "the paper flow matches via mapping: {payload}");
        assert!(payload.contains("(school, uoft)"), "{payload}");
    }

    #[test]
    fn syntactic_mode_suppresses_semantic_matches() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        assert!(broker.is_semantic());
        broker.set_semantic_mode(false);
        assert!(!broker.is_semantic());
        assert_eq!(broker.publish(&candidate_event(&interner)), 0);
        broker.set_semantic_mode(true);
        assert_eq!(broker.publish(&candidate_event(&interner)), 1);
    }

    #[test]
    fn ownership_is_enforced() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let alice = broker.register_client("alice", TransportKind::Tcp);
        let bob = broker.register_client("bob", TransportKind::Udp);
        let sub = broker.subscribe(alice, recruiter_predicates(&interner)).unwrap();
        assert_eq!(broker.unsubscribe(bob, sub), Err(BrokerError::NotOwner { client: bob, sub }));
        assert_eq!(broker.unsubscribe(alice, sub), Ok(true));
        assert_eq!(broker.unsubscribe(alice, sub), Ok(false), "already gone");
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn unknown_client_cannot_subscribe() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let err = broker.subscribe(ClientId(999), recruiter_predicates(&interner)).unwrap_err();
        assert_eq!(err, BrokerError::UnknownClient(ClientId(999)));
    }

    #[test]
    fn notifications_route_per_client_transport() {
        let (broker, interner) = jobs_broker(BrokerConfig { udp_loss: 0.0, ..Default::default() });
        let tcp_client = broker.register_client("tcp-co", TransportKind::Tcp);
        let udp_client = broker.register_client("udp-co", TransportKind::Udp);
        let preds = recruiter_predicates(&interner);
        broker.subscribe(tcp_client, preds.clone()).unwrap();
        broker.subscribe(udp_client, preds).unwrap();
        assert_eq!(broker.publish(&candidate_event(&interner)), 2);
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 1);
        assert_eq!(stats.get(TransportKind::Udp).delivered, 1);
    }

    #[test]
    fn sharded_broker_matches_and_delivers_like_single() {
        let sharded_config =
            BrokerConfig { matcher: Config::default().with_shards(4), ..BrokerConfig::default() };
        let (broker, interner) = jobs_broker(sharded_config);
        assert!(broker.is_sharded());
        let company = broker.register_client("acme", TransportKind::Tcp);
        broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        assert_eq!(broker.publish(&candidate_event(&interner)), 1);
        assert_eq!(broker.matcher_stats().published, 1);
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 1);

        let (single, _) = jobs_broker(BrokerConfig::default());
        assert!(!single.is_sharded());
        let _ = single.shutdown();
    }

    #[test]
    fn publish_batch_notifies_per_event() {
        for shards in [1usize, 4] {
            let config = BrokerConfig {
                matcher: Config::default().with_shards(shards),
                ..BrokerConfig::default()
            };
            let (broker, interner) = jobs_broker(config);
            let company = broker.register_client("acme", TransportKind::Tcp);
            broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
            let events = vec![candidate_event(&interner); 3];
            assert_eq!(broker.publish_batch(&events), 3, "shards={shards}");
            assert_eq!(broker.matcher_stats().published, 3, "shards={shards}");
            let stats = broker.shutdown();
            assert_eq!(stats.get(TransportKind::Tcp).delivered, 3, "shards={shards}");
        }
    }

    #[test]
    fn sharded_broker_honors_mode_switch_and_ownership() {
        let config =
            BrokerConfig { matcher: Config::default().with_shards(8), ..BrokerConfig::default() };
        let (broker, interner) = jobs_broker(config);
        let alice = broker.register_client("alice", TransportKind::Tcp);
        let sub = broker.subscribe(alice, recruiter_predicates(&interner)).unwrap();
        broker.set_semantic_mode(false);
        assert_eq!(broker.publish(&candidate_event(&interner)), 0);
        broker.set_semantic_mode(true);
        assert_eq!(broker.publish(&candidate_event(&interner)), 1);
        assert_eq!(broker.unsubscribe(alice, sub), Ok(true));
        assert_eq!(broker.subscription_count(), 0);
    }

    /// The `matcher_epoch` stale path, forced deterministically: snapshot
    /// the front-end, prepare artifacts, flip `set_semantic_mode` (which
    /// bumps the epoch), then run the match stage with the stale epoch
    /// token. The guard must discard the semantically-prepared artifacts
    /// and republish from the raw events — equal to a fresh publish under
    /// the new configuration — rather than match stale closures.
    #[test]
    fn stale_epoch_falls_back_to_fresh_publish() {
        for shards in [1usize, 4] {
            let config = BrokerConfig {
                matcher: Config::default().with_shards(shards),
                ..BrokerConfig::default()
            };
            let (broker, interner) = jobs_broker(config);
            let company = broker.register_client("acme", TransportKind::Tcp);
            broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
            let events = vec![candidate_event(&interner); 3];

            let (frontend, epoch) = broker.frontend_snapshot();
            let prepared = frontend.prepare_batch(&events);
            // The artifacts would match semantically (the closure carries
            // the synonym-resolved pairs and the mapping-produced
            // experience); a broken guard would report 3 matches.
            broker.set_semantic_mode(false);
            let stale = broker.match_and_notify(&events, &prepared, epoch);
            assert_eq!(
                stale, 0,
                "shards={shards}: stale semantic artifacts must be republished \
                 under the syntactic configuration"
            );
            assert_eq!(stale, broker.publish_batch(&events), "fallback equals a fresh publish");

            // Restore semantic mode: a fresh snapshot + matching epoch
            // takes the prepared-artifact path and finds the matches.
            broker.set_semantic_mode(true);
            let (frontend, epoch) = broker.frontend_snapshot();
            let prepared = frontend.prepare_batch(&events);
            let fresh = broker.match_and_notify(&events, &prepared, epoch);
            assert_eq!(fresh, 3, "shards={shards}");
            assert_eq!(fresh, broker.publish_batch(&events), "prepared path equals fresh publish");
            let _ = broker.shutdown();
        }
    }

    /// A match whose owner entry vanished between matching and
    /// notification is counted, not silently skipped.
    #[test]
    fn orphaned_matches_are_counted_not_skipped() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        let sub = broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        let event = candidate_event(&interner);
        // Match while the subscription is live (not yet notified)…
        let matches = broker.matcher.read().publish(&event);
        assert_eq!(matches.len(), 1);
        // …then lose the owner entry before notification, as a concurrent
        // unsubscribe interleaving would.
        assert_eq!(broker.unsubscribe(company, sub), Ok(true));
        assert_eq!(broker.orphaned_matches(), 0);
        broker.notify_matches(&event, &matches);
        assert_eq!(broker.orphaned_matches(), 1, "the dropped notification is accounted");
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 0, "nothing was enqueued");
    }

    /// Unsubscribe removes from the matcher *before* the owner table, so
    /// no publish serialized after the matcher removal can produce an
    /// unroutable match.
    #[test]
    fn unsubscribe_then_publish_finds_nothing_and_orphans_nothing() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        let sub = broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        assert_eq!(broker.unsubscribe(company, sub), Ok(true));
        assert_eq!(broker.publish(&candidate_event(&interner)), 0);
        assert_eq!(broker.orphaned_matches(), 0);
        let _ = broker.shutdown();
    }

    /// A batch spanning several pipeline chunks notifies per event exactly
    /// like per-event publishing.
    #[test]
    fn pipelined_batch_notifies_every_chunk() {
        for shards in [1usize, 4] {
            // `with_parallelism(shards)` forces the stage overlap on the
            // sharded config even on single-core hosts; shards = 1 keeps
            // covering the barrier fallback.
            let config = BrokerConfig {
                matcher: Config::default().with_shards(shards).with_parallelism(shards),
                ..BrokerConfig::default()
            };
            let (broker, interner) = jobs_broker(config);
            let company = broker.register_client("acme", TransportKind::Tcp);
            broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
            let n = 2 * PIPELINE_CHUNK + 7;
            let events = vec![candidate_event(&interner); n];
            assert_eq!(broker.publish_batch(&events), n, "shards={shards}");
            assert_eq!(broker.matcher_stats().published, n as u64, "shards={shards}");
            let stats = broker.shutdown();
            assert_eq!(stats.get(TransportKind::Tcp).delivered, n as u64, "shards={shards}");
        }
    }

    /// Counters survive a notification-engine restart: deliveries before
    /// and after the swap are both visible in `delivery_stats`/`shutdown`,
    /// and the inbox keeps accumulating across incarnations.
    #[test]
    fn restart_notifier_carries_accounting_across_incarnations() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        let event = candidate_event(&interner);
        assert_eq!(broker.publish(&event), 1);
        let retired = broker.restart_notifier();
        assert_eq!(retired.get(TransportKind::Tcp).delivered, 1, "drained before the swap");
        assert_eq!(broker.notifier_restarts(), 1);
        assert_eq!(broker.publish(&event), 1);
        let inbox = broker.inbox(TransportKind::Tcp).unwrap();
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 2, "both incarnations counted");
        assert_eq!(inbox.lock().len(), 2, "inbox survives the restart");
    }

    /// Dropping a client leaves its subscriptions matching, and their
    /// notifications land in the orphaned accounting instead of vanishing.
    #[test]
    fn unregistered_client_matches_become_orphans() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        assert!(broker.unregister_client(company));
        assert!(!broker.unregister_client(company), "already gone");
        assert_eq!(broker.publish(&candidate_event(&interner)), 1, "subscription stays live");
        assert_eq!(broker.orphaned_matches(), 1);
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 0);
    }

    #[test]
    fn concurrent_publishers_are_serialized_safely() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        let broker = Arc::new(broker);
        let event = candidate_event(&interner);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let broker = broker.clone();
                let event = event.clone();
                std::thread::spawn(move || (0..25).map(|_| broker.publish(&event)).sum::<usize>())
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
        assert_eq!(broker.matcher_stats().published, 100);
        let broker = Arc::try_unwrap(broker).ok().expect("sole owner");
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 100);
    }
}
