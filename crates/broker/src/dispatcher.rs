//! The broker: S-ToPSS wired to clients and the notification engine.
//!
//! This is the runtime of Figure 2: subscriptions and publications arrive
//! (from the demo front-end or the workload generator), the semantic
//! matcher decides who is interested, and the notification engine delivers
//! over each client's preferred transport.
//!
//! # Epoch-snapshot control plane
//!
//! The matcher is a **plain field** — no broker-side lock at all. Both
//! backends ([`SToPSS`] and [`ShardedSToPSS`]) keep their ontology,
//! configuration and subscription index behind epoch-swapped immutable
//! snapshots: every control-plane operation (`subscribe`, `unsubscribe`,
//! `set_stages`, `reconfigure`, ontology replacement) forks the current
//! snapshot aside, mutates the fork, and publishes it with one atomic
//! pointer swap. Publishers resolve a snapshot, match against it, and are
//! **never blocked** by control traffic; an in-flight publication simply
//! finishes against the snapshot it started under. The former
//! `RwLock<MatcherBackend>` + `matcher_epoch: AtomicU64` pair is gone —
//! the epoch now lives *inside* the snapshot, so it is bumped by every
//! front-end-invalidating mutation (not just `set_semantic_mode`, the
//! old bug) and cannot drift from the state it guards.
//!
//! [`Broker::publish_batch`] runs the two stages as a **pipeline**:
//! stage 1 — the event-side semantic pass — needs only the immutable
//! configuration/ontology/interner, so the broker detaches a
//! [`stopss_core::SemanticFrontEnd`] handle (tagged with the snapshot's
//! front-end epoch) and prepares the batch in chunks on a dedicated
//! scoped worker that stays one chunk ahead; stage 2 — engine match +
//! verify on the precomputed artifacts — runs against whatever snapshot
//! is current, chunk by chunk. **"Stale"** now means: the front-end
//! epoch tagged on the artifacts no longer equals the epoch of the
//! snapshot the match stage resolved. The check and the match are atomic
//! (`try_publish_prepared_batch` resolves *one* snapshot for both), so a
//! concurrent reconfiguration either lands entirely before a chunk
//! (stale artifacts are discarded and the chunk is republished from the
//! raw events) or entirely after it — never mid-chunk.
//!
//! When [`BrokerConfig::matcher`] asks for more than one shard, the broker
//! runs over [`stopss_core::ShardedSToPSS`] instead of the single-threaded
//! matcher, with byte-identical match sets and notifications. The backend
//! kind is fixed at construction; [`Broker::reconfigure_matcher`] can
//! reshard a sharded backend live but does not cross the enum boundary.

use stopss_types::sync::atomic::{AtomicU64, Ordering};
use stopss_types::sync::{mpsc, Arc, Mutex, RwLock};

use stopss_core::{
    Config, Match, MatcherStats, PreparedEvent, SToPSS, SemanticFrontEnd, ShardedSToPSS, StageMask,
    Tolerance, PIPELINE_CHUNK,
};
use stopss_ontology::SemanticSource;
use stopss_types::{Event, FxHashMap, Predicate, SharedInterner, SubId, Subscription};

use crate::client::{ClientId, ClientInfo};
use crate::notify::{DeliveryStats, NotificationEngine};
use crate::transport::{
    Delivery, Inbox, SmsSim, SmtpSim, TcpSim, Transport, TransportKind, UdpSim,
};

/// Broker construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct BrokerConfig {
    /// Matcher configuration (engine, strategy, stages, …).
    pub matcher: Config,
    /// UDP loss probability for the simulated datagram transport.
    pub udp_loss: f64,
    /// SMS messages allowed per rate window.
    pub sms_budget: u32,
    /// Seed for transport randomness.
    pub seed: u64,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig { matcher: Config::default(), udp_loss: 0.05, sms_budget: 64, seed: 2003 }
    }
}

/// Broker operation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BrokerError {
    /// The client id is not registered.
    UnknownClient(ClientId),
    /// The subscription exists but belongs to someone else.
    NotOwner {
        /// The caller.
        client: ClientId,
        /// The contested subscription.
        sub: SubId,
    },
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::UnknownClient(c) => write!(f, "unknown client {c}"),
            BrokerError::NotOwner { client, sub } => {
                write!(f, "{client} does not own {sub}")
            }
        }
    }
}

impl std::error::Error for BrokerError {}

/// Builds the transport set for one notification-engine incarnation.
/// Called with the restart epoch (0 for the initial engine, then 1, 2, …)
/// so seeded transports can derive a fresh-but-deterministic stream per
/// incarnation. Transports should write into long-lived inboxes (the
/// `with_inbox` constructors) so receivers survive restarts.
pub type TransportFactory = Box<dyn Fn(u64) -> Vec<Box<dyn Transport>> + Send + Sync>;

/// The matcher the broker runs over: single-threaded or sharded,
/// selected by [`Config::shards`]. Both produce identical match sets and
/// both run their own epoch-snapshot control plane, so every method —
/// control ops included — takes `&self` and the broker needs no lock
/// around the enum.
enum MatcherBackend {
    /// One monolithic engine (the seed architecture).
    Single(SToPSS),
    /// Hash-sharded engines with a scoped-thread worker pool.
    Sharded(ShardedSToPSS),
}

impl MatcherBackend {
    fn build(config: Config, source: Arc<dyn SemanticSource>, interner: SharedInterner) -> Self {
        if config.effective_shards() > 1 {
            MatcherBackend::Sharded(ShardedSToPSS::new(config, source, interner))
        } else {
            MatcherBackend::Single(SToPSS::new(config, source, interner))
        }
    }

    fn len(&self) -> usize {
        match self {
            MatcherBackend::Single(m) => m.len(),
            MatcherBackend::Sharded(m) => m.len(),
        }
    }

    fn stats(&self) -> MatcherStats {
        match self {
            MatcherBackend::Single(m) => m.stats(),
            MatcherBackend::Sharded(m) => m.stats(),
        }
    }

    fn subscribe_with(&self, sub: Subscription, tolerance: Option<Tolerance>) {
        match (self, tolerance) {
            (MatcherBackend::Single(m), Some(t)) => {
                m.subscribe_with_tolerance(sub, t);
            }
            (MatcherBackend::Single(m), None) => {
                m.subscribe(sub);
            }
            (MatcherBackend::Sharded(m), Some(t)) => {
                m.subscribe_with_tolerance(sub, t);
            }
            (MatcherBackend::Sharded(m), None) => {
                m.subscribe(sub);
            }
        }
    }

    fn control_epoch(&self) -> u64 {
        match self {
            MatcherBackend::Single(m) => m.control_epoch(),
            MatcherBackend::Sharded(m) => m.control_epoch(),
        }
    }

    fn subscribe_batch(&self, subs: Vec<(Subscription, Option<Tolerance>)>) {
        match self {
            MatcherBackend::Single(m) => {
                m.subscribe_batch(subs);
            }
            MatcherBackend::Sharded(m) => {
                m.subscribe_batch(subs);
            }
        }
    }

    fn unsubscribe(&self, id: SubId) -> bool {
        match self {
            MatcherBackend::Single(m) => m.unsubscribe(id).is_some(),
            MatcherBackend::Sharded(m) => m.unsubscribe(id).is_some(),
        }
    }

    fn publish(&self, event: &Event) -> Vec<Match> {
        match self {
            MatcherBackend::Single(m) => m.publish(event),
            MatcherBackend::Sharded(m) => m.publish(event),
        }
    }

    fn publish_batch(&self, events: &[Event]) -> Vec<Vec<Match>> {
        match self {
            MatcherBackend::Single(m) => m.publish_batch(events),
            MatcherBackend::Sharded(m) => m.publish_batch(events),
        }
    }

    /// The event-side semantic front-end handle (config snapshot + shared
    /// ontology/interner + verification classes to warm), detachable so
    /// batches can be prepared outside the matcher. Tagged with the
    /// snapshot's front-end epoch — the staleness token checked by
    /// [`MatcherBackend::try_publish_prepared_batch`].
    fn frontend(&self) -> SemanticFrontEnd {
        match self {
            MatcherBackend::Single(m) => m.frontend(),
            MatcherBackend::Sharded(m) => m.frontend(),
        }
    }

    /// Publishes precomputed front-end artifacts if — and only if — the
    /// front-end epoch they were prepared under still matches the current
    /// snapshot's. The check and the match resolve the *same* snapshot,
    /// so a racing control op can never slip between them. `None` means
    /// the artifacts went stale and the caller must republish from the
    /// raw events.
    fn try_publish_prepared_batch(
        &self,
        prepared: &[PreparedEvent],
        frontend_epoch: u64,
    ) -> Option<Vec<Vec<Match>>> {
        match self {
            MatcherBackend::Single(m) => m
                .try_publish_prepared_batch(prepared, frontend_epoch)
                .map(|rs| rs.into_iter().map(|r| r.matches).collect()),
            MatcherBackend::Sharded(m) => m
                .try_publish_prepared_batch(prepared, frontend_epoch)
                .map(|rs| rs.into_iter().map(|r| r.matches).collect()),
        }
    }

    fn set_stages(&self, stages: StageMask) {
        match self {
            MatcherBackend::Single(m) => {
                m.set_stages(stages);
            }
            MatcherBackend::Sharded(m) => {
                m.set_stages(stages);
            }
        }
    }

    fn reconfigure(&self, config: Config) {
        match self {
            MatcherBackend::Single(m) => {
                m.reconfigure(config);
            }
            MatcherBackend::Sharded(m) => {
                m.reconfigure(config);
            }
        }
    }

    fn set_source(&self, source: Arc<dyn SemanticSource>) {
        match self {
            MatcherBackend::Single(m) => {
                m.set_source(source);
            }
            MatcherBackend::Sharded(m) => {
                m.set_source(source);
            }
        }
    }

    fn source(&self) -> Arc<dyn SemanticSource> {
        match self {
            MatcherBackend::Single(m) => m.source(),
            MatcherBackend::Sharded(m) => m.source(),
        }
    }
}

/// The publish/subscribe broker of the demonstration setup.
pub struct Broker {
    /// No lock: both backends swap immutable snapshots internally, so the
    /// publish path and every control op are `&self` and publishers never
    /// wait on subscription or configuration mutations.
    matcher: MatcherBackend,
    clients: RwLock<FxHashMap<ClientId, ClientInfo>>,
    sub_owner: RwLock<FxHashMap<SubId, ClientId>>,
    /// Read lock to enqueue; write lock only for the brief engine swap in
    /// [`Broker::restart_notifier`] (the drain runs outside it).
    notifier: RwLock<NotificationEngine>,
    /// Counters of engines retired by restarts, folded together so
    /// [`Broker::delivery_stats`] spans every incarnation.
    retired_delivery: Mutex<DeliveryStats>,
    /// Serializes notification-engine restarts and snapshots of the
    /// delivery accounting. A restart moves counters from the live engine
    /// into the retired total; holding this lock across the move (and
    /// across [`Broker::delivery_stats`]' two reads) keeps the sum
    /// conserved — no interleaving can observe, or lose, a retired
    /// engine's counters mid-transfer.
    restart: Mutex<()>,
    /// Rebuilds transports for each engine incarnation.
    transport_factory: TransportFactory,
    notifier_restarts: AtomicU64,
    inboxes: FxHashMap<TransportKind, Inbox>,
    interner: SharedInterner,
    /// Stage mask used in semantic mode (restored by `set_semantic_mode`,
    /// updated when [`Broker::reconfigure_matcher`] installs a semantic
    /// configuration).
    semantic_stages: RwLock<StageMask>,
    semantic: RwLock<bool>,
    /// Matches whose owner lookup missed in `notify_matches` — a
    /// subscription matched by an in-flight publish and unsubscribed
    /// before its notification was enqueued. Counted (not silently
    /// dropped) so delivery accounting stays auditable.
    orphaned_matches: AtomicU64,
    next_client: AtomicU64,
    next_sub: AtomicU64,
}

impl Broker {
    /// Builds a broker with all four simulated transports.
    pub fn new(
        config: BrokerConfig,
        source: Arc<dyn SemanticSource>,
        interner: SharedInterner,
    ) -> Broker {
        let mut inboxes = FxHashMap::default();
        for kind in TransportKind::ALL {
            inboxes.insert(kind, Inbox::default());
        }
        let factory_inboxes = inboxes.clone();
        let factory: TransportFactory = Box::new(move |epoch| {
            vec![
                Box::new(TcpSim::with_inbox(factory_inboxes[&TransportKind::Tcp].clone())),
                Box::new(UdpSim::with_inbox(
                    config.udp_loss,
                    // Each incarnation draws a fresh deterministic stream.
                    config.seed.wrapping_add(epoch),
                    factory_inboxes[&TransportKind::Udp].clone(),
                )),
                Box::new(SmtpSim::with_inbox(factory_inboxes[&TransportKind::Smtp].clone())),
                Box::new(SmsSim::with_inbox(
                    config.sms_budget,
                    factory_inboxes[&TransportKind::Sms].clone(),
                )),
            ]
        });
        Broker::with_transport_factory(config, source, interner, inboxes, factory)
    }

    /// Builds a broker over custom transports. `factory` is invoked with
    /// epoch 0 for the initial notification engine and with 1, 2, … on
    /// each [`Broker::restart_notifier`]; `inboxes` are the receiving
    /// ends exposed through [`Broker::inbox`].
    pub fn with_transport_factory(
        config: BrokerConfig,
        source: Arc<dyn SemanticSource>,
        interner: SharedInterner,
        inboxes: FxHashMap<TransportKind, Inbox>,
        factory: TransportFactory,
    ) -> Broker {
        Broker {
            matcher: MatcherBackend::build(config.matcher, source, interner.clone()),
            clients: RwLock::new(FxHashMap::default()),
            sub_owner: RwLock::new(FxHashMap::default()),
            notifier: RwLock::new(NotificationEngine::start(factory(0))),
            retired_delivery: Mutex::new(DeliveryStats::default()),
            restart: Mutex::new(()),
            transport_factory: factory,
            notifier_restarts: AtomicU64::new(0),
            inboxes,
            interner,
            semantic_stages: RwLock::new(config.matcher.stages),
            semantic: RwLock::new(!config.matcher.stages.is_syntactic()),
            orphaned_matches: AtomicU64::new(0),
            next_client: AtomicU64::new(1),
            next_sub: AtomicU64::new(1),
        }
    }

    /// The shared interner for building events/subscriptions.
    pub fn interner(&self) -> &SharedInterner {
        &self.interner
    }

    /// Registers a client.
    pub fn register_client(&self, name: impl Into<String>, transport: TransportKind) -> ClientId {
        // ordering: id allocation needs only the atomicity of the add
        // (unique ids); nothing is published through this counter.
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        self.clients.write().insert(id, ClientInfo { name: name.into(), transport });
        id
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        self.clients.read().len()
    }

    /// Drops a client connection. The client's subscriptions stay in the
    /// matcher (the dropped endpoint may reconnect under a new
    /// registration), so their subsequent matches become unroutable and
    /// are counted in [`Broker::orphaned_matches`] — the accounting the
    /// chaos harness scores. Returns false for unknown ids.
    pub fn unregister_client(&self, client: ClientId) -> bool {
        self.clients.write().remove(&client).is_some()
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.matcher.len()
    }

    /// The matcher's control epoch: bumped once per control mutation
    /// (including once per whole [`Broker::subscribe_batch`]), so the
    /// delta across a window counts snapshot forks — the coalescing
    /// metric the networked event loop's subscribe-storm tests pin.
    pub fn matcher_control_epoch(&self) -> u64 {
        self.matcher.control_epoch()
    }

    /// Registers a subscription for `client` with the system tolerance.
    pub fn subscribe(
        &self,
        client: ClientId,
        predicates: Vec<Predicate>,
    ) -> Result<SubId, BrokerError> {
        self.subscribe_with_tolerance(client, predicates, None)
    }

    /// Registers a subscription with an optional subscriber tolerance
    /// (the information-loss knob of §3.2). The matcher mutation is a
    /// snapshot swap: concurrent publishers keep matching against the
    /// pre-subscribe snapshot until the swap lands.
    pub fn subscribe_with_tolerance(
        &self,
        client: ClientId,
        predicates: Vec<Predicate>,
        tolerance: Option<Tolerance>,
    ) -> Result<SubId, BrokerError> {
        if !self.clients.read().contains_key(&client) {
            return Err(BrokerError::UnknownClient(client));
        }
        // ordering: id allocation needs only the atomicity of the add
        // (unique ids); nothing is published through this counter.
        let id = SubId(self.next_sub.fetch_add(1, Ordering::Relaxed));
        let sub = Subscription::new(id, predicates);
        // Owner first, matcher second: from the instant a publish can
        // match the subscription, its notifications are routable.
        self.sub_owner.write().insert(id, client);
        self.matcher.subscribe_with(sub, tolerance);
        Ok(id)
    }

    /// Registers a batch of subscriptions as **one** matcher control
    /// mutation: ownership is recorded per request, then every accepted
    /// subscription lands in the matcher through a single fork-and-swap
    /// ([`SToPSS::subscribe_batch`] /
    /// [`stopss_core::ShardedSToPSS::subscribe_batch`]) instead of one
    /// copy-on-write fork per subscription. Results are positional: the
    /// `k`-th entry answers the `k`-th request, and rejected requests
    /// (unknown client) consume neither a [`SubId`] nor matcher work. The
    /// networked event loop coalesces Subscribe frames per poll turn into
    /// this call, which is what keeps connection-scale subscription storms
    /// linear instead of quadratic.
    pub fn subscribe_batch(
        &self,
        requests: Vec<(ClientId, Vec<Predicate>, Option<Tolerance>)>,
    ) -> Vec<Result<SubId, BrokerError>> {
        if requests.is_empty() {
            return Vec::new();
        }
        let mut results = Vec::with_capacity(requests.len());
        let mut accepted = Vec::with_capacity(requests.len());
        {
            // Owner entries first, matcher second — the same routability
            // order as the single-subscription path, batched under one
            // owner-table write lock.
            let clients = self.clients.read();
            let mut owners = self.sub_owner.write();
            for (client, predicates, tolerance) in requests {
                if !clients.contains_key(&client) {
                    results.push(Err(BrokerError::UnknownClient(client)));
                    continue;
                }
                // ordering: id allocation, atomicity only (as above).
                let id = SubId(self.next_sub.fetch_add(1, Ordering::Relaxed));
                owners.insert(id, client);
                accepted.push((Subscription::new(id, predicates), tolerance));
                results.push(Ok(id));
            }
        }
        self.matcher.subscribe_batch(accepted);
        results
    }

    /// Removes a subscription; only its owner may do so.
    pub fn unsubscribe(&self, client: ClientId, sub: SubId) -> Result<bool, BrokerError> {
        match self.sub_owner.read().get(&sub) {
            Some(owner) if *owner != client => {
                return Err(BrokerError::NotOwner { client, sub });
            }
            None => return Ok(false),
            Some(_) => {}
        }
        // Matcher first, owner table second — the reverse order would let
        // a concurrent publish match the subscription after its owner
        // entry vanished, silently dropping the notification. This way a
        // publish that matched before the matcher removal still finds the
        // owner; once the snapshot without `sub` is published, no new
        // match can reference it. The remaining window (matched against a
        // pre-removal snapshot, notified after both removals) is inherent
        // to concurrent unsubscription and is *counted* by
        // `notify_matches` instead of skipped silently (see
        // [`Broker::orphaned_matches`]).
        let existed = self.matcher.unsubscribe(sub);
        self.sub_owner.write().remove(&sub);
        Ok(existed)
    }

    /// Removes every subscription owned by `client`, returning how many
    /// were dropped. Same matcher-first ordering (and the same inherent
    /// already-matched window, counted by [`Broker::orphaned_matches`])
    /// as [`Broker::unsubscribe`]. This is the session-expiry path of the
    /// networked broker: a session past its TTL surrenders its
    /// subscriptions instead of orphaning every future match.
    pub fn unsubscribe_all(&self, client: ClientId) -> usize {
        let owned: Vec<SubId> = self
            .sub_owner
            .read()
            .iter()
            .filter_map(|(sub, owner)| (*owner == client).then_some(*sub))
            .collect();
        for sub in &owned {
            self.matcher.unsubscribe(*sub);
        }
        let mut owners = self.sub_owner.write();
        for sub in &owned {
            owners.remove(sub);
        }
        owned.len()
    }

    /// Publishes an event: matches it and enqueues one notification per
    /// matched subscription. Returns the number of matches.
    ///
    /// Publishers take no broker-side lock at all — they resolve the
    /// matcher's current snapshot and run against it, so concurrent
    /// publishers proceed in parallel and control-plane mutations never
    /// stall them.
    pub fn publish(&self, event: &Event) -> usize {
        let matches = self.matcher.publish(event);
        self.notify_matches(event, &matches);
        matches.len()
    }

    /// Publishes a batch of events through the two-stage pipeline,
    /// enqueuing notifications exactly as [`Broker::publish`] would per
    /// event. Returns the total number of matches across the batch.
    ///
    /// Stage 1 (the event-side semantic pass) runs on a detached
    /// [`SemanticFrontEnd`] handle, one pipeline chunk ahead of stage 2
    /// (engine match + verify on the precomputed artifacts) — so the
    /// front-end prepares chunk *k+1* while the shards match chunk *k*,
    /// and notifications for chunk *k* are enqueued before chunk *k+1*
    /// matches. The artifacts carry the per-publication tier cache: with
    /// provenance on, the classifier's tier closures are warmed in
    /// stage 1, and so are the verification-class closures of every
    /// registered non-system tolerance, so the match stage pays neither
    /// the semantic closure nor any first-use class closure. If a control
    /// op invalidated the front end while a chunk was in flight (the
    /// handle's epoch tag no longer matches the live snapshot's), the
    /// stale artifacts are discarded and that chunk is republished from
    /// the raw events against the fresh snapshot.
    pub fn publish_batch(&self, events: &[Event]) -> usize {
        if events.is_empty() {
            return 0;
        }
        let (frontend, epoch) = self.frontend_snapshot();
        // Mirror the sharded matcher's own gate: overlapping the stages
        // costs a preparer thread, so single-chunk batches — and
        // configurations without the budget or hardware for overlap —
        // take the plain barrier instead.
        if events.len() <= PIPELINE_CHUNK || !frontend.config().pipeline_overlap() {
            let prepared = frontend.prepare_batch(events);
            return self.match_and_notify(events, &prepared, epoch);
        }
        // Capacity 1: stage 1 stays exactly one chunk ahead of stage 2.
        let (tx, rx) = mpsc::sync_channel::<Vec<PreparedEvent>>(1);
        let frontend = &frontend;
        crossbeam::thread::scope(|scope| {
            scope.spawn(move |_| {
                for chunk in events.chunks(PIPELINE_CHUNK) {
                    // The receiver only drops mid-batch if the match
                    // stage panicked; stop preparing in that case.
                    if tx.send(frontend.prepare_batch(chunk)).is_err() {
                        break;
                    }
                }
            });
            let mut total = 0;
            let mut offset = 0;
            for prepared in rx {
                let chunk = &events[offset..offset + prepared.len()];
                offset += prepared.len();
                total += self.match_and_notify(chunk, &prepared, epoch);
            }
            total
        })
        .expect("invariant: publish pipeline threads do not panic")
    }

    /// Snapshots the detached front-end handle and the front-end epoch it
    /// was taken under (the staleness token for
    /// [`Broker::match_and_notify`]). The epoch is read off the handle
    /// itself — it is part of the matcher snapshot, so it can never
    /// disagree with the configuration the handle carries.
    fn frontend_snapshot(&self) -> (SemanticFrontEnd, u64) {
        let frontend = self.matcher.frontend();
        let epoch = frontend.epoch();
        (frontend, epoch)
    }

    /// Stage 2 for one pipeline chunk: matches the precomputed artifacts
    /// and enqueues notifications. The backend resolves one snapshot for
    /// both the staleness check and the match: if the snapshot's
    /// front-end epoch still equals `epoch`, the artifacts are valid for
    /// it by construction; otherwise a control op (mode switch,
    /// reconfiguration, ontology edit) invalidated them, and the chunk is
    /// republished from the raw events against the fresh snapshot
    /// instead.
    fn match_and_notify(&self, events: &[Event], prepared: &[PreparedEvent], epoch: u64) -> usize {
        let match_sets = match self.matcher.try_publish_prepared_batch(prepared, epoch) {
            Some(sets) => sets,
            None => self.matcher.publish_batch(events),
        };
        let mut total = 0;
        for (event, matches) in events.iter().zip(&match_sets) {
            self.notify_matches(event, matches);
            total += matches.len();
        }
        total
    }

    fn notify_matches(&self, event: &Event, matches: &[Match]) {
        if matches.is_empty() {
            return;
        }
        let clients = self.clients.read();
        let owners = self.sub_owner.read();
        let rendered = self.interner.with(|i| format!("event {}", event.display(i)));
        for m in matches {
            let Some(owner) = owners.get(&m.sub) else {
                // The subscription was matched by an in-flight publish and
                // unsubscribed before this notification was enqueued.
                // ordering: monotone conservation counter (matches_seen ==
                // orphaned + delivered); adds commute, no paired state.
                self.orphaned_matches.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            let Some(info) = clients.get(owner) else {
                // ordering: monotone conservation counter, as above.
                self.orphaned_matches.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            let payload = format!(
                "to {} [{}]: {} matched via {} — {}",
                info.name, owner, m.sub, m.origin, rendered
            );
            self.notifier.read().enqueue(info.transport, Delivery { client: *owner, payload });
        }
    }

    /// Matches whose notification was dropped because the owning
    /// subscription disappeared between matching and notification (a
    /// publish racing an unsubscribe). Zero in the absence of concurrent
    /// unsubscription.
    pub fn orphaned_matches(&self) -> u64 {
        // ordering: monotone counter snapshot; no paired state.
        self.orphaned_matches.load(Ordering::Relaxed)
    }

    /// True if the broker runs over the sharded matcher backend.
    pub fn is_sharded(&self) -> bool {
        matches!(&self.matcher, MatcherBackend::Sharded(_))
    }

    /// Switches between semantic and syntactic mode ("the application can
    /// run in two different modes", §4). The stage switch is a snapshot
    /// swap inside the matcher, which bumps the front-end epoch — any
    /// batch chunk prepared under the old mode is refused at match time
    /// and republished fresh.
    pub fn set_semantic_mode(&self, semantic: bool) {
        let mut flag = self.semantic.write();
        if *flag == semantic {
            return;
        }
        *flag = semantic;
        let stages = if semantic { *self.semantic_stages.read() } else { StageMask::syntactic() };
        self.matcher.set_stages(stages);
    }

    /// True if the broker currently matches semantically.
    pub fn is_semantic(&self) -> bool {
        *self.semantic.read()
    }

    /// Reconfigures the live matcher (engine, strategy, stages, shard
    /// count, …) between publications — subscriptions survive and are
    /// re-indexed (and re-routed across shards on the sharded backend)
    /// inside one snapshot swap. The broker's semantic flag and restore
    /// mask track the new configuration, and the front-end epoch bump
    /// makes every in-flight prepared chunk fall back to a fresh publish.
    /// The backend kind (single vs. sharded) stays as constructed;
    /// `config.shards` is honored live only by the sharded backend.
    pub fn reconfigure_matcher(&self, config: Config) {
        let mut flag = self.semantic.write();
        let semantic = !config.stages.is_syntactic();
        if semantic {
            *self.semantic_stages.write() = config.stages;
        }
        *flag = semantic;
        self.matcher.reconfigure(config);
    }

    /// Replaces the semantic source (ontology) live — the evolution
    /// scenario the paper defers: new synonyms, taxonomy growth, or
    /// changed mapping functions take effect for the next resolved
    /// snapshot, while in-flight publications finish against the ontology
    /// they started under. Invalidates detached front ends (epoch bump),
    /// exactly like a reconfiguration.
    pub fn set_ontology(&self, source: Arc<dyn SemanticSource>) {
        self.matcher.set_source(source);
    }

    /// The semantic source the matcher is currently resolving against.
    /// Combined with [`SemanticSource::as_ontology`] this is the read
    /// side of live evolution: clone the running ontology, apply a
    /// delta, hand the fork back to [`Broker::set_ontology`].
    pub fn semantic_source(&self) -> Arc<dyn SemanticSource> {
        self.matcher.source()
    }

    /// Matcher counters (aggregated across shards for the sharded backend).
    pub fn matcher_stats(&self) -> MatcherStats {
        self.matcher.stats()
    }

    /// Notification counters: retired incarnations folded with a live
    /// snapshot of the current engine. Serialized against
    /// [`Broker::restart_notifier`] so the two reads (retired total +
    /// live engine) form a consistent cut — a concurrent restart can
    /// never move counters between them and make the sum dip.
    pub fn delivery_stats(&self) -> DeliveryStats {
        let _restart = self.restart.lock();
        let mut stats = self.retired_delivery.lock().clone();
        stats.merge(&self.notifier.read().stats());
        stats
    }

    /// Restarts the notification engine mid-stream: the current engine is
    /// shut down (draining its queue and flushing batchers), its final
    /// counters are folded into the retired total, and a fresh engine is
    /// started from the transport factory. Restarts are serialized on a
    /// dedicated lock — the epoch draw, the engine swap, and the
    /// retired-counter merge happen atomically with respect to other
    /// restarts, so racing restarts can neither reuse an epoch nor lose a
    /// retired engine's `DeliveryStats` from the merge. Publishers only
    /// contend with the brief pointer swap (the drain runs outside the
    /// notifier lock); notifications enqueued before the restart are
    /// never lost — shutdown drains. Returns the retired engine's final
    /// stats.
    pub fn restart_notifier(&self) -> DeliveryStats {
        let _restart = self.restart.lock();
        // ordering: read and write of the epoch are serialized by the
        // restart mutex; the atomic only lets `notifier_restarts()`
        // observe it without the lock.
        let epoch = self.notifier_restarts.load(Ordering::Relaxed) + 1;
        let fresh = NotificationEngine::start((self.transport_factory)(epoch));
        // The notifier write lock covers only the swap; enqueues stall
        // for a pointer exchange, not the drain.
        let old = std::mem::replace(&mut *self.notifier.write(), fresh);
        // ordering: serialized by the restart mutex, as above.
        self.notifier_restarts.store(epoch, Ordering::Relaxed);
        let final_stats = old.shutdown();
        self.retired_delivery.lock().merge(&final_stats);
        final_stats
    }

    /// Number of notification-engine restarts performed.
    pub fn notifier_restarts(&self) -> u64 {
        // ordering: monotone epoch snapshot; writers are serialized by
        // the restart mutex.
        self.notifier_restarts.load(Ordering::Relaxed)
    }

    /// Receiving-end inbox of a simulated transport.
    pub fn inbox(&self, kind: TransportKind) -> Option<Inbox> {
        self.inboxes.get(&kind).cloned()
    }

    /// Stops the notification engine (draining the queue) and returns the
    /// final delivery statistics across every engine incarnation.
    pub fn shutdown(self) -> DeliveryStats {
        let mut stats = self.retired_delivery.into_inner();
        stats.merge(&self.notifier.into_inner().shutdown());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_types::{Interner, Operator, SubscriptionBuilder};
    use stopss_workload::JobFinderDomain;

    fn jobs_broker(config: BrokerConfig) -> (Broker, SharedInterner) {
        let mut interner = Interner::new();
        let domain = JobFinderDomain::build(&mut interner);
        let shared = SharedInterner::from_interner(interner);
        let broker = Broker::new(config, Arc::new(domain.ontology), shared.clone());
        (broker, shared)
    }

    fn recruiter_predicates(interner: &SharedInterner) -> Vec<Predicate> {
        let mut snapshot = interner.snapshot();
        let sub = SubscriptionBuilder::new(&mut snapshot)
            .term_eq("university", "uoft")
            .pred("professional experience", Operator::Ge, 4i64)
            .build(SubId(0));
        for (_, s) in snapshot.iter() {
            interner.intern(s);
        }
        sub.predicates().to_vec()
    }

    fn candidate_event(interner: &SharedInterner) -> Event {
        let mut snapshot = interner.snapshot();
        let event = stopss_types::EventBuilder::new(&mut snapshot)
            .term("school", "uoft")
            .pair("graduation year", 1993i64)
            .build();
        for (_, s) in snapshot.iter() {
            interner.intern(s);
        }
        event
    }

    #[test]
    fn end_to_end_match_delivers_notification() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        let sub = broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        let matches = broker.publish(&candidate_event(&interner));
        assert_eq!(matches, 1);
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 1);
        assert!(sub.0 > 0);
    }

    #[test]
    fn notification_payload_names_the_match() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        let sub = broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        broker.publish(&candidate_event(&interner));
        let inbox = broker.inbox(TransportKind::Tcp).unwrap();
        let _ = broker.shutdown();
        let messages = inbox.lock();
        assert_eq!(messages.len(), 1);
        let payload = &messages[0].payload;
        assert!(payload.contains("acme"), "{payload}");
        assert!(payload.contains(&sub.to_string()), "{payload}");
        assert!(payload.contains("mapping"), "the paper flow matches via mapping: {payload}");
        assert!(payload.contains("(school, uoft)"), "{payload}");
    }

    #[test]
    fn syntactic_mode_suppresses_semantic_matches() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        assert!(broker.is_semantic());
        broker.set_semantic_mode(false);
        assert!(!broker.is_semantic());
        assert_eq!(broker.publish(&candidate_event(&interner)), 0);
        broker.set_semantic_mode(true);
        assert_eq!(broker.publish(&candidate_event(&interner)), 1);
    }

    #[test]
    fn ownership_is_enforced() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let alice = broker.register_client("alice", TransportKind::Tcp);
        let bob = broker.register_client("bob", TransportKind::Udp);
        let sub = broker.subscribe(alice, recruiter_predicates(&interner)).unwrap();
        assert_eq!(broker.unsubscribe(bob, sub), Err(BrokerError::NotOwner { client: bob, sub }));
        assert_eq!(broker.unsubscribe(alice, sub), Ok(true));
        assert_eq!(broker.unsubscribe(alice, sub), Ok(false), "already gone");
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn unknown_client_cannot_subscribe() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let err = broker.subscribe(ClientId(999), recruiter_predicates(&interner)).unwrap_err();
        assert_eq!(err, BrokerError::UnknownClient(ClientId(999)));
    }

    #[test]
    fn notifications_route_per_client_transport() {
        let (broker, interner) = jobs_broker(BrokerConfig { udp_loss: 0.0, ..Default::default() });
        let tcp_client = broker.register_client("tcp-co", TransportKind::Tcp);
        let udp_client = broker.register_client("udp-co", TransportKind::Udp);
        let preds = recruiter_predicates(&interner);
        broker.subscribe(tcp_client, preds.clone()).unwrap();
        broker.subscribe(udp_client, preds).unwrap();
        assert_eq!(broker.publish(&candidate_event(&interner)), 2);
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 1);
        assert_eq!(stats.get(TransportKind::Udp).delivered, 1);
    }

    #[test]
    fn sharded_broker_matches_and_delivers_like_single() {
        let sharded_config =
            BrokerConfig { matcher: Config::default().with_shards(4), ..BrokerConfig::default() };
        let (broker, interner) = jobs_broker(sharded_config);
        assert!(broker.is_sharded());
        let company = broker.register_client("acme", TransportKind::Tcp);
        broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        assert_eq!(broker.publish(&candidate_event(&interner)), 1);
        assert_eq!(broker.matcher_stats().published, 1);
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 1);

        let (single, _) = jobs_broker(BrokerConfig::default());
        assert!(!single.is_sharded());
        let _ = single.shutdown();
    }

    #[test]
    fn publish_batch_notifies_per_event() {
        for shards in [1usize, 4] {
            let config = BrokerConfig {
                matcher: Config::default().with_shards(shards),
                ..BrokerConfig::default()
            };
            let (broker, interner) = jobs_broker(config);
            let company = broker.register_client("acme", TransportKind::Tcp);
            broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
            let events = vec![candidate_event(&interner); 3];
            assert_eq!(broker.publish_batch(&events), 3, "shards={shards}");
            assert_eq!(broker.matcher_stats().published, 3, "shards={shards}");
            let stats = broker.shutdown();
            assert_eq!(stats.get(TransportKind::Tcp).delivered, 3, "shards={shards}");
        }
    }

    #[test]
    fn sharded_broker_honors_mode_switch_and_ownership() {
        let config =
            BrokerConfig { matcher: Config::default().with_shards(8), ..BrokerConfig::default() };
        let (broker, interner) = jobs_broker(config);
        let alice = broker.register_client("alice", TransportKind::Tcp);
        let sub = broker.subscribe(alice, recruiter_predicates(&interner)).unwrap();
        broker.set_semantic_mode(false);
        assert_eq!(broker.publish(&candidate_event(&interner)), 0);
        broker.set_semantic_mode(true);
        assert_eq!(broker.publish(&candidate_event(&interner)), 1);
        assert_eq!(broker.unsubscribe(alice, sub), Ok(true));
        assert_eq!(broker.subscription_count(), 0);
    }

    /// The stale path, forced deterministically: snapshot the front-end,
    /// prepare artifacts, flip `set_semantic_mode` (which swaps in a new
    /// matcher snapshot with a bumped front-end epoch), then run the match
    /// stage with the stale handle's token. The guard must discard the
    /// semantically-prepared artifacts and republish from the raw events —
    /// equal to a fresh publish under the new configuration — rather than
    /// match stale closures.
    #[test]
    fn stale_epoch_falls_back_to_fresh_publish() {
        for shards in [1usize, 4] {
            let config = BrokerConfig {
                matcher: Config::default().with_shards(shards),
                ..BrokerConfig::default()
            };
            let (broker, interner) = jobs_broker(config);
            let company = broker.register_client("acme", TransportKind::Tcp);
            broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
            let events = vec![candidate_event(&interner); 3];

            let (frontend, epoch) = broker.frontend_snapshot();
            let prepared = frontend.prepare_batch(&events);
            // The artifacts would match semantically (the closure carries
            // the synonym-resolved pairs and the mapping-produced
            // experience); a broken guard would report 3 matches.
            broker.set_semantic_mode(false);
            let stale = broker.match_and_notify(&events, &prepared, epoch);
            assert_eq!(
                stale, 0,
                "shards={shards}: stale semantic artifacts must be republished \
                 under the syntactic configuration"
            );
            assert_eq!(stale, broker.publish_batch(&events), "fallback equals a fresh publish");

            // Restore semantic mode: a fresh snapshot + matching epoch
            // takes the prepared-artifact path and finds the matches.
            broker.set_semantic_mode(true);
            let (frontend, epoch) = broker.frontend_snapshot();
            let prepared = frontend.prepare_batch(&events);
            let fresh = broker.match_and_notify(&events, &prepared, epoch);
            assert_eq!(fresh, 3, "shards={shards}");
            assert_eq!(fresh, broker.publish_batch(&events), "prepared path equals fresh publish");
            let _ = broker.shutdown();
        }
    }

    /// The reconfigure-path regression for the old `matcher_epoch` bug:
    /// only `set_semantic_mode` bumped the broker-side epoch, so a
    /// reconfiguration (or ontology swap) reaching the matcher left
    /// detached front ends stale without tripping the guard — prepared
    /// semantic artifacts would match against the new configuration. With
    /// the epoch inside the matcher snapshot, *every* invalidating
    /// mutation bumps it; the stale chunk must fall back to a fresh
    /// publish (0 matches under the syntactic config), not report 3.
    #[test]
    fn stale_reconfigure_falls_back_to_fresh_publish() {
        for shards in [1usize, 4] {
            let config = BrokerConfig {
                matcher: Config::default().with_shards(shards),
                ..BrokerConfig::default()
            };
            let (broker, interner) = jobs_broker(config);
            let company = broker.register_client("acme", TransportKind::Tcp);
            broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
            let events = vec![candidate_event(&interner); 3];

            let (frontend, epoch) = broker.frontend_snapshot();
            let prepared = frontend.prepare_batch(&events);
            // Reconfigure — not set_semantic_mode — to the syntactic
            // stage mask. Pre-fix, this path never bumped the epoch.
            broker.reconfigure_matcher(
                Config::default().with_shards(shards).with_stages(StageMask::syntactic()),
            );
            assert!(!broker.is_semantic(), "shards={shards}: flag tracks the new config");
            let stale = broker.match_and_notify(&events, &prepared, epoch);
            assert_eq!(
                stale, 0,
                "shards={shards}: artifacts prepared before the reconfiguration \
                 must be refused and republished under the new configuration"
            );

            // Reconfigure back to semantic: the restore mask follows, and
            // a fresh handle takes the prepared path again.
            broker.reconfigure_matcher(Config::default().with_shards(shards));
            assert!(broker.is_semantic(), "shards={shards}");
            let (frontend, epoch) = broker.frontend_snapshot();
            let prepared = frontend.prepare_batch(&events);
            assert_eq!(broker.match_and_notify(&events, &prepared, epoch), 3, "shards={shards}");
            let _ = broker.shutdown();
        }
    }

    /// A live ontology edit between publications — the evolution scenario
    /// the paper defers. A new synonym installed via `set_ontology` must
    /// (a) change matching for the next publication and (b) invalidate
    /// any front-end handle detached before the edit.
    #[test]
    fn live_ontology_edit_changes_matching_between_publications() {
        let mut interner = Interner::new();
        let domain = JobFinderDomain::build(&mut interner);
        let academy = interner.intern("academy");
        let university = interner.intern("university");
        let shared = SharedInterner::from_interner(interner);
        let base = domain.ontology;
        let broker = Broker::new(BrokerConfig::default(), Arc::new(base.clone()), shared.clone());
        let company = broker.register_client("acme", TransportKind::Tcp);
        broker.subscribe(company, recruiter_predicates(&shared)).unwrap();

        let mut snapshot = shared.snapshot();
        let event = stopss_types::EventBuilder::new(&mut snapshot)
            .term("academy", "uoft")
            .pair("graduation year", 1993i64)
            .build();
        for (_, s) in snapshot.iter() {
            shared.intern(s);
        }
        assert_eq!(broker.publish(&event), 0, "'academy' is not a known synonym yet");

        let (frontend, epoch) = broker.frontend_snapshot();
        let prepared = frontend.prepare_batch(std::slice::from_ref(&event));

        let mut evolved = base;
        shared.with(|i| evolved.synonyms.add_synonym(university, academy, i)).unwrap();
        broker.set_ontology(Arc::new(evolved));

        assert_eq!(broker.publish(&event), 1, "the live edit matches the next publication");
        // The pre-edit handle is stale: its artifacts (no closure through
        // 'academy') must be discarded, and the fallback republish under
        // the evolved ontology finds the match.
        assert_eq!(
            broker.match_and_notify(std::slice::from_ref(&event), &prepared, epoch),
            1,
            "stale pre-edit artifacts fall back to the evolved ontology"
        );
        let _ = broker.shutdown();
    }

    /// Sharded backend: a live reshard through the broker preserves the
    /// subscription set and keeps matching.
    #[test]
    fn reconfigure_matcher_reshards_and_preserves_subscriptions() {
        let config =
            BrokerConfig { matcher: Config::default().with_shards(4), ..BrokerConfig::default() };
        let (broker, interner) = jobs_broker(config);
        let company = broker.register_client("acme", TransportKind::Tcp);
        broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        assert_eq!(broker.publish(&candidate_event(&interner)), 1);
        broker.reconfigure_matcher(Config::default().with_shards(2));
        assert!(broker.is_sharded(), "backend kind is fixed at construction");
        assert_eq!(broker.subscription_count(), 1, "subscriptions survive the reshard");
        assert_eq!(broker.publish(&candidate_event(&interner)), 1, "and still match");
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 2);
    }

    /// A match whose owner entry vanished between matching and
    /// notification is counted, not silently skipped.
    #[test]
    fn orphaned_matches_are_counted_not_skipped() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        let sub = broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        let event = candidate_event(&interner);
        // Match while the subscription is live (not yet notified)…
        let matches = broker.matcher.publish(&event);
        assert_eq!(matches.len(), 1);
        // …then lose the owner entry before notification, as a concurrent
        // unsubscribe interleaving would.
        assert_eq!(broker.unsubscribe(company, sub), Ok(true));
        assert_eq!(broker.orphaned_matches(), 0);
        broker.notify_matches(&event, &matches);
        assert_eq!(broker.orphaned_matches(), 1, "the dropped notification is accounted");
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 0, "nothing was enqueued");
    }

    /// Unsubscribe removes from the matcher *before* the owner table, so
    /// no publish serialized after the matcher removal can produce an
    /// unroutable match.
    #[test]
    fn unsubscribe_then_publish_finds_nothing_and_orphans_nothing() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        let sub = broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        assert_eq!(broker.unsubscribe(company, sub), Ok(true));
        assert_eq!(broker.publish(&candidate_event(&interner)), 0);
        assert_eq!(broker.orphaned_matches(), 0);
        let _ = broker.shutdown();
    }

    /// A batch spanning several pipeline chunks notifies per event exactly
    /// like per-event publishing.
    #[test]
    fn pipelined_batch_notifies_every_chunk() {
        for shards in [1usize, 4] {
            // `with_parallelism(shards)` forces the stage overlap on the
            // sharded config even on single-core hosts; shards = 1 keeps
            // covering the barrier fallback.
            let config = BrokerConfig {
                matcher: Config::default().with_shards(shards).with_parallelism(shards),
                ..BrokerConfig::default()
            };
            let (broker, interner) = jobs_broker(config);
            let company = broker.register_client("acme", TransportKind::Tcp);
            broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
            let n = 2 * PIPELINE_CHUNK + 7;
            let events = vec![candidate_event(&interner); n];
            assert_eq!(broker.publish_batch(&events), n, "shards={shards}");
            assert_eq!(broker.matcher_stats().published, n as u64, "shards={shards}");
            let stats = broker.shutdown();
            assert_eq!(stats.get(TransportKind::Tcp).delivered, n as u64, "shards={shards}");
        }
    }

    /// Counters survive a notification-engine restart: deliveries before
    /// and after the swap are both visible in `delivery_stats`/`shutdown`,
    /// and the inbox keeps accumulating across incarnations.
    #[test]
    fn restart_notifier_carries_accounting_across_incarnations() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        let event = candidate_event(&interner);
        assert_eq!(broker.publish(&event), 1);
        let retired = broker.restart_notifier();
        assert_eq!(retired.get(TransportKind::Tcp).delivered, 1, "drained before the swap");
        assert_eq!(broker.notifier_restarts(), 1);
        assert_eq!(broker.publish(&event), 1);
        let inbox = broker.inbox(TransportKind::Tcp).unwrap();
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 2, "both incarnations counted");
        assert_eq!(inbox.lock().len(), 2, "inbox survives the restart");
    }

    /// The racing-restart regression: pre-fix, `restart_notifier` held
    /// the notifier write lock across the drain and took the retired lock
    /// inside it, while `delivery_stats` took the two locks in the
    /// opposite order — racing them could deadlock, and a stats snapshot
    /// taken between the engine swap and the retired-counter merge
    /// dropped the retired engine's deliveries (a transient undercount).
    /// Post-fix both serialize on the restart lock: totals observed by a
    /// concurrent poller are monotone, and the final accounting conserves
    /// `matches == delivered + lost + rate-dropped + orphaned`.
    #[test]
    fn racing_restarts_conserve_delivery_accounting() {
        let (broker, interner) = jobs_broker(BrokerConfig { udp_loss: 0.0, ..Default::default() });
        let company = broker.register_client("acme", TransportKind::Tcp);
        broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        let broker = Arc::new(broker);
        let event = candidate_event(&interner);

        let publishers: Vec<_> = (0..2)
            .map(|_| {
                let broker = broker.clone();
                let event = event.clone();
                std::thread::spawn(move || (0..50).map(|_| broker.publish(&event)).sum::<usize>())
            })
            .collect();
        let restarters: Vec<_> = (0..2)
            .map(|_| {
                let broker = broker.clone();
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        broker.restart_notifier();
                    }
                })
            })
            .collect();
        let poller = {
            let broker = broker.clone();
            std::thread::spawn(move || {
                let mut prev = 0u64;
                for _ in 0..200 {
                    let seen = broker.delivery_stats().total_attempted();
                    assert!(
                        seen >= prev,
                        "attempted deliveries went backwards ({prev} -> {seen}): \
                         a restart lost a retired engine's counters"
                    );
                    prev = seen;
                }
            })
        };

        let matches: usize = publishers.into_iter().map(|h| h.join().unwrap()).sum();
        for h in restarters {
            h.join().unwrap();
        }
        poller.join().unwrap();
        assert_eq!(matches, 100);
        assert_eq!(broker.notifier_restarts(), 20, "every racing restart got its own epoch");

        let orphaned = broker.orphaned_matches();
        let broker = Arc::try_unwrap(broker).ok().expect("sole owner");
        let stats = broker.shutdown();
        assert_eq!(
            stats.total_delivered() + stats.total_failures() + orphaned,
            matches as u64,
            "every match is delivered, failed, or orphaned — none lost to a restart race"
        );
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 100, "TCP is lossless here");
    }

    /// Dropping a client leaves its subscriptions matching, and their
    /// notifications land in the orphaned accounting instead of vanishing.
    #[test]
    fn unregistered_client_matches_become_orphans() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        assert!(broker.unregister_client(company));
        assert!(!broker.unregister_client(company), "already gone");
        assert_eq!(broker.publish(&candidate_event(&interner)), 1, "subscription stays live");
        assert_eq!(broker.orphaned_matches(), 1);
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 0);
    }

    #[test]
    fn concurrent_publishers_are_serialized_safely() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        let broker = Arc::new(broker);
        let event = candidate_event(&interner);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let broker = broker.clone();
                let event = event.clone();
                std::thread::spawn(move || (0..25).map(|_| broker.publish(&event)).sum::<usize>())
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
        assert_eq!(broker.matcher_stats().published, 100);
        let broker = Arc::try_unwrap(broker).ok().expect("sole owner");
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 100);
    }

    /// Control ops run concurrently with publishers — no broker-side
    /// matcher lock exists to stall them. Publishers race a
    /// subscribe/unsubscribe churn thread; every match produced must be
    /// either delivered or orphaned — never silently lost.
    #[test]
    fn control_ops_run_concurrently_with_publishers() {
        for shards in [1usize, 4] {
            let config = BrokerConfig {
                matcher: Config::default().with_shards(shards),
                udp_loss: 0.0,
                ..BrokerConfig::default()
            };
            let (broker, interner) = jobs_broker(config);
            let anchor_client = broker.register_client("anchor", TransportKind::Tcp);
            broker.subscribe(anchor_client, recruiter_predicates(&interner)).unwrap();
            let broker = Arc::new(broker);
            let event = candidate_event(&interner);

            let publishers: Vec<_> = (0..2)
                .map(|_| {
                    let broker = broker.clone();
                    let event = event.clone();
                    std::thread::spawn(move || {
                        (0..40).map(|_| broker.publish(&event)).sum::<usize>()
                    })
                })
                .collect();
            let churner = {
                let broker = broker.clone();
                let preds = recruiter_predicates(&interner);
                std::thread::spawn(move || {
                    let client = broker.register_client("churn", TransportKind::Tcp);
                    for _ in 0..20 {
                        let sub = broker.subscribe(client, preds.clone()).unwrap();
                        assert_eq!(broker.unsubscribe(client, sub), Ok(true));
                    }
                })
            };

            let matches: usize = publishers.into_iter().map(|h| h.join().unwrap()).sum();
            churner.join().unwrap();
            assert!(matches >= 80, "shards={shards}: the anchor matches every publish");
            let orphaned = broker.orphaned_matches();
            let broker = Arc::try_unwrap(broker).ok().expect("sole owner");
            let stats = broker.shutdown();
            assert_eq!(
                stats.total_delivered() + stats.total_failures() + orphaned,
                matches as u64,
                "shards={shards}: zero orphaned-match undercount"
            );
        }
    }
}
