//! The broker: S-ToPSS wired to clients and the notification engine.
//!
//! This is the runtime of Figure 2: subscriptions and publications arrive
//! (from the demo front-end or the workload generator), the semantic
//! matcher decides who is interested, and the notification engine delivers
//! over each client's preferred transport. The matcher sits behind a
//! mutex — matching engines keep interior scratch state — while client and
//! ownership tables take read-mostly locks.
//!
//! When [`BrokerConfig::matcher`] asks for more than one shard, the broker
//! runs over [`stopss_core::ShardedSToPSS`] instead of the single-threaded
//! matcher, with byte-identical match sets and notifications.
//!
//! [`Broker::publish_batch`] runs the two-stage pipeline: stage 1 — the
//! event-side semantic pass — needs only the immutable
//! configuration/ontology/interner, so the broker snapshots a
//! [`stopss_core::SemanticFrontEnd`] handle and prepares the whole batch
//! *outside* the matcher mutex (the sharded front-end additionally chunks
//! large batches across its scoped worker pool). Stage 2 — engine match +
//! verify on the precomputed artifacts — is the only part that holds the
//! mutex. A configuration epoch guards the seam: if `set_semantic_mode`
//! switched stages while the batch was being prepared, the stale
//! artifacts are discarded and the batch is republished from the raw
//! events under the lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use stopss_core::{
    Config, Match, MatcherStats, PreparedEvent, SToPSS, SemanticFrontEnd, ShardedSToPSS, StageMask,
    Tolerance,
};
use stopss_ontology::SemanticSource;
use stopss_types::{Event, FxHashMap, Predicate, SharedInterner, SubId, Subscription};

use crate::client::{ClientId, ClientInfo};
use crate::notify::{DeliveryStats, NotificationEngine};
use crate::transport::{
    Delivery, Inbox, SmsSim, SmtpSim, TcpSim, Transport, TransportKind, UdpSim,
};

/// Broker construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct BrokerConfig {
    /// Matcher configuration (engine, strategy, stages, …).
    pub matcher: Config,
    /// UDP loss probability for the simulated datagram transport.
    pub udp_loss: f64,
    /// SMS messages allowed per rate window.
    pub sms_budget: u32,
    /// Seed for transport randomness.
    pub seed: u64,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig { matcher: Config::default(), udp_loss: 0.05, sms_budget: 64, seed: 2003 }
    }
}

/// Broker operation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BrokerError {
    /// The client id is not registered.
    UnknownClient(ClientId),
    /// The subscription exists but belongs to someone else.
    NotOwner {
        /// The caller.
        client: ClientId,
        /// The contested subscription.
        sub: SubId,
    },
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::UnknownClient(c) => write!(f, "unknown client {c}"),
            BrokerError::NotOwner { client, sub } => {
                write!(f, "{client} does not own {sub}")
            }
        }
    }
}

impl std::error::Error for BrokerError {}

/// The matcher the broker runs over: single-threaded or sharded,
/// selected by [`Config::shards`]. Both produce identical match sets;
/// the enum keeps the broker's lock-around-the-matcher structure intact.
enum MatcherBackend {
    /// One monolithic engine (the seed architecture).
    Single(SToPSS),
    /// Hash-sharded engines with a scoped-thread worker pool.
    Sharded(ShardedSToPSS),
}

impl MatcherBackend {
    fn build(config: Config, source: Arc<dyn SemanticSource>, interner: SharedInterner) -> Self {
        if config.effective_shards() > 1 {
            MatcherBackend::Sharded(ShardedSToPSS::new(config, source, interner))
        } else {
            MatcherBackend::Single(SToPSS::new(config, source, interner))
        }
    }

    fn len(&self) -> usize {
        match self {
            MatcherBackend::Single(m) => m.len(),
            MatcherBackend::Sharded(m) => m.len(),
        }
    }

    fn stats(&self) -> MatcherStats {
        match self {
            MatcherBackend::Single(m) => *m.stats(),
            MatcherBackend::Sharded(m) => m.stats(),
        }
    }

    fn subscribe_with(&mut self, sub: Subscription, tolerance: Option<Tolerance>) {
        match (self, tolerance) {
            (MatcherBackend::Single(m), Some(t)) => m.subscribe_with_tolerance(sub, t),
            (MatcherBackend::Single(m), None) => m.subscribe(sub),
            (MatcherBackend::Sharded(m), Some(t)) => m.subscribe_with_tolerance(sub, t),
            (MatcherBackend::Sharded(m), None) => m.subscribe(sub),
        }
    }

    fn unsubscribe(&mut self, id: SubId) -> bool {
        match self {
            MatcherBackend::Single(m) => m.unsubscribe(id),
            MatcherBackend::Sharded(m) => m.unsubscribe(id),
        }
    }

    fn publish(&mut self, event: &Event) -> Vec<Match> {
        match self {
            MatcherBackend::Single(m) => m.publish(event),
            MatcherBackend::Sharded(m) => m.publish(event),
        }
    }

    fn publish_batch(&mut self, events: &[Event]) -> Vec<Vec<Match>> {
        match self {
            MatcherBackend::Single(m) => m.publish_batch(events),
            MatcherBackend::Sharded(m) => m.publish_batch(events),
        }
    }

    /// The event-side semantic front-end handle (config snapshot + shared
    /// ontology/interner), detachable so batches can be prepared outside
    /// the matcher mutex.
    fn frontend(&self) -> SemanticFrontEnd {
        match self {
            MatcherBackend::Single(m) => m.frontend(),
            MatcherBackend::Sharded(m) => m.frontend(),
        }
    }

    /// Publishes precomputed front-end artifacts (the matching stage of
    /// the pipeline). Artifacts must match the current configuration.
    fn publish_prepared_batch(&mut self, prepared: &[PreparedEvent]) -> Vec<Vec<Match>> {
        match self {
            MatcherBackend::Single(m) => {
                prepared.iter().map(|p| m.publish_prepared(p).matches).collect()
            }
            MatcherBackend::Sharded(m) => {
                m.publish_prepared_batch(prepared).into_iter().map(|r| r.matches).collect()
            }
        }
    }

    fn set_stages(&mut self, stages: StageMask) {
        match self {
            MatcherBackend::Single(m) => m.set_stages(stages),
            MatcherBackend::Sharded(m) => m.set_stages(stages),
        }
    }
}

/// The publish/subscribe broker of the demonstration setup.
pub struct Broker {
    matcher: Mutex<MatcherBackend>,
    clients: RwLock<FxHashMap<ClientId, ClientInfo>>,
    sub_owner: RwLock<FxHashMap<SubId, ClientId>>,
    notifier: NotificationEngine,
    inboxes: FxHashMap<TransportKind, Inbox>,
    interner: SharedInterner,
    /// Stage mask used in semantic mode (restored by `set_semantic_mode`).
    semantic_stages: StageMask,
    semantic: RwLock<bool>,
    /// Bumped (under the matcher lock) whenever the matcher's semantic
    /// configuration changes; lets `publish_batch` detect that artifacts
    /// prepared outside the lock went stale mid-flight.
    matcher_epoch: AtomicU64,
    next_client: AtomicU64,
    next_sub: AtomicU64,
}

impl Broker {
    /// Builds a broker with all four simulated transports.
    pub fn new(
        config: BrokerConfig,
        source: Arc<dyn SemanticSource>,
        interner: SharedInterner,
    ) -> Broker {
        let (tcp, tcp_inbox) = TcpSim::new();
        let (udp, udp_inbox) = UdpSim::new(config.udp_loss, config.seed);
        let (smtp, smtp_inbox) = SmtpSim::new();
        let (sms, sms_inbox) = SmsSim::new(config.sms_budget);
        let transports: Vec<Box<dyn Transport>> =
            vec![Box::new(tcp), Box::new(udp), Box::new(smtp), Box::new(sms)];
        let mut inboxes = FxHashMap::default();
        inboxes.insert(TransportKind::Tcp, tcp_inbox);
        inboxes.insert(TransportKind::Udp, udp_inbox);
        inboxes.insert(TransportKind::Smtp, smtp_inbox);
        inboxes.insert(TransportKind::Sms, sms_inbox);

        Broker {
            matcher: Mutex::new(MatcherBackend::build(config.matcher, source, interner.clone())),
            clients: RwLock::new(FxHashMap::default()),
            sub_owner: RwLock::new(FxHashMap::default()),
            notifier: NotificationEngine::start(transports),
            inboxes,
            interner,
            semantic_stages: config.matcher.stages,
            semantic: RwLock::new(!config.matcher.stages.is_syntactic()),
            matcher_epoch: AtomicU64::new(0),
            next_client: AtomicU64::new(1),
            next_sub: AtomicU64::new(1),
        }
    }

    /// The shared interner for building events/subscriptions.
    pub fn interner(&self) -> &SharedInterner {
        &self.interner
    }

    /// Registers a client.
    pub fn register_client(&self, name: impl Into<String>, transport: TransportKind) -> ClientId {
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        self.clients.write().insert(id, ClientInfo { name: name.into(), transport });
        id
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        self.clients.read().len()
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.matcher.lock().len()
    }

    /// Registers a subscription for `client` with the system tolerance.
    pub fn subscribe(
        &self,
        client: ClientId,
        predicates: Vec<Predicate>,
    ) -> Result<SubId, BrokerError> {
        self.subscribe_with_tolerance(client, predicates, None)
    }

    /// Registers a subscription with an optional subscriber tolerance
    /// (the information-loss knob of §3.2).
    pub fn subscribe_with_tolerance(
        &self,
        client: ClientId,
        predicates: Vec<Predicate>,
        tolerance: Option<Tolerance>,
    ) -> Result<SubId, BrokerError> {
        if !self.clients.read().contains_key(&client) {
            return Err(BrokerError::UnknownClient(client));
        }
        let id = SubId(self.next_sub.fetch_add(1, Ordering::Relaxed));
        let sub = Subscription::new(id, predicates);
        self.matcher.lock().subscribe_with(sub, tolerance);
        self.sub_owner.write().insert(id, client);
        Ok(id)
    }

    /// Removes a subscription; only its owner may do so.
    pub fn unsubscribe(&self, client: ClientId, sub: SubId) -> Result<bool, BrokerError> {
        match self.sub_owner.read().get(&sub) {
            Some(owner) if *owner != client => {
                return Err(BrokerError::NotOwner { client, sub });
            }
            None => return Ok(false),
            Some(_) => {}
        }
        self.sub_owner.write().remove(&sub);
        Ok(self.matcher.lock().unsubscribe(sub))
    }

    /// Publishes an event: matches it and enqueues one notification per
    /// matched subscription. Returns the number of matches.
    pub fn publish(&self, event: &Event) -> usize {
        let matches = self.matcher.lock().publish(event);
        self.notify_matches(event, &matches);
        matches.len()
    }

    /// Publishes a batch of events through the two-stage pipeline,
    /// enqueuing notifications exactly as [`Broker::publish`] would per
    /// event. Returns the total number of matches across the batch.
    ///
    /// Stage 1 (the event-side semantic pass) runs *outside* the matcher
    /// mutex on a detached [`SemanticFrontEnd`] handle, so concurrent
    /// subscribes and publishers are blocked only for stage 2 (engine
    /// match + verify on the precomputed artifacts). The artifacts carry
    /// the per-publication tier cache: with provenance on, the
    /// classifier's tier closures are warmed in stage 1 too, so the
    /// under-lock stage pays neither the semantic closure nor the
    /// per-candidate provenance closures. If the semantic mode switched
    /// while the batch was in flight, the stale artifacts are discarded
    /// and the batch is republished under the lock.
    pub fn publish_batch(&self, events: &[Event]) -> usize {
        if events.is_empty() {
            return 0;
        }
        let (frontend, epoch) = {
            let matcher = self.matcher.lock();
            (matcher.frontend(), self.matcher_epoch.load(Ordering::Acquire))
        };
        let prepared = frontend.prepare_batch(events);
        let match_sets = {
            let mut matcher = self.matcher.lock();
            if self.matcher_epoch.load(Ordering::Acquire) == epoch {
                matcher.publish_prepared_batch(&prepared)
            } else {
                // The configuration changed between the snapshot and the
                // match stage: fall back to preparing under the lock.
                matcher.publish_batch(events)
            }
        };
        let mut total = 0;
        for (event, matches) in events.iter().zip(&match_sets) {
            self.notify_matches(event, matches);
            total += matches.len();
        }
        total
    }

    fn notify_matches(&self, event: &Event, matches: &[Match]) {
        if matches.is_empty() {
            return;
        }
        let clients = self.clients.read();
        let owners = self.sub_owner.read();
        let rendered = self.interner.with(|i| format!("event {}", event.display(i)));
        for m in matches {
            let Some(owner) = owners.get(&m.sub) else {
                continue;
            };
            let Some(info) = clients.get(owner) else {
                continue;
            };
            let payload = format!(
                "to {} [{}]: {} matched via {} — {}",
                info.name, owner, m.sub, m.origin, rendered
            );
            self.notifier.enqueue(info.transport, Delivery { client: *owner, payload });
        }
    }

    /// True if the broker runs over the sharded matcher backend.
    pub fn is_sharded(&self) -> bool {
        matches!(&*self.matcher.lock(), MatcherBackend::Sharded(_))
    }

    /// Switches between semantic and syntactic mode ("the application can
    /// run in two different modes", §4).
    pub fn set_semantic_mode(&self, semantic: bool) {
        let mut flag = self.semantic.write();
        if *flag == semantic {
            return;
        }
        *flag = semantic;
        let stages = if semantic { self.semantic_stages } else { StageMask::syntactic() };
        let mut matcher = self.matcher.lock();
        matcher.set_stages(stages);
        // Bumped while still holding the matcher lock, so an in-flight
        // `publish_batch` cannot match stale artifacts against the new
        // configuration without noticing.
        self.matcher_epoch.fetch_add(1, Ordering::Release);
    }

    /// True if the broker currently matches semantically.
    pub fn is_semantic(&self) -> bool {
        *self.semantic.read()
    }

    /// Matcher counters (aggregated across shards for the sharded backend).
    pub fn matcher_stats(&self) -> MatcherStats {
        self.matcher.lock().stats()
    }

    /// Notification counters (live snapshot).
    pub fn delivery_stats(&self) -> DeliveryStats {
        self.notifier.stats()
    }

    /// Receiving-end inbox of a simulated transport.
    pub fn inbox(&self, kind: TransportKind) -> Option<Inbox> {
        self.inboxes.get(&kind).cloned()
    }

    /// Stops the notification engine (draining the queue) and returns the
    /// final delivery statistics.
    pub fn shutdown(self) -> DeliveryStats {
        self.notifier.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_types::{Interner, Operator, SubscriptionBuilder};
    use stopss_workload::JobFinderDomain;

    fn jobs_broker(config: BrokerConfig) -> (Broker, SharedInterner) {
        let mut interner = Interner::new();
        let domain = JobFinderDomain::build(&mut interner);
        let shared = SharedInterner::from_interner(interner);
        let broker = Broker::new(config, Arc::new(domain.ontology), shared.clone());
        (broker, shared)
    }

    fn recruiter_predicates(interner: &SharedInterner) -> Vec<Predicate> {
        let mut snapshot = interner.snapshot();
        let sub = SubscriptionBuilder::new(&mut snapshot)
            .term_eq("university", "uoft")
            .pred("professional experience", Operator::Ge, 4i64)
            .build(SubId(0));
        for (_, s) in snapshot.iter() {
            interner.intern(s);
        }
        sub.predicates().to_vec()
    }

    fn candidate_event(interner: &SharedInterner) -> Event {
        let mut snapshot = interner.snapshot();
        let event = stopss_types::EventBuilder::new(&mut snapshot)
            .term("school", "uoft")
            .pair("graduation year", 1993i64)
            .build();
        for (_, s) in snapshot.iter() {
            interner.intern(s);
        }
        event
    }

    #[test]
    fn end_to_end_match_delivers_notification() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        let sub = broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        let matches = broker.publish(&candidate_event(&interner));
        assert_eq!(matches, 1);
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 1);
        assert!(sub.0 > 0);
    }

    #[test]
    fn notification_payload_names_the_match() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        let sub = broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        broker.publish(&candidate_event(&interner));
        let inbox = broker.inbox(TransportKind::Tcp).unwrap();
        let _ = broker.shutdown();
        let messages = inbox.lock();
        assert_eq!(messages.len(), 1);
        let payload = &messages[0].payload;
        assert!(payload.contains("acme"), "{payload}");
        assert!(payload.contains(&sub.to_string()), "{payload}");
        assert!(payload.contains("mapping"), "the paper flow matches via mapping: {payload}");
        assert!(payload.contains("(school, uoft)"), "{payload}");
    }

    #[test]
    fn syntactic_mode_suppresses_semantic_matches() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        assert!(broker.is_semantic());
        broker.set_semantic_mode(false);
        assert!(!broker.is_semantic());
        assert_eq!(broker.publish(&candidate_event(&interner)), 0);
        broker.set_semantic_mode(true);
        assert_eq!(broker.publish(&candidate_event(&interner)), 1);
    }

    #[test]
    fn ownership_is_enforced() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let alice = broker.register_client("alice", TransportKind::Tcp);
        let bob = broker.register_client("bob", TransportKind::Udp);
        let sub = broker.subscribe(alice, recruiter_predicates(&interner)).unwrap();
        assert_eq!(broker.unsubscribe(bob, sub), Err(BrokerError::NotOwner { client: bob, sub }));
        assert_eq!(broker.unsubscribe(alice, sub), Ok(true));
        assert_eq!(broker.unsubscribe(alice, sub), Ok(false), "already gone");
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn unknown_client_cannot_subscribe() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let err = broker.subscribe(ClientId(999), recruiter_predicates(&interner)).unwrap_err();
        assert_eq!(err, BrokerError::UnknownClient(ClientId(999)));
    }

    #[test]
    fn notifications_route_per_client_transport() {
        let (broker, interner) = jobs_broker(BrokerConfig { udp_loss: 0.0, ..Default::default() });
        let tcp_client = broker.register_client("tcp-co", TransportKind::Tcp);
        let udp_client = broker.register_client("udp-co", TransportKind::Udp);
        let preds = recruiter_predicates(&interner);
        broker.subscribe(tcp_client, preds.clone()).unwrap();
        broker.subscribe(udp_client, preds).unwrap();
        assert_eq!(broker.publish(&candidate_event(&interner)), 2);
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 1);
        assert_eq!(stats.get(TransportKind::Udp).delivered, 1);
    }

    #[test]
    fn sharded_broker_matches_and_delivers_like_single() {
        let sharded_config =
            BrokerConfig { matcher: Config::default().with_shards(4), ..BrokerConfig::default() };
        let (broker, interner) = jobs_broker(sharded_config);
        assert!(broker.is_sharded());
        let company = broker.register_client("acme", TransportKind::Tcp);
        broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        assert_eq!(broker.publish(&candidate_event(&interner)), 1);
        assert_eq!(broker.matcher_stats().published, 1);
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 1);

        let (single, _) = jobs_broker(BrokerConfig::default());
        assert!(!single.is_sharded());
        let _ = single.shutdown();
    }

    #[test]
    fn publish_batch_notifies_per_event() {
        for shards in [1usize, 4] {
            let config = BrokerConfig {
                matcher: Config::default().with_shards(shards),
                ..BrokerConfig::default()
            };
            let (broker, interner) = jobs_broker(config);
            let company = broker.register_client("acme", TransportKind::Tcp);
            broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
            let events = vec![candidate_event(&interner); 3];
            assert_eq!(broker.publish_batch(&events), 3, "shards={shards}");
            assert_eq!(broker.matcher_stats().published, 3, "shards={shards}");
            let stats = broker.shutdown();
            assert_eq!(stats.get(TransportKind::Tcp).delivered, 3, "shards={shards}");
        }
    }

    #[test]
    fn sharded_broker_honors_mode_switch_and_ownership() {
        let config =
            BrokerConfig { matcher: Config::default().with_shards(8), ..BrokerConfig::default() };
        let (broker, interner) = jobs_broker(config);
        let alice = broker.register_client("alice", TransportKind::Tcp);
        let sub = broker.subscribe(alice, recruiter_predicates(&interner)).unwrap();
        broker.set_semantic_mode(false);
        assert_eq!(broker.publish(&candidate_event(&interner)), 0);
        broker.set_semantic_mode(true);
        assert_eq!(broker.publish(&candidate_event(&interner)), 1);
        assert_eq!(broker.unsubscribe(alice, sub), Ok(true));
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn concurrent_publishers_are_serialized_safely() {
        let (broker, interner) = jobs_broker(BrokerConfig::default());
        let company = broker.register_client("acme", TransportKind::Tcp);
        broker.subscribe(company, recruiter_predicates(&interner)).unwrap();
        let broker = Arc::new(broker);
        let event = candidate_event(&interner);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let broker = broker.clone();
                let event = event.clone();
                std::thread::spawn(move || (0..25).map(|_| broker.publish(&event)).sum::<usize>())
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
        assert_eq!(broker.matcher_stats().published, 100);
        let broker = Arc::try_unwrap(broker).ok().expect("sole owner");
        let stats = broker.shutdown();
        assert_eq!(stats.get(TransportKind::Tcp).delivered, 100);
    }
}
