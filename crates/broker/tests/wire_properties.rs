//! Property tests for the wire codec: arbitrary messages round-trip,
//! arbitrary byte soup never panics the decoder, and framing reassembles
//! any chunking of the stream.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use proptest::prelude::*;

use stopss_broker::ClientId;
use stopss_broker::{
    decode_client, decode_server, encode_client, encode_server, try_read_frame,
    try_read_frame_bounded, write_frame, ClientMessage, ServerMessage, TransportKind,
    WirePredicate, WireValue,
};
use stopss_types::{Operator, SubId};

fn arb_wire_value() -> impl Strategy<Value = WireValue> {
    prop_oneof![
        any::<i64>().prop_map(WireValue::Int),
        any::<f64>().prop_map(WireValue::Float),
        "[a-z ]{0,12}".prop_map(WireValue::Term),
        any::<bool>().prop_map(WireValue::Bool),
    ]
}

fn arb_operator() -> impl Strategy<Value = Operator> {
    (0usize..Operator::ALL.len()).prop_map(|k| Operator::ALL[k])
}

fn arb_transport() -> impl Strategy<Value = TransportKind> {
    (0usize..TransportKind::ALL.len()).prop_map(|k| TransportKind::ALL[k])
}

fn arb_predicate() -> impl Strategy<Value = WirePredicate> {
    ("[a-z ]{1,10}", arb_operator(), arb_wire_value()).prop_map(|(attr, op, value)| WirePredicate {
        attr,
        op,
        value,
    })
}

fn arb_client_message() -> impl Strategy<Value = ClientMessage> {
    prop_oneof![
        ("[a-zA-Z0-9 ]{0,20}", arb_transport())
            .prop_map(|(name, transport)| ClientMessage::Register { name, transport }),
        (any::<u64>(), proptest::collection::vec(arb_predicate(), 0..6)).prop_map(
            |(c, predicates)| ClientMessage::Subscribe { client: ClientId(c), predicates }
        ),
        (any::<u64>(), any::<u64>())
            .prop_map(|(c, s)| ClientMessage::Unsubscribe { client: ClientId(c), sub: SubId(s) }),
        (any::<u64>(), proptest::collection::vec(("[a-z ]{1,10}", arb_wire_value()), 0..8))
            .prop_map(|(c, pairs)| ClientMessage::Publish { client: ClientId(c), pairs }),
        any::<bool>().prop_map(|semantic| ClientMessage::SetMode { semantic }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(session, last_seen_seq)| ClientMessage::Hello { session, last_seen_seq }),
        any::<u64>().prop_map(|seq| ClientMessage::Ack { seq }),
        any::<u64>().prop_map(|nonce| ClientMessage::Ping { nonce }),
        proptest::collection::vec(("[a-z]{1,10}", "[a-z ]{1,12}"), 0..5)
            .prop_map(|synonyms| ClientMessage::SetOntology { synonyms }),
    ]
}

fn arb_server_message() -> impl Strategy<Value = ServerMessage> {
    prop_oneof![
        any::<u64>().prop_map(|c| ServerMessage::Registered { client: ClientId(c) }),
        any::<u64>().prop_map(|s| ServerMessage::Subscribed { sub: SubId(s) }),
        any::<bool>().prop_map(|ok| ServerMessage::Unsubscribed { ok }),
        any::<u32>().prop_map(|matches| ServerMessage::Published { matches }),
        any::<bool>().prop_map(|semantic| ServerMessage::ModeSet { semantic }),
        "[ -~]{0,40}".prop_map(|message| ServerMessage::Error { message }),
        (any::<u64>(), "[ -~]{0,48}")
            .prop_map(|(seq, payload)| ServerMessage::Notification { seq, payload }),
        (any::<u64>(), any::<bool>())
            .prop_map(|(session, resumed)| ServerMessage::Welcome { session, resumed }),
        any::<u64>().prop_map(|nonce| ServerMessage::Pong { nonce }),
        any::<u64>().prop_map(|epoch| ServerMessage::OntologyUpdated { epoch }),
    ]
}

/// Float equality by bits so NaN payloads round-trip comparably.
fn values_equal(a: &WireValue, b: &WireValue) -> bool {
    match (a, b) {
        (WireValue::Float(x), WireValue::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

fn messages_equal(a: &ClientMessage, b: &ClientMessage) -> bool {
    match (a, b) {
        (
            ClientMessage::Publish { client: c1, pairs: p1 },
            ClientMessage::Publish { client: c2, pairs: p2 },
        ) => {
            c1 == c2
                && p1.len() == p2.len()
                && p1.iter().zip(p2).all(|((a1, v1), (a2, v2))| a1 == a2 && values_equal(v1, v2))
        }
        (
            ClientMessage::Subscribe { client: c1, predicates: p1 },
            ClientMessage::Subscribe { client: c2, predicates: p2 },
        ) => {
            c1 == c2
                && p1.len() == p2.len()
                && p1.iter().zip(p2).all(|(x, y)| {
                    x.attr == y.attr && x.op == y.op && values_equal(&x.value, &y.value)
                })
        }
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn client_messages_roundtrip(msg in arb_client_message()) {
        let mut buf = BytesMut::new();
        encode_client(&msg, &mut buf);
        let mut bytes = buf.freeze();
        let decoded = decode_client(&mut bytes).unwrap();
        prop_assert!(messages_equal(&decoded, &msg), "{decoded:?} != {msg:?}");
        prop_assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn server_messages_roundtrip(msg in arb_server_message()) {
        let mut buf = BytesMut::new();
        encode_server(&msg, &mut buf);
        let mut bytes = buf.freeze();
        let decoded = decode_server(&mut bytes).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    /// Fuzz: arbitrary bytes must decode to Ok or Err, never panic, and
    /// never read past the buffer.
    #[test]
    fn decoder_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut c = Bytes::from(bytes.clone());
        let _ = decode_client(&mut c);
        let mut s = Bytes::from(bytes);
        let _ = decode_server(&mut s);
    }

    /// Truncating a valid message at any point is an error, not a panic.
    #[test]
    fn truncation_is_detected(msg in arb_client_message(), keep_fraction in 0.0f64..1.0) {
        let mut buf = BytesMut::new();
        encode_client(&msg, &mut buf);
        let full = buf.freeze();
        let keep = ((full.len() as f64) * keep_fraction) as usize;
        if keep < full.len() {
            let mut partial = full.slice(0..keep);
            // Shorter prefixes may still decode if a length field got cut in
            // a way that yields a shorter valid message — but for tag-led
            // fixed-layout messages, truncation must never panic.
            let _ = decode_client(&mut partial);
        }
    }

    /// Any chunking of a framed stream reassembles the original frames.
    #[test]
    fn framing_survives_arbitrary_chunking(
        msgs in proptest::collection::vec(arb_server_message(), 1..6),
        chunk_sizes in proptest::collection::vec(1usize..7, 1..64),
    ) {
        let mut stream = BytesMut::new();
        for msg in &msgs {
            let mut payload = BytesMut::new();
            encode_server(msg, &mut payload);
            write_frame(&mut stream, &payload);
        }
        let full = stream.freeze();

        let mut rx = BytesMut::new();
        let mut frames = Vec::new();
        let mut cursor = 0usize;
        let mut chunk_iter = chunk_sizes.iter().cycle();
        while cursor < full.len() {
            let n = (*chunk_iter.next().unwrap()).min(full.len() - cursor);
            rx.put_slice(&full[cursor..cursor + n]);
            cursor += n;
            while let Some(frame) = try_read_frame(&mut rx).unwrap() {
                frames.push(frame);
            }
        }
        prop_assert_eq!(frames.len(), msgs.len());
        for (mut frame, msg) in frames.into_iter().zip(msgs) {
            prop_assert_eq!(decode_server(&mut frame).unwrap(), msg);
        }
    }

    /// The bounded reader agrees with the unbounded one on every valid
    /// stream whose frames fit the bound, regardless of chunking — the
    /// hardening must never change what legitimate traffic decodes to.
    #[test]
    fn bounded_reader_equals_unbounded_on_valid_streams(
        msgs in proptest::collection::vec(arb_client_message(), 1..6),
        chunk_sizes in proptest::collection::vec(1usize..9, 1..32),
    ) {
        let mut stream = BytesMut::new();
        for msg in &msgs {
            let mut payload = BytesMut::new();
            encode_client(msg, &mut payload);
            write_frame(&mut stream, &payload);
        }
        let full = stream.freeze();

        let mut rx = BytesMut::new();
        let mut frames = Vec::new();
        let mut cursor = 0usize;
        let mut chunk_iter = chunk_sizes.iter().cycle();
        while cursor < full.len() {
            let n = (*chunk_iter.next().unwrap()).min(full.len() - cursor);
            rx.put_slice(&full[cursor..cursor + n]);
            cursor += n;
            while let Some(frame) = try_read_frame_bounded(&mut rx, full.len()).unwrap() {
                frames.push(frame);
            }
        }
        prop_assert_eq!(frames.len(), msgs.len());
        for (mut frame, msg) in frames.into_iter().zip(msgs) {
            let decoded = decode_client(&mut frame).unwrap();
            prop_assert!(messages_equal(&decoded, &msg), "{decoded:?} != {msg:?}");
        }
    }

    /// Fuzz the bounded frame reader with arbitrary byte soup fed in
    /// arbitrary chunks and a small bound: it must return frames or a
    /// typed error — never panic, and never hand back a frame longer
    /// than the bound (the allocation-bomb defence).
    #[test]
    fn bounded_reader_is_total_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        chunk_sizes in proptest::collection::vec(1usize..9, 1..32),
        max in 1usize..64,
    ) {
        let mut rx = BytesMut::new();
        let mut cursor = 0usize;
        let mut chunk_iter = chunk_sizes.iter().cycle();
        while cursor < bytes.len() {
            let n = (*chunk_iter.next().unwrap()).min(bytes.len() - cursor);
            rx.put_slice(&bytes[cursor..cursor + n]);
            cursor += n;
            loop {
                match try_read_frame_bounded(&mut rx, max) {
                    Ok(Some(frame)) => prop_assert!(frame.len() <= max),
                    Ok(None) => break,
                    Err(_) => return Ok(()), // poisoned stream: reader bails out
                }
            }
        }
    }
}
