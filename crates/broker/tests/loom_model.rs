//! Bounded model checking of the broker's session/queue accounting with
//! the vendored `loom-lite` checker.
//!
//! Run with the `loom` feature so `stopss_types::sync` swaps to the
//! instrumented primitives:
//!
//! ```text
//! cargo test -p stopss-broker --features loom --test loom_model
//! ```
//!
//! Three surfaces are explored:
//!
//! * [`Session::try_retain`] racing a cumulative [`Session::ack`] — the
//!   replay buffer never overruns its bound and every retained frame
//!   ends in exactly one terminal bucket (the session half of the
//!   `delivered == acked + replayed + dropped + expired + in-flight`
//!   conservation identity in `docs/OPERATIONS.md`);
//! * the `SharedQueue` shape the event loop drains, with a bounded
//!   producer — produced frames are conserved across drop/drain/remain;
//! * the restart stats merge: the seeded `_caught` test reproduces the
//!   historical racing-restart bug class (a worker's counter increment
//!   landing between a restarter's read and reset is silently dropped)
//!   and proves loom-lite finds it and replays its schedule; the
//!   swap-based merge the dispatcher uses survives exhaustively.
#![cfg(feature = "loom")]

use std::collections::VecDeque;

use loom_lite::sync::atomic::{AtomicU64, Ordering};
use loom_lite::sync::{Arc, Mutex};
use loom_lite::{replay, thread, Builder};
use mio_lite::Token;
use stopss_broker::session::Session;

/// Replay-buffer bound under a producer/acker race: the buffer never
/// exceeds `MAX`, sequence numbers stay contiguous, and
/// `retained == acked + still-buffered` holds on every interleaving.
#[test]
fn session_replay_buffer_bound_and_ack_conserve() {
    const MAX: usize = 2;
    let report = Builder::default().check(|| {
        let session = Arc::new(Mutex::new(Session::new(Token(0))));
        let producer = {
            let session = session.clone();
            thread::spawn(move || {
                let (mut retained, mut dropped) = (0u64, 0u64);
                for i in 0..3 {
                    let mut s = session.lock();
                    match s.try_retain(format!("p{i}"), MAX) {
                        Some(_) => retained += 1,
                        None => dropped += 1,
                    }
                    assert!(s.replay.len() <= MAX, "replay buffer overran its bound");
                }
                (retained, dropped)
            })
        };
        let (mut fresh, mut replayed) = (0u64, 0u64);
        for upto in 1..=2u64 {
            let mut s = session.lock();
            let (f, r) = s.ack(upto);
            fresh += f;
            replayed += r;
            assert!(s.replay.len() <= MAX, "ack path let the buffer overrun");
        }
        let (retained, dropped) = producer.join().expect("producer must not panic");
        let s = session.lock();
        assert_eq!(retained + dropped, 3, "every delivery got a terminal decision");
        assert_eq!(
            retained,
            fresh + replayed + s.replay.len() as u64,
            "a retained frame escaped both the ack buckets and the buffer"
        );
        // Never-retransmitted frames ack as fresh only.
        assert_eq!(replayed, 0, "no resume happened, nothing can count as replayed");
        // Remaining frames are contiguous immediately above the ack line.
        for (k, frame) in s.replay.iter().enumerate() {
            assert_eq!(frame.seq, s.acked + 1 + k as u64, "retained seqs must stay contiguous");
        }
    });
    assert!(report.complete, "session space must be exhausted, ran {report:?}");
    assert!(report.schedules >= 2, "expected real interleaving, ran {report:?}");
}

/// The `SharedQueue` accounting the event loop relies on: a producer
/// applying a `DropNewest`-style bound races a drainer, and
/// `produced == dropped + drained + remaining` holds on every
/// interleaving — the queue half of the backpressure conservation
/// identity.
#[test]
fn shared_queue_backpressure_accounting_conserves() {
    const BOUND: usize = 2;
    let report = Builder::default().check(|| {
        let queue: Arc<Mutex<VecDeque<u64>>> = Arc::new(Mutex::new(VecDeque::new()));
        let producer = {
            let queue = queue.clone();
            thread::spawn(move || {
                let mut dropped = 0u64;
                for seq in 0..3u64 {
                    let mut q = queue.lock();
                    if q.len() >= BOUND {
                        dropped += 1;
                    } else {
                        q.push_back(seq);
                    }
                }
                dropped
            })
        };
        let mut drained = 0u64;
        let mut last_seen = None;
        for _ in 0..3 {
            if let Some(seq) = queue.lock().pop_front() {
                drained += 1;
                // FIFO: the drainer sees sequence numbers in publish order.
                assert!(last_seen < Some(seq), "queue reordered deliveries");
                last_seen = Some(seq);
            }
        }
        let dropped = producer.join().expect("producer must not panic");
        let remaining = queue.lock().len() as u64;
        assert_eq!(3, dropped + drained + remaining, "a queued delivery vanished");
    });
    assert!(report.complete, "queue space must be exhausted, ran {report:?}");
}

/// One restart-style stats merge: read the worker-local counter and
/// fold it into the global total. `swap_reset` chooses between the
/// atomic `swap(0)` the dispatcher's restart path uses and the buggy
/// load-then-store it replaced.
fn merge_local_into_total(local: &AtomicU64, total: &AtomicU64, swap_reset: bool) {
    // ordering: counters are monotone and independently merged; the
    // model checker runs at seq-cst anyway (loom-lite fidelity bound).
    let drained = if swap_reset {
        local.swap(0, Ordering::Relaxed)
    } else {
        let seen = local.load(Ordering::Relaxed);
        local.store(0, Ordering::Relaxed);
        seen
    };
    total.fetch_add(drained, Ordering::Relaxed);
}

/// Negative control, seeding the racing-restart bug class: a worker's
/// increment lands between the restarter's load and its store-zero, so
/// the count is neither in the local counter nor in the merged total.
/// loom-lite finds the drop within the preemption bound and the
/// recorded schedule replays it deterministically.
#[test]
fn racing_restart_stats_drop_caught() {
    let run = || {
        let local = Arc::new(AtomicU64::new(1));
        let total = Arc::new(AtomicU64::new(0));
        let worker = {
            let local = local.clone();
            thread::spawn(move || {
                local.fetch_add(1, Ordering::Relaxed);
            })
        };
        merge_local_into_total(&local, &total, false);
        worker.join().expect("worker must not panic");
        let accounted = total.load(Ordering::Relaxed) + local.load(Ordering::Relaxed);
        assert_eq!(accounted, 2, "restart stats drop: a delivery count vanished in the merge");
    };
    let outcome = Builder::default().check_outcome(run);
    let (message, schedule) =
        outcome.failure.expect("bounded exploration must find the dropped count");
    assert!(message.contains("restart stats drop"), "unexpected failure: {message}");
    let replayed = replay(&schedule, run).expect("replaying the schedule must fail again");
    assert!(replayed.contains("restart stats drop"), "replay diverged: {replayed}");
}

/// The swap-based merge the restart path actually uses: exhaustive
/// within the bound, and every interleaving conserves the count.
#[test]
fn swap_based_restart_merge_conserves() {
    let report = Builder::default().check(|| {
        let local = Arc::new(AtomicU64::new(1));
        let total = Arc::new(AtomicU64::new(0));
        let worker = {
            let local = local.clone();
            thread::spawn(move || {
                local.fetch_add(1, Ordering::Relaxed);
            })
        };
        merge_local_into_total(&local, &total, true);
        worker.join().expect("worker must not panic");
        assert_eq!(total.load(Ordering::Relaxed) + local.load(Ordering::Relaxed), 2);
    });
    assert!(report.complete, "restart-merge space must be exhausted, ran {report:?}");
}
