//! Keeps `docs/WIRE_PROTOCOL.md` and `crates/broker/src/wire.rs` in
//! lock-step.
//!
//! The doc's tag tables are normative for external implementors, so a
//! tag added (or, worse, renumbered) in code without a matching doc
//! edit is a release blocker. This test parses the markdown tables out
//! of the doc and compares them entry-for-entry against the
//! `CLIENT_TAG_TABLE` / `SERVER_TAG_TABLE` / `VALUE_TAG_TABLE`
//! constants the encoder is tested against.

use std::path::PathBuf;

use stopss_broker::wire::{CLIENT_TAG_TABLE, SERVER_TAG_TABLE, VALUE_TAG_TABLE};

fn wire_doc() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/WIRE_PROTOCOL.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Extracts `(tag, variant)` rows from the first markdown table whose
/// header row is `| Tag | Variant | ... |` after `heading`.
fn parse_tag_table(doc: &str, heading: &str) -> Vec<(u8, String)> {
    let section = doc
        .split_once(heading)
        .unwrap_or_else(|| panic!("heading `{heading}` missing from WIRE_PROTOCOL.md"))
        .1;
    let mut rows = Vec::new();
    let mut in_table = false;
    for line in section.lines() {
        let line = line.trim();
        if !in_table {
            if line.starts_with("| Tag | Variant |") {
                in_table = true;
            }
            continue;
        }
        if !line.starts_with('|') {
            break; // table ended
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 || cells[0].starts_with("---") {
            continue; // separator row
        }
        let tag: u8 = cells[0]
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric tag `{}` under `{heading}`", cells[0]));
        let variant = cells[1].trim_matches('`').to_string();
        rows.push((tag, variant));
    }
    assert!(!rows.is_empty(), "no tag table found under `{heading}`");
    rows
}

/// Extracts `tag → Variant` lines from the fenced `value := ...` block.
fn parse_value_block(doc: &str) -> Vec<(u8, String)> {
    let section = doc
        .split_once("value := tag: u8")
        .expect("`value := tag: u8` block missing from WIRE_PROTOCOL.md")
        .1;
    let mut rows = Vec::new();
    for line in section.lines() {
        let line = line.trim();
        if line.starts_with("```") {
            break;
        }
        // Lines look like: `0 → Int    body = i64 LE`
        let Some((tag_part, rest)) = line.split_once('→') else { continue };
        let Ok(tag) = tag_part.trim().parse::<u8>() else { continue };
        let variant = rest.split_whitespace().next().unwrap_or("").to_string();
        rows.push((tag, variant));
    }
    assert!(!rows.is_empty(), "no value tag lines parsed from WIRE_PROTOCOL.md");
    rows
}

fn assert_tables_match(doc_rows: &[(u8, String)], code: &[(u8, &str)], what: &str) {
    assert_eq!(
        doc_rows.len(),
        code.len(),
        "{what}: doc lists {} tags, code lists {} — update docs/WIRE_PROTOCOL.md",
        doc_rows.len(),
        code.len()
    );
    for ((doc_tag, doc_variant), (code_tag, code_variant)) in doc_rows.iter().zip(code) {
        assert_eq!(doc_tag, code_tag, "{what}: tag mismatch for `{doc_variant}`");
        assert_eq!(doc_variant, code_variant, "{what}: variant name mismatch at tag {doc_tag}");
    }
}

#[test]
fn client_tag_table_matches_doc() {
    let doc = wire_doc();
    let rows = parse_tag_table(&doc, "## Client → server messages");
    assert_tables_match(&rows, CLIENT_TAG_TABLE, "client tags");
}

#[test]
fn server_tag_table_matches_doc() {
    let doc = wire_doc();
    let rows = parse_tag_table(&doc, "## Server → client messages");
    assert_tables_match(&rows, SERVER_TAG_TABLE, "server tags");
}

#[test]
fn value_tag_table_matches_doc() {
    let doc = wire_doc();
    let rows = parse_value_block(&doc);
    assert_tables_match(&rows, VALUE_TAG_TABLE, "value tags");
}
