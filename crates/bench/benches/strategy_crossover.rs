//! E8 — strategy ablation: paper-faithful event materialization vs the
//! flattened closure vs subscription rewriting, plus the subscribe-time
//! cost rewriting pays.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stopss_bench::matcher_for;
use stopss_core::{Config, SToPSS, Strategy};
use stopss_workload::{synthetic_fixture, SyntheticConfig, SyntheticWorkload};

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_publish");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for depth in [2usize, 3] {
        let shape = SyntheticConfig {
            attrs: 4,
            depth,
            fanout: 3,
            mapping_chain: 2,
            seed: 23,
            ..Default::default()
        };
        let workload =
            SyntheticWorkload { subscriptions: 500, publications: 100, ..Default::default() };
        let fixture = synthetic_fixture(&shape, &workload);
        for strategy in Strategy::ALL {
            let config = Config { strategy, track_provenance: false, ..Config::default() };
            let matcher = matcher_for(&fixture, config);
            let events = &fixture.publications;
            let mut idx = 0usize;
            group.bench_with_input(BenchmarkId::new(strategy.name(), depth), &depth, |b, _| {
                b.iter(|| {
                    let event = &events[idx % events.len()];
                    idx += 1;
                    black_box(matcher.publish(event).len())
                })
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("strategy_subscribe");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    let shape = SyntheticConfig {
        attrs: 4,
        depth: 3,
        fanout: 3,
        mapping_chain: 2,
        seed: 23,
        ..Default::default()
    };
    let workload = SyntheticWorkload { subscriptions: 200, publications: 1, ..Default::default() };
    let fixture = synthetic_fixture(&shape, &workload);
    for strategy in Strategy::ALL {
        let config = Config { strategy, track_provenance: false, ..Config::default() };
        group.bench_with_input(BenchmarkId::new(strategy.name(), "200subs"), &strategy, |b, _| {
            b.iter(|| {
                let matcher = SToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
                for sub in &fixture.subscriptions {
                    matcher.subscribe(sub.clone());
                }
                black_box(matcher.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
