//! E10 — sharded-matcher scaling: shard counts × engines × design.
//!
//! Batched publish latency of the sharded matcher on the job-finder
//! workload as the shard count grows, for each syntactic engine, along
//! two comparison axes:
//!
//! * **pipelined vs barrier** — `pipelined` is the production
//!   [`stopss_core::ShardedSToPSS::publish_batch`]: the front-end
//!   prepares pipeline chunk *k+1* on a scoped worker while the shards
//!   match chunk *k*; `barrier` composes the same two stages without
//!   overlap (`frontend().prepare_batch()` then
//!   `publish_prepared_batch()` — the pre-pipelining behaviour);
//! * **hoisted vs replicated** — the `barrier`/`pipelined` designs both
//!   hoist the semantic front-end (closure / materialization runs once
//!   per publication); `replicated` is the PR-2 baseline
//!   ([`stopss_bench::ReplicatedSharded`]) where every shard recomputes
//!   the full semantic pass per publication.
//!
//! Shard count 1 is the single-engine baseline (no fan-out win; the
//! pipelined mode also degrades to the barrier there, since one worker
//! has no budget for stage overlap). Besides the criterion-stub report,
//! the bench emits the machine-readable perf trajectory
//! `BENCH_sharding.json` at the repo root; CI regenerates it, fails if
//! the pipelined-vs-barrier axis is missing, and the file is committed
//! so `git log` shows the trajectory PR-over-PR.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use stopss_bench::{
    render_bench_json, sharded_matcher_for, sweep_json_fields, timed_barrier_batch_sweep,
    timed_batch_sweep, timed_replicated_batch_sweep, JsonRow, JsonValue, ReplicatedSharded,
};
use stopss_core::Config;
use stopss_matching::EngineKind;
use stopss_workload::{jobfinder_fixture, Fixture};

const SUBSCRIPTIONS: usize = 1_000;
const PUBLICATIONS: usize = 256;
const BATCH: usize = 64;
const WARMUP: usize = 32;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn config_for(engine: EngineKind, shards: usize) -> Config {
    Config::default().with_engine(engine).with_provenance(false).with_shards(shards)
}

fn bench_sharding(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharding_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let fixture = jobfinder_fixture(SUBSCRIPTIONS, PUBLICATIONS, 17);
    for engine in EngineKind::ALL {
        for shards in SHARD_COUNTS {
            let config = config_for(engine, shards);
            let events = &fixture.publications;

            let pipelined = sharded_matcher_for(&fixture, config);
            let mut idx = 0usize;
            group.bench_with_input(
                BenchmarkId::new(engine.name(), format!("shards={shards}/pipelined")),
                &shards,
                |b, _| {
                    b.iter(|| {
                        let start = (idx * BATCH) % events.len();
                        let end = (start + BATCH).min(events.len());
                        idx += 1;
                        let sets = pipelined.publish_batch(&events[start..end]);
                        black_box(sets.iter().map(Vec::len).sum::<usize>())
                    })
                },
            );

            let mut barrier = sharded_matcher_for(&fixture, config);
            let mut idx = 0usize;
            group.bench_with_input(
                BenchmarkId::new(engine.name(), format!("shards={shards}/barrier")),
                &shards,
                |b, _| {
                    b.iter(|| {
                        let start = (idx * BATCH) % events.len();
                        let end = (start + BATCH).min(events.len());
                        idx += 1;
                        let result =
                            timed_barrier_batch_sweep(&mut barrier, &events[start..end], BATCH, 0);
                        black_box(result.matches)
                    })
                },
            );

            let mut replicated = ReplicatedSharded::new(&fixture, config);
            let mut idx = 0usize;
            group.bench_with_input(
                BenchmarkId::new(engine.name(), format!("shards={shards}/replicated")),
                &shards,
                |b, _| {
                    b.iter(|| {
                        let start = (idx * BATCH) % events.len();
                        let end = (start + BATCH).min(events.len());
                        idx += 1;
                        let sets = replicated.publish_batch(&events[start..end]);
                        black_box(sets.iter().map(Vec::len).sum::<usize>())
                    })
                },
            );
        }
    }
    group.finish();
}

/// Sweep passes per configuration; the fastest is reported (best-of-N
/// suppresses scheduler noise, which on small machines can exceed the
/// per-shard closure cost being measured). The three designs' passes are
/// interleaved in time so frequency/scheduler drift hits all of them
/// equally instead of biasing whichever ran later.
const PASSES: usize = 5;

/// Full-pass timed sweeps for the committed perf trajectory: per engine ×
/// shard count, the `pipelined` / `barrier` / `replicated` modes.
fn trajectory_rows(fixture: &Fixture) -> Vec<JsonRow> {
    let mut rows = Vec::new();
    for engine in EngineKind::ALL {
        for shards in SHARD_COUNTS {
            let config = config_for(engine, shards);
            let mut pipelined = sharded_matcher_for(fixture, config);
            let mut barrier = sharded_matcher_for(fixture, config);
            let mut replicated = ReplicatedSharded::new(fixture, config);
            let mut best_pipelined: Option<stopss_bench::SweepResult> = None;
            let mut best_barrier: Option<stopss_bench::SweepResult> = None;
            let mut best_replicated: Option<stopss_bench::SweepResult> = None;
            for _ in 0..PASSES {
                let p = timed_batch_sweep(&mut pipelined, &fixture.publications, BATCH, WARMUP);
                if best_pipelined.as_ref().is_none_or(|b| p.ns_per_event < b.ns_per_event) {
                    best_pipelined = Some(p);
                }
                let h =
                    timed_barrier_batch_sweep(&mut barrier, &fixture.publications, BATCH, WARMUP);
                if best_barrier.as_ref().is_none_or(|b| h.ns_per_event < b.ns_per_event) {
                    best_barrier = Some(h);
                }
                let r = timed_replicated_batch_sweep(
                    &mut replicated,
                    &fixture.publications,
                    BATCH,
                    WARMUP,
                );
                if best_replicated.as_ref().is_none_or(|b| r.ns_per_event < b.ns_per_event) {
                    best_replicated = Some(r);
                }
            }
            for (mode, result) in [
                ("pipelined", best_pipelined.unwrap()),
                ("barrier", best_barrier.unwrap()),
                ("replicated", best_replicated.unwrap()),
            ] {
                let mut row: JsonRow = vec![
                    ("engine", JsonValue::Str(engine.name().to_owned())),
                    ("shards", JsonValue::UInt(shards as u64)),
                    ("mode", JsonValue::Str(mode.to_owned())),
                ];
                row.extend(sweep_json_fields(&result));
                rows.push(row);
            }
        }
    }
    rows
}

criterion_group!(benches, bench_sharding);

fn main() {
    benches();
    // The multi-pass trajectory sweeps are opt-in so a plain `cargo bench`
    // stays a fast smoke run; CI's trajectory step (and anyone refreshing
    // the committed JSON) sets BENCH_TRAJECTORY=1.
    if std::env::var_os("BENCH_TRAJECTORY").is_none() {
        return;
    }
    let fixture = jobfinder_fixture(SUBSCRIPTIONS, PUBLICATIONS, 17);
    let rows = trajectory_rows(&fixture);
    let json = render_bench_json(
        "sharding_scaling",
        &[
            ("workload", JsonValue::Str("jobfinder".to_owned())),
            ("subscriptions", JsonValue::UInt(SUBSCRIPTIONS as u64)),
            ("publications", JsonValue::UInt(PUBLICATIONS as u64)),
            ("batch_size", JsonValue::UInt(BATCH as u64)),
        ],
        &rows,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sharding.json");
    std::fs::write(path, json).expect("write BENCH_sharding.json");
    println!("wrote {path}");
}
