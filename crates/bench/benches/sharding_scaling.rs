//! E10 — sharded-matcher scaling: shard counts × engines.
//!
//! Batched publish latency of `ShardedSToPSS` on the job-finder workload
//! as the shard count grows, for each syntactic engine. Shard count 1 is
//! the single-engine baseline (same code path, no fan-out win), so the
//! sweep exposes both the parallel speedup and the per-shard closure
//! overhead the sharded design pays for exact equivalence.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stopss_bench::sharded_matcher_for;
use stopss_core::Config;
use stopss_matching::EngineKind;
use stopss_workload::jobfinder_fixture;

const BATCH: usize = 64;

fn bench_sharding(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharding_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let fixture = jobfinder_fixture(4_000, 256, 17);
    for engine in EngineKind::ALL {
        for shards in [1usize, 2, 4, 8] {
            let config =
                Config::default().with_engine(engine).with_provenance(false).with_shards(shards);
            let mut matcher = sharded_matcher_for(&fixture, config);
            let events = &fixture.publications;
            let mut idx = 0usize;
            group.bench_with_input(
                BenchmarkId::new(engine.name(), format!("shards={shards}")),
                &shards,
                |b, _| {
                    b.iter(|| {
                        let start = (idx * BATCH) % events.len();
                        let end = (start + BATCH).min(events.len());
                        idx += 1;
                        let sets = matcher.publish_batch(&events[start..end]);
                        black_box(sets.iter().map(Vec::len).sum::<usize>())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sharding);
criterion_main!(benches);
