//! E10 — sharded-matcher scaling: shard counts × engines × design.
//!
//! Batched publish latency of the sharded matcher on the job-finder
//! workload as the shard count grows, for each syntactic engine, along
//! two comparison axes:
//!
//! * **pipelined vs barrier** — `pipelined` is the production
//!   [`stopss_core::ShardedSToPSS::publish_batch`]: the front-end
//!   prepares pipeline chunk *k+1* on a scoped worker while the shards
//!   match chunk *k*; `barrier` composes the same two stages without
//!   overlap (`frontend().prepare_batch()` then
//!   `publish_prepared_batch()` — the pre-pipelining behaviour);
//! * **hoisted vs replicated** — the `barrier`/`pipelined` designs both
//!   hoist the semantic front-end (closure / materialization runs once
//!   per publication); `replicated` is the PR-2 baseline
//!   ([`stopss_bench::ReplicatedSharded`]) where every shard recomputes
//!   the full semantic pass per publication;
//! * **churn** — publisher threads stream batches while the control
//!   plane subscribes/unsubscribes/re-points the ontology concurrently:
//!   publisher throughput under churn plus mean control-op latency, the
//!   axis the epoch-snapshot control plane buys (control ops fork
//!   snapshots aside instead of write-locking publishers out).
//!
//! Shard count 1 is the single-engine baseline (no fan-out win; the
//! pipelined mode also degrades to the barrier there, since one worker
//! has no budget for stage overlap). Besides the criterion-stub report,
//! the bench emits the machine-readable perf trajectory
//! `BENCH_sharding.json` at the repo root; CI regenerates it, fails if
//! the pipelined-vs-barrier axis is missing, and the file is committed
//! so `git log` shows the trajectory PR-over-PR.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use stopss_bench::{
    render_bench_json, sharded_matcher_for, sweep_json_fields, timed_barrier_batch_sweep,
    timed_batch_sweep, timed_replicated_batch_sweep, JsonRow, JsonValue, ReplicatedSharded,
};
use stopss_core::Config;
use stopss_matching::EngineKind;
use stopss_workload::{jobfinder_fixture, Fixture};

const SUBSCRIPTIONS: usize = 1_000;
const PUBLICATIONS: usize = 256;
const BATCH: usize = 64;
const WARMUP: usize = 32;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn config_for(engine: EngineKind, shards: usize) -> Config {
    Config::default().with_engine(engine).with_provenance(false).with_shards(shards)
}

fn bench_sharding(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharding_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let fixture = jobfinder_fixture(SUBSCRIPTIONS, PUBLICATIONS, 17);
    for engine in EngineKind::ALL {
        for shards in SHARD_COUNTS {
            let config = config_for(engine, shards);
            let events = &fixture.publications;

            let pipelined = sharded_matcher_for(&fixture, config);
            let mut idx = 0usize;
            group.bench_with_input(
                BenchmarkId::new(engine.name(), format!("shards={shards}/pipelined")),
                &shards,
                |b, _| {
                    b.iter(|| {
                        let start = (idx * BATCH) % events.len();
                        let end = (start + BATCH).min(events.len());
                        idx += 1;
                        let sets = pipelined.publish_batch(&events[start..end]);
                        black_box(sets.iter().map(Vec::len).sum::<usize>())
                    })
                },
            );

            let barrier = sharded_matcher_for(&fixture, config);
            let mut idx = 0usize;
            group.bench_with_input(
                BenchmarkId::new(engine.name(), format!("shards={shards}/barrier")),
                &shards,
                |b, _| {
                    b.iter(|| {
                        let start = (idx * BATCH) % events.len();
                        let end = (start + BATCH).min(events.len());
                        idx += 1;
                        let result =
                            timed_barrier_batch_sweep(&barrier, &events[start..end], BATCH, 0);
                        black_box(result.matches)
                    })
                },
            );

            let mut replicated = ReplicatedSharded::new(&fixture, config);
            let mut idx = 0usize;
            group.bench_with_input(
                BenchmarkId::new(engine.name(), format!("shards={shards}/replicated")),
                &shards,
                |b, _| {
                    b.iter(|| {
                        let start = (idx * BATCH) % events.len();
                        let end = (start + BATCH).min(events.len());
                        idx += 1;
                        let sets = replicated.publish_batch(&events[start..end]);
                        black_box(sets.iter().map(Vec::len).sum::<usize>())
                    })
                },
            );
        }
    }
    group.finish();
}

/// Sweep passes per configuration; the fastest is reported (best-of-N
/// suppresses scheduler noise, which on small machines can exceed the
/// per-shard closure cost being measured). The three designs' passes are
/// interleaved in time so frequency/scheduler drift hits all of them
/// equally instead of biasing whichever ran later.
const PASSES: usize = 5;

/// Full-pass timed sweeps for the committed perf trajectory: per engine ×
/// shard count, the `pipelined` / `barrier` / `replicated` modes.
fn trajectory_rows(fixture: &Fixture) -> Vec<JsonRow> {
    let mut rows = Vec::new();
    for engine in EngineKind::ALL {
        for shards in SHARD_COUNTS {
            let config = config_for(engine, shards);
            let pipelined = sharded_matcher_for(fixture, config);
            let barrier = sharded_matcher_for(fixture, config);
            let mut replicated = ReplicatedSharded::new(fixture, config);
            let mut best_pipelined: Option<stopss_bench::SweepResult> = None;
            let mut best_barrier: Option<stopss_bench::SweepResult> = None;
            let mut best_replicated: Option<stopss_bench::SweepResult> = None;
            for _ in 0..PASSES {
                let p = timed_batch_sweep(&pipelined, &fixture.publications, BATCH, WARMUP);
                if best_pipelined.as_ref().is_none_or(|b| p.ns_per_event < b.ns_per_event) {
                    best_pipelined = Some(p);
                }
                let h = timed_barrier_batch_sweep(&barrier, &fixture.publications, BATCH, WARMUP);
                if best_barrier.as_ref().is_none_or(|b| h.ns_per_event < b.ns_per_event) {
                    best_barrier = Some(h);
                }
                let r = timed_replicated_batch_sweep(
                    &mut replicated,
                    &fixture.publications,
                    BATCH,
                    WARMUP,
                );
                if best_replicated.as_ref().is_none_or(|b| r.ns_per_event < b.ns_per_event) {
                    best_replicated = Some(r);
                }
            }
            for (mode, result) in [
                ("pipelined", best_pipelined.unwrap()),
                ("barrier", best_barrier.unwrap()),
                ("replicated", best_replicated.unwrap()),
            ] {
                let mut row: JsonRow = vec![
                    ("engine", JsonValue::Str(engine.name().to_owned())),
                    ("shards", JsonValue::UInt(shards as u64)),
                    ("mode", JsonValue::Str(mode.to_owned())),
                ];
                row.extend(sweep_json_fields(&result));
                rows.push(row);
            }
        }
    }
    rows
}

/// How long each churn pass keeps the control thread issuing ops while
/// the publishers stream batches. Long enough to amortize thread spawn
/// and cover several snapshot forks even at 1k subscriptions.
const CHURN_MILLIS: u64 = 80;
const CHURN_PUBLISHERS: usize = 2;

/// Control-plane churn mode for the committed trajectory: publisher
/// threads stream batches through the live matcher while the control
/// thread subscribes/unsubscribes (with a periodic ontology re-point)
/// against the same instance. This is the axis the epoch-snapshot
/// control plane is supposed to win — control ops fork a snapshot aside
/// instead of write-locking the matcher, so publisher throughput under
/// churn stays near the uncontended rate while each row also reports the
/// mean control-op latency (the cost of forking a 1k-subscription core).
fn churn_rows(fixture: &Fixture) -> Vec<JsonRow> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    let mut rows = Vec::new();
    for engine in EngineKind::ALL {
        for shards in SHARD_COUNTS {
            let config = config_for(engine, shards);
            // (ns_per_control_op, ns_per_event, events_per_sec, matches, ops)
            let mut best: Option<(f64, f64, f64, u64, u64)> = None;
            for _ in 0..PASSES {
                let matcher = sharded_matcher_for(fixture, config);
                let stop = AtomicBool::new(false);
                let (control_ns, control_ops, published) = std::thread::scope(|scope| {
                    let publishers: Vec<_> = (0..CHURN_PUBLISHERS)
                        .map(|_| {
                            scope.spawn(|| {
                                let mut events = 0u64;
                                let mut matches = 0u64;
                                let start = Instant::now();
                                'outer: loop {
                                    for chunk in fixture.publications.chunks(BATCH) {
                                        if stop.load(Ordering::Acquire) {
                                            break 'outer;
                                        }
                                        let sets = matcher.publish_batch(chunk);
                                        matches += sets.iter().map(|s| s.len() as u64).sum::<u64>();
                                        events += chunk.len() as u64;
                                    }
                                }
                                (events, matches, start.elapsed())
                            })
                        })
                        .collect();

                    let deadline = Duration::from_millis(CHURN_MILLIS);
                    let mut ops = 0u64;
                    let mut cursor = 0usize;
                    let start = Instant::now();
                    while start.elapsed() < deadline {
                        let sub = &fixture.subscriptions[cursor % fixture.subscriptions.len()];
                        if ops % 16 == 15 {
                            matcher.set_source(fixture.source.clone());
                        } else if ops.is_multiple_of(2) {
                            matcher.unsubscribe(sub.id());
                        } else {
                            matcher.subscribe(sub.clone());
                            cursor += 1;
                        }
                        ops += 1;
                    }
                    let control = start.elapsed();
                    stop.store(true, Ordering::Release);
                    let published: Vec<_> =
                        publishers.into_iter().map(|h| h.join().unwrap()).collect();
                    (control, ops, published)
                });

                let events: u64 = published.iter().map(|(e, _, _)| e).sum();
                let matches: u64 = published.iter().map(|(_, m, _)| m).sum();
                let wall = published
                    .iter()
                    .map(|(_, _, elapsed)| elapsed.as_secs_f64())
                    .fold(0.0f64, f64::max);
                let ns_per_op = control_ns.as_nanos() as f64 / control_ops.max(1) as f64;
                let ns_per_event = wall * 1e9 * CHURN_PUBLISHERS as f64 / events.max(1) as f64;
                let events_per_sec = events as f64 / wall.max(1e-9);
                if best.as_ref().is_none_or(|b| ns_per_op < b.0) {
                    best = Some((ns_per_op, ns_per_event, events_per_sec, matches, control_ops));
                }
            }
            let (ns_per_op, ns_per_event, events_per_sec, matches, ops) = best.unwrap();
            rows.push(vec![
                ("engine", JsonValue::Str(engine.name().to_owned())),
                ("shards", JsonValue::UInt(shards as u64)),
                ("mode", JsonValue::Str("churn".to_owned())),
                ("matches", JsonValue::UInt(matches)),
                ("ns_per_event", JsonValue::Float(ns_per_event)),
                ("events_per_sec", JsonValue::Float(events_per_sec)),
                ("control_ops", JsonValue::UInt(ops)),
                ("ns_per_control_op", JsonValue::Float(ns_per_op)),
                ("publishers", JsonValue::UInt(CHURN_PUBLISHERS as u64)),
            ]);
        }
    }
    rows
}

criterion_group!(benches, bench_sharding);

fn main() {
    benches();
    // The multi-pass trajectory sweeps are opt-in so a plain `cargo bench`
    // stays a fast smoke run; CI's trajectory step (and anyone refreshing
    // the committed JSON) sets BENCH_TRAJECTORY=1.
    if std::env::var_os("BENCH_TRAJECTORY").is_none() {
        return;
    }
    let fixture = jobfinder_fixture(SUBSCRIPTIONS, PUBLICATIONS, 17);
    let mut rows = trajectory_rows(&fixture);
    rows.extend(churn_rows(&fixture));
    let json = render_bench_json(
        "sharding_scaling",
        &[
            ("workload", JsonValue::Str("jobfinder".to_owned())),
            ("subscriptions", JsonValue::UInt(SUBSCRIPTIONS as u64)),
            ("publications", JsonValue::UInt(PUBLICATIONS as u64)),
            ("batch_size", JsonValue::UInt(BATCH as u64)),
        ],
        &rows,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sharding.json");
    std::fs::write(path, json).expect("write BENCH_sharding.json");
    println!("wrote {path}");
}
