//! E6 — claim C3: the information-loss knob trades recall for speed.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stopss_bench::matcher_for;
use stopss_core::{Config, StageMask};
use stopss_workload::jobfinder_fixture;

fn bench_tolerance(c: &mut Criterion) {
    let mut group = c.benchmark_group("tolerance");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let fixture = jobfinder_fixture(2_000, 200, 13);
    let settings: [(&str, Option<u32>, StageMask); 5] = [
        ("syntactic", None, StageMask::syntactic()),
        ("k0", Some(0), StageMask::all()),
        ("k1", Some(1), StageMask::all()),
        ("k2", Some(2), StageMask::all()),
        ("unbounded", None, StageMask::all()),
    ];
    for (label, bound, stages) in settings {
        let config =
            Config { stages, max_distance: bound, track_provenance: false, ..Config::default() };
        let matcher = matcher_for(&fixture, config);
        let events = &fixture.publications;
        let mut idx = 0usize;
        group.bench_with_input(BenchmarkId::new("publish", label), &label, |b, _| {
            b.iter(|| {
                let event = &events[idx % events.len()];
                idx += 1;
                black_box(matcher.publish(event).len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tolerance);
criterion_main!(benches);
