//! E11 — networked broker under load: connections × publish rate.
//!
//! Drives the [`stopss_broker::NetBroker`] event loop end to end over
//! in-memory framed connections: N subscriber connections whose
//! subscriptions are drawn from a fixed template pool with **Zipf
//! popularity skew** ([`stopss_workload::Zipf`] — a few hot topics carry
//! most of the fan-out, per Fabret et al.), one publisher connection
//! streaming seq-stamped publications in rate-sized bursts. Each
//! notification's latency is measured from the moment the publish frame
//! is flushed into the wire to the moment the subscriber's client drains
//! the Notification frame — so the number covers the whole serving path:
//! frame decode, batched subscribe/publish dispatch, match, async notify
//! engine, outbound queue, flush, client-side reassembly.
//!
//! Besides the criterion-stub smoke run, the bench emits the
//! machine-readable perf trajectory `BENCH_broker.json` at the repo root
//! (connections × publish rate → events/sec + p50/p99 notify latency).
//! CI regenerates it, fails if either axis is missing, and the file is
//! committed so `git log` shows the trajectory PR-over-PR.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use stopss_bench::{render_bench_json, JsonRow, JsonValue};
use stopss_broker::{
    subscription_to_wire, ClientId, ClientMessage, NetBroker, NetBrokerConfig, NetClient,
    ServerMessage, TransportKind, WireValue,
};
use stopss_types::{Interner, SharedInterner};
use stopss_workload::{generate_jobfinder, JobFinderDomain, Rng, WorkloadConfig, Zipf};

/// Distinct subscription shapes; connections pick one Zipf-skewed, so the
/// hot template is shared by ~20% of all connections at s = 1.0.
const SUB_TEMPLATES: usize = 64;
/// Zipf exponent for both template popularity and publication choice.
const ZIPF_SKEW: f64 = 1.0;
/// Publications streamed per (connections, rate) cell.
const PUBLICATIONS: usize = 192;
/// The committed trajectory's two axes.
const CONNECTIONS: [usize; 3] = [128, 1024, 4096];
const PUBLISH_RATES: [usize; 2] = [4, 32];
/// Hard cap on event-loop turns per pump; hitting it means lost frames.
const TURN_BUDGET: usize = 200_000;

struct LoadResult {
    events: u64,
    matches: u64,
    notifications: u64,
    events_per_sec: f64,
    notifications_per_sec: f64,
    p50_notify_ns: u64,
    p99_notify_ns: u64,
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[rank]
}

/// Everything the publish loop needs after setup.
struct Rig {
    server: NetBroker,
    interner: Interner,
    subscribers: Vec<NetClient>,
    publisher: NetClient,
    publisher_id: ClientId,
    publications: Vec<stopss_types::Event>,
}

/// Connects `connections` subscribers (Zipf-skewed over the template
/// pool) plus one publisher, and settles the subscribe storm.
fn build_rig(connections: usize, seed: u64) -> Rig {
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut interner);
    let workload = generate_jobfinder(
        &domain,
        &WorkloadConfig {
            subscriptions: SUB_TEMPLATES,
            publications: PUBLICATIONS,
            seed,
            ..Default::default()
        },
    );
    let mut server = NetBroker::new(
        NetBrokerConfig::default(),
        Arc::new(domain.ontology.clone()),
        SharedInterner::from_interner(interner.clone()),
    )
    .expect("in-memory event loop always builds");

    let mut subscribers = Vec::with_capacity(connections);
    for _ in 0..connections {
        subscribers.push(NetClient::connect(&server.connector()).expect("connect"));
    }
    for (k, client) in subscribers.iter_mut().enumerate() {
        client
            .send(&ClientMessage::Register {
                name: format!("sub-{k}"),
                transport: TransportKind::Tcp,
            })
            .expect("register");
    }
    let mut ids: Vec<Option<ClientId>> = vec![None; connections];
    let mut remaining = connections;
    let mut turns = 0usize;
    while remaining > 0 {
        server.turn(Some(Duration::from_millis(1))).expect("turn");
        turns += 1;
        assert!(turns < TURN_BUDGET, "registration never settled");
        for (k, client) in subscribers.iter_mut().enumerate() {
            if ids[k].is_some() {
                continue;
            }
            for msg in client.poll_recv().expect("recv") {
                if let ServerMessage::Registered { client: id } = msg {
                    ids[k] = Some(id);
                    remaining -= 1;
                }
            }
        }
    }

    // The subscribe storm: every connection queues its Subscribe before
    // the loop turns again, so the server coalesces them into a few
    // batched control mutations.
    let zipf = Zipf::new(SUB_TEMPLATES, ZIPF_SKEW);
    let mut rng = Rng::new(seed ^ 0x5eed_701c);
    for (k, client) in subscribers.iter_mut().enumerate() {
        let template = &workload.subscriptions[zipf.sample(&mut rng)];
        client
            .send(&ClientMessage::Subscribe {
                client: ids[k].expect("registered"),
                predicates: subscription_to_wire(template, &interner),
            })
            .expect("subscribe");
    }
    let mut publisher = NetClient::connect(&server.connector()).expect("connect");
    publisher
        .send(&ClientMessage::Register { name: "publisher".into(), transport: TransportKind::Tcp })
        .expect("register");
    assert!(server.run_until_quiescent(TURN_BUDGET).expect("turn"), "setup never quiesced");
    let mut publisher_id = None;
    for msg in publisher.poll_recv().expect("recv") {
        if let ServerMessage::Registered { client } = msg {
            publisher_id = Some(client);
        }
    }
    for client in &mut subscribers {
        let _ = client.poll_recv().expect("recv"); // drain Subscribed replies
    }
    assert_eq!(server.broker().subscription_count(), connections);
    Rig {
        server,
        interner,
        subscribers,
        publisher,
        publisher_id: publisher_id.expect("publisher registered"),
        publications: workload.publications,
    }
}

/// Streams `publications` seq-stamped events in `rate`-sized bursts and
/// pumps each burst until every Published reply and every resulting
/// Notification has been drained — losses would hang, so a clean return
/// is itself a conservation check (plus the explicit stats assert).
fn run_load(rig: &mut Rig, rate: usize, publications: usize, seed: u64) -> LoadResult {
    let zipf = Zipf::new(rig.publications.len(), ZIPF_SKEW);
    let mut rng = Rng::new(seed ^ 0x10ad_9e97);
    let mut stamps: Vec<Instant> = Vec::with_capacity(publications);
    let mut latencies: Vec<u64> = Vec::new();
    let mut matches = 0u64;
    let base_sent = rig.server.stats().notifications_sent;

    let start = Instant::now();
    let mut seq = 0usize;
    while seq < publications {
        let burst = rate.min(publications - seq);
        for _ in 0..burst {
            let event = &rig.publications[zipf.sample(&mut rng)];
            let interner = &rig.interner;
            let pairs: Vec<(String, WireValue)> =
                std::iter::once(("seq".to_owned(), WireValue::Int(seq as i64)))
                    .chain(event.pairs().iter().map(|(attr, value)| {
                        (interner.resolve(*attr).to_owned(), WireValue::from_value(value, interner))
                    }))
                    .collect();
            rig.publisher
                .send(&ClientMessage::Publish { client: rig.publisher_id, pairs })
                .expect("publish");
            rig.publisher.flush().expect("flush");
            stamps.push(Instant::now());
            seq += 1;
        }
        // Pump until the burst's replies and notifications all arrive.
        let mut published_seen = 0usize;
        let mut burst_matches = 0u64;
        let mut burst_notified = 0u64;
        let mut turns = 0usize;
        while published_seen < burst || burst_notified < burst_matches {
            rig.server.turn(Some(Duration::from_millis(1))).expect("turn");
            turns += 1;
            assert!(turns < TURN_BUDGET, "burst never drained — a notification was lost");
            for client in &mut rig.subscribers {
                for msg in client.poll_recv().expect("recv") {
                    if let ServerMessage::Notification { payload } = msg {
                        let n = parse_seq(&payload).expect("seq-stamped payload") as usize;
                        latencies.push(stamps[n].elapsed().as_nanos() as u64);
                        burst_notified += 1;
                    }
                }
            }
            for msg in rig.publisher.poll_recv().expect("recv") {
                if let ServerMessage::Published { matches } = msg {
                    burst_matches += u64::from(matches);
                    published_seen += 1;
                }
            }
        }
        matches += burst_matches;
    }
    let wall = start.elapsed().as_secs_f64().max(1e-9);

    let stats = rig.server.stats();
    assert_eq!(stats.notifications_dropped, 0, "drained consumers never hit backpressure");
    assert_eq!(stats.notifications_disconnected, 0);
    assert_eq!(stats.notifications_sent - base_sent, latencies.len() as u64);
    latencies.sort_unstable();
    LoadResult {
        events: publications as u64,
        matches,
        notifications: latencies.len() as u64,
        events_per_sec: publications as f64 / wall,
        notifications_per_sec: latencies.len() as f64 / wall,
        p50_notify_ns: percentile(&latencies, 0.50),
        p99_notify_ns: percentile(&latencies, 0.99),
    }
}

/// Pulls the leading `(seq, N)` pair back out of a notification payload.
fn parse_seq(payload: &str) -> Option<i64> {
    let tail = payload.split("(seq, ").nth(1)?;
    let digits: String = tail.chars().take_while(|c| c.is_ascii_digit() || *c == '-').collect();
    digits.parse().ok()
}

fn bench_broker_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker_load");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    // Criterion smoke: a modest loop, one rate — the full axis sweep is
    // the BENCH_TRAJECTORY-gated JSON below.
    let mut rig = build_rig(64, 17);
    group.bench_with_input(BenchmarkId::new("burst", "conns=64/rate=4"), &4usize, |b, &rate| {
        b.iter(|| {
            let result = run_load(&mut rig, rate, 16, 17);
            black_box(result.matches)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_broker_load);

fn main() {
    benches();
    // The full sweep is opt-in so a plain `cargo bench` stays a fast smoke
    // run; CI's trajectory step (and anyone refreshing the committed JSON)
    // sets BENCH_TRAJECTORY=1.
    if std::env::var_os("BENCH_TRAJECTORY").is_none() {
        return;
    }
    let mut rows: Vec<JsonRow> = Vec::new();
    for connections in CONNECTIONS {
        for rate in PUBLISH_RATES {
            let mut rig = build_rig(connections, 17);
            let result = run_load(&mut rig, rate, PUBLICATIONS, 17);
            rows.push(vec![
                ("connections", JsonValue::UInt(connections as u64)),
                ("publish_rate", JsonValue::UInt(rate as u64)),
                ("events", JsonValue::UInt(result.events)),
                ("matches", JsonValue::UInt(result.matches)),
                ("notifications", JsonValue::UInt(result.notifications)),
                ("events_per_sec", JsonValue::Float(result.events_per_sec)),
                ("notifications_per_sec", JsonValue::Float(result.notifications_per_sec)),
                ("p50_notify_ns", JsonValue::UInt(result.p50_notify_ns)),
                ("p99_notify_ns", JsonValue::UInt(result.p99_notify_ns)),
            ]);
        }
    }
    let json = render_bench_json(
        "broker_load",
        &[
            ("workload", JsonValue::Str("jobfinder".to_owned())),
            ("sub_templates", JsonValue::UInt(SUB_TEMPLATES as u64)),
            ("zipf_skew", JsonValue::Float(ZIPF_SKEW)),
            ("publications", JsonValue::UInt(PUBLICATIONS as u64)),
        ],
        &rows,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_broker.json");
    std::fs::write(path, json).expect("write BENCH_broker.json");
    println!("wrote {path}");
}
