//! E11 — networked broker under load: connections × publish rate.
//!
//! Drives the [`stopss_broker::NetBroker`] event loop end to end over
//! in-memory framed connections: N subscriber connections whose
//! subscriptions are drawn from a fixed template pool with **Zipf
//! popularity skew** ([`stopss_workload::Zipf`] — a few hot topics carry
//! most of the fan-out, per Fabret et al.), one publisher connection
//! streaming seq-stamped publications in rate-sized bursts. Each
//! notification's latency is measured from the moment the publish frame
//! is flushed into the wire to the moment the subscriber's client drains
//! the Notification frame — so the number covers the whole serving path:
//! frame decode, batched subscribe/publish dispatch, match, async notify
//! engine, outbound queue, flush, client-side reassembly.
//!
//! Besides the criterion-stub smoke run, the bench emits the
//! machine-readable perf trajectory `BENCH_broker.json` at the repo root
//! (connections × publish rate → events/sec + p50/p99 notify latency).
//! CI regenerates it, fails if either axis is missing, and the file is
//! committed so `git log` shows the trajectory PR-over-PR.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use stopss_bench::{render_bench_json, JsonRow, JsonValue};
use stopss_broker::{
    run_session_chaos, subscription_to_wire, BackpressurePolicy, ClientId, ClientMessage,
    NetBroker, NetBrokerConfig, NetClient, ServerMessage, SessionChaosConfig, SessionClient,
    SessionClientConfig, SessionConfig, TransportKind, WirePredicate, WireValue,
};
use stopss_types::{Interner, Operator, SharedInterner};
use stopss_workload::{generate_jobfinder, JobFinderDomain, Rng, WorkloadConfig, Zipf};

/// Distinct subscription shapes; connections pick one Zipf-skewed, so the
/// hot template is shared by ~20% of all connections at s = 1.0.
const SUB_TEMPLATES: usize = 64;
/// Zipf exponent for both template popularity and publication choice.
const ZIPF_SKEW: f64 = 1.0;
/// Publications streamed per (connections, rate) cell.
const PUBLICATIONS: usize = 192;
/// The committed trajectory's two axes.
const CONNECTIONS: [usize; 3] = [128, 1024, 4096];
const PUBLISH_RATES: [usize; 2] = [4, 32];
/// Hard cap on event-loop turns per pump; hitting it means lost frames.
const TURN_BUDGET: usize = 200_000;
/// The recovery axis: per-publication kill probabilities swept by the
/// session-chaos volume rows.
const KILL_RATES: [f64; 3] = [0.1, 0.3, 0.5];
/// Kill/resume cycles timed per recovery row.
const RESUME_CYCLES: usize = 12;
/// Unacknowledged notifications retained while the subscriber is down —
/// each timed resume must replay this backlog before it counts as done.
const RESUME_BACKLOG: usize = 16;

struct LoadResult {
    events: u64,
    matches: u64,
    notifications: u64,
    events_per_sec: f64,
    notifications_per_sec: f64,
    p50_notify_ns: u64,
    p99_notify_ns: u64,
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[rank]
}

/// Everything the publish loop needs after setup.
struct Rig {
    server: NetBroker,
    interner: Interner,
    subscribers: Vec<NetClient>,
    publisher: NetClient,
    publisher_id: ClientId,
    publications: Vec<stopss_types::Event>,
}

/// Connects `connections` subscribers (Zipf-skewed over the template
/// pool) plus one publisher, and settles the subscribe storm.
fn build_rig(connections: usize, seed: u64) -> Rig {
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut interner);
    let workload = generate_jobfinder(
        &domain,
        &WorkloadConfig {
            subscriptions: SUB_TEMPLATES,
            publications: PUBLICATIONS,
            seed,
            ..Default::default()
        },
    );
    let mut server = NetBroker::new(
        NetBrokerConfig::default(),
        Arc::new(domain.ontology.clone()),
        SharedInterner::from_interner(interner.clone()),
    )
    .expect("in-memory event loop always builds");

    let mut subscribers = Vec::with_capacity(connections);
    for _ in 0..connections {
        subscribers.push(NetClient::connect(&server.connector()).expect("connect"));
    }
    for (k, client) in subscribers.iter_mut().enumerate() {
        client
            .send(&ClientMessage::Register {
                name: format!("sub-{k}"),
                transport: TransportKind::Tcp,
            })
            .expect("register");
    }
    let mut ids: Vec<Option<ClientId>> = vec![None; connections];
    let mut remaining = connections;
    let mut turns = 0usize;
    while remaining > 0 {
        server.turn(Some(Duration::from_millis(1))).expect("turn");
        turns += 1;
        assert!(turns < TURN_BUDGET, "registration never settled");
        for (k, client) in subscribers.iter_mut().enumerate() {
            if ids[k].is_some() {
                continue;
            }
            for msg in client.poll_recv().expect("recv") {
                if let ServerMessage::Registered { client: id } = msg {
                    ids[k] = Some(id);
                    remaining -= 1;
                }
            }
        }
    }

    // The subscribe storm: every connection queues its Subscribe before
    // the loop turns again, so the server coalesces them into a few
    // batched control mutations.
    let zipf = Zipf::new(SUB_TEMPLATES, ZIPF_SKEW);
    let mut rng = Rng::new(seed ^ 0x5eed_701c);
    for (k, client) in subscribers.iter_mut().enumerate() {
        let template = &workload.subscriptions[zipf.sample(&mut rng)];
        client
            .send(&ClientMessage::Subscribe {
                client: ids[k].expect("registered"),
                predicates: subscription_to_wire(template, &interner),
            })
            .expect("subscribe");
    }
    let mut publisher = NetClient::connect(&server.connector()).expect("connect");
    publisher
        .send(&ClientMessage::Register { name: "publisher".into(), transport: TransportKind::Tcp })
        .expect("register");
    assert!(server.run_until_quiescent(TURN_BUDGET).expect("turn"), "setup never quiesced");
    let mut publisher_id = None;
    for msg in publisher.poll_recv().expect("recv") {
        if let ServerMessage::Registered { client } = msg {
            publisher_id = Some(client);
        }
    }
    for client in &mut subscribers {
        let _ = client.poll_recv().expect("recv"); // drain Subscribed replies
    }
    assert_eq!(server.broker().subscription_count(), connections);
    Rig {
        server,
        interner,
        subscribers,
        publisher,
        publisher_id: publisher_id.expect("publisher registered"),
        publications: workload.publications,
    }
}

/// Streams `publications` seq-stamped events in `rate`-sized bursts and
/// pumps each burst until every Published reply and every resulting
/// Notification has been drained — losses would hang, so a clean return
/// is itself a conservation check (plus the explicit stats assert).
fn run_load(rig: &mut Rig, rate: usize, publications: usize, seed: u64) -> LoadResult {
    let zipf = Zipf::new(rig.publications.len(), ZIPF_SKEW);
    let mut rng = Rng::new(seed ^ 0x10ad_9e97);
    let mut stamps: Vec<Instant> = Vec::with_capacity(publications);
    let mut latencies: Vec<u64> = Vec::new();
    let mut matches = 0u64;
    let base_sent = rig.server.stats().notifications_sent;

    let start = Instant::now();
    let mut seq = 0usize;
    while seq < publications {
        let burst = rate.min(publications - seq);
        for _ in 0..burst {
            let event = &rig.publications[zipf.sample(&mut rng)];
            let interner = &rig.interner;
            let pairs: Vec<(String, WireValue)> =
                std::iter::once(("seq".to_owned(), WireValue::Int(seq as i64)))
                    .chain(event.pairs().iter().map(|(attr, value)| {
                        (interner.resolve(*attr).to_owned(), WireValue::from_value(value, interner))
                    }))
                    .collect();
            rig.publisher
                .send(&ClientMessage::Publish { client: rig.publisher_id, pairs })
                .expect("publish");
            rig.publisher.flush().expect("flush");
            stamps.push(Instant::now());
            seq += 1;
        }
        // Pump until the burst's replies and notifications all arrive.
        let mut published_seen = 0usize;
        let mut burst_matches = 0u64;
        let mut burst_notified = 0u64;
        let mut turns = 0usize;
        while published_seen < burst || burst_notified < burst_matches {
            rig.server.turn(Some(Duration::from_millis(1))).expect("turn");
            turns += 1;
            assert!(turns < TURN_BUDGET, "burst never drained — a notification was lost");
            for client in &mut rig.subscribers {
                for msg in client.poll_recv().expect("recv") {
                    if let ServerMessage::Notification { payload, .. } = msg {
                        let n = parse_seq(&payload).expect("seq-stamped payload") as usize;
                        latencies.push(stamps[n].elapsed().as_nanos() as u64);
                        burst_notified += 1;
                    }
                }
            }
            for msg in rig.publisher.poll_recv().expect("recv") {
                if let ServerMessage::Published { matches } = msg {
                    burst_matches += u64::from(matches);
                    published_seen += 1;
                }
            }
        }
        matches += burst_matches;
    }
    let wall = start.elapsed().as_secs_f64().max(1e-9);

    let stats = rig.server.stats();
    assert_eq!(stats.notifications_dropped, 0, "drained consumers never hit backpressure");
    assert_eq!(stats.notifications_disconnected, 0);
    assert_eq!(stats.notifications_sent - base_sent, latencies.len() as u64);
    latencies.sort_unstable();
    LoadResult {
        events: publications as u64,
        matches,
        notifications: latencies.len() as u64,
        events_per_sec: publications as f64 / wall,
        notifications_per_sec: latencies.len() as f64 / wall,
        p50_notify_ns: percentile(&latencies, 0.50),
        p99_notify_ns: percentile(&latencies, 0.99),
    }
}

/// Times `cycles` full recoveries: the sessioned subscriber is killed, a
/// `backlog` of matching notifications accumulates in its replay buffer
/// while it is down, and the timer runs from the first reconnect tick
/// until the client is re-established *and* has drained the whole
/// replayed backlog. Returns the sorted per-cycle times in nanoseconds.
fn measure_resume(cycles: usize, backlog: usize, seed: u64) -> Vec<u64> {
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut interner);
    let mut server = NetBroker::new(
        NetBrokerConfig::default(),
        Arc::new(domain.ontology.clone()),
        SharedInterner::from_interner(interner.clone()),
    )
    .expect("in-memory event loop always builds");
    let mut sub = SessionClient::new(
        server.connector(),
        SessionClientConfig { seed, backoff_base: 1, backoff_cap: 1, jitter: 0.0, ping_every: 0 },
    );

    // Establish the session and its subscription.
    let mut id = None;
    let mut subscribed = false;
    let mut requested = false;
    let mut turns = 0usize;
    while !subscribed {
        turns += 1;
        assert!(turns < TURN_BUDGET, "session setup never settled");
        server.run_turns(2).expect("turn");
        for msg in sub.tick().expect("well-formed frames") {
            match msg {
                ServerMessage::Registered { client } => {
                    id = Some(client);
                    requested = false;
                }
                ServerMessage::Subscribed { .. } => subscribed = true,
                _ => {}
            }
        }
        if sub.established() && !requested {
            if let Some(client) = id {
                let subscribe = ClientMessage::Subscribe {
                    client,
                    predicates: vec![WirePredicate {
                        attr: "skill".into(),
                        op: Operator::Eq,
                        value: WireValue::Term("programming".into()),
                    }],
                };
                requested = sub.request(&subscribe).expect("send");
            } else {
                let register = ClientMessage::Register {
                    name: "resume-bench".into(),
                    transport: TransportKind::Tcp,
                };
                requested = sub.request(&register).expect("send");
            }
        }
    }
    let mut publisher = NetClient::connect(&server.connector()).expect("connect");
    publisher
        .send(&ClientMessage::Register { name: "resume-pub".into(), transport: TransportKind::Tcp })
        .expect("register");
    let mut publisher_id = None;
    while publisher_id.is_none() {
        server.run_turns(1).expect("turn");
        for msg in publisher.poll_recv().expect("recv") {
            if let ServerMessage::Registered { client } = msg {
                publisher_id = Some(client);
            }
        }
    }
    let publisher_id = publisher_id.expect("registered");

    let mut times: Vec<u64> = Vec::with_capacity(cycles);
    for cycle in 0..cycles {
        sub.kill_connection();
        server.run_turns(2).expect("turn"); // observe the EOF; detach
        for k in 0..backlog {
            publisher
                .send(&ClientMessage::Publish {
                    client: publisher_id,
                    pairs: vec![
                        ("seq".into(), WireValue::Int((cycle * backlog + k) as i64)),
                        ("skill".into(), WireValue::Term("programming".into())),
                    ],
                })
                .expect("publish");
            publisher.flush().expect("flush");
        }
        // Route the backlog into the replay buffer with broker-only
        // turns, so the timed section measures recovery, not matching.
        let mut turns = 0usize;
        loop {
            server.run_turns(1).expect("turn");
            turns += 1;
            assert!(turns < TURN_BUDGET, "backlog never drained");
            if server.deliveries_drained() {
                break;
            }
        }
        let _ = publisher.poll_recv().expect("recv");

        let start = Instant::now();
        let mut received = 0usize;
        let mut turns = 0usize;
        while !(sub.established() && received >= backlog) {
            turns += 1;
            assert!(turns < TURN_BUDGET, "resume never completed");
            server.run_turns(2).expect("turn");
            received += sub
                .tick()
                .expect("well-formed frames")
                .iter()
                .filter(|m| matches!(m, ServerMessage::Notification { .. }))
                .count();
        }
        times.push(start.elapsed().as_nanos() as u64);
        // Let the auto-ack land so the next cycle starts clean.
        server.run_turns(2).expect("turn");
    }
    let stats = server.stats();
    assert_eq!(stats.sessions_resumed, cycles as u64);
    assert_eq!(stats.replay_frames_sent, (cycles * backlog) as u64);
    times.sort_unstable();
    times
}

/// One recovery-axis volume row: the session chaos tier at `kill` over a
/// fixed workload, returning the report for its resume/replay counters.
fn run_recovery_volume(kill: f64) -> stopss_broker::SessionChaosReport {
    let mut interner = Interner::new();
    let domain = JobFinderDomain::build(&mut interner);
    let workload = generate_jobfinder(
        &domain,
        &WorkloadConfig { subscriptions: 12, publications: 48, seed: 31, ..Default::default() },
    );
    let chaos = SessionChaosConfig {
        seed: 31,
        kill,
        partition: 0.0,
        partition_ticks: 0,
        restart_every: 0,
        churn: 0.0,
        ontology_edit_every: 0,
        ticks_per_event: 1,
        backpressure: BackpressurePolicy::DropNewest,
        session: SessionConfig {
            replay_buffer_frames: 4096,
            session_ttl: 1_000_000,
            heartbeat_timeout: 0,
        },
    };
    let report = run_session_chaos(
        NetBrokerConfig::default(),
        &chaos,
        Arc::new(domain.ontology.clone()),
        SharedInterner::from_interner(interner.clone()),
        &workload.subscriptions,
        &workload.publications,
        &[],
    );
    report.assert_invariants();
    report
}

/// Pulls the leading `(seq, N)` pair back out of a notification payload.
fn parse_seq(payload: &str) -> Option<i64> {
    let tail = payload.split("(seq, ").nth(1)?;
    let digits: String = tail.chars().take_while(|c| c.is_ascii_digit() || *c == '-').collect();
    digits.parse().ok()
}

fn bench_broker_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker_load");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    // Criterion smoke: a modest loop, one rate — the full axis sweep is
    // the BENCH_TRAJECTORY-gated JSON below.
    let mut rig = build_rig(64, 17);
    group.bench_with_input(BenchmarkId::new("burst", "conns=64/rate=4"), &4usize, |b, &rate| {
        b.iter(|| {
            let result = run_load(&mut rig, rate, 16, 17);
            black_box(result.matches)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_broker_load);

fn main() {
    benches();
    // The full sweep is opt-in so a plain `cargo bench` stays a fast smoke
    // run; CI's trajectory step (and anyone refreshing the committed JSON)
    // sets BENCH_TRAJECTORY=1.
    if std::env::var_os("BENCH_TRAJECTORY").is_none() {
        return;
    }
    let mut rows: Vec<JsonRow> = Vec::new();
    for connections in CONNECTIONS {
        for rate in PUBLISH_RATES {
            let mut rig = build_rig(connections, 17);
            let result = run_load(&mut rig, rate, PUBLICATIONS, 17);
            rows.push(vec![
                ("connections", JsonValue::UInt(connections as u64)),
                ("publish_rate", JsonValue::UInt(rate as u64)),
                ("events", JsonValue::UInt(result.events)),
                ("matches", JsonValue::UInt(result.matches)),
                ("notifications", JsonValue::UInt(result.notifications)),
                ("events_per_sec", JsonValue::Float(result.events_per_sec)),
                ("notifications_per_sec", JsonValue::Float(result.notifications_per_sec)),
                ("p50_notify_ns", JsonValue::UInt(result.p50_notify_ns)),
                ("p99_notify_ns", JsonValue::UInt(result.p99_notify_ns)),
            ]);
        }
    }
    // The recovery axis: time-to-resume (kill → re-established with the
    // retained backlog fully replayed) and replayed-frame volume as the
    // kill rate rises.
    for (n, kill) in KILL_RATES.into_iter().enumerate() {
        let resume_ns = measure_resume(RESUME_CYCLES, RESUME_BACKLOG, 41 + n as u64);
        let report = run_recovery_volume(kill);
        rows.push(vec![
            ("axis", JsonValue::Str("recovery".to_owned())),
            ("kill_rate", JsonValue::Float(kill)),
            ("kills", JsonValue::UInt(report.kills)),
            ("sessions_resumed", JsonValue::UInt(report.sessions_resumed)),
            ("replay_frames", JsonValue::UInt(report.replay_frames_sent)),
            ("delivered", JsonValue::UInt(report.delivered)),
            ("acked", JsonValue::UInt(report.acked)),
            ("replayed", JsonValue::UInt(report.replayed)),
            ("resume_backlog", JsonValue::UInt(RESUME_BACKLOG as u64)),
            ("p50_resume_ns", JsonValue::UInt(percentile(&resume_ns, 0.50))),
            ("p99_resume_ns", JsonValue::UInt(percentile(&resume_ns, 0.99))),
        ]);
    }
    let json = render_bench_json(
        "broker_load",
        &[
            ("workload", JsonValue::Str("jobfinder".to_owned())),
            ("sub_templates", JsonValue::UInt(SUB_TEMPLATES as u64)),
            ("zipf_skew", JsonValue::Float(ZIPF_SKEW)),
            ("publications", JsonValue::UInt(PUBLICATIONS as u64)),
        ],
        &rows,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_broker.json");
    std::fs::write(path, json).expect("write BENCH_broker.json");
    println!("wrote {path}");
}
