//! E9 — cost of rule R1 generalization as taxonomy depth × fanout grows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stopss_bench::matcher_for;
use stopss_core::Config;
use stopss_workload::{synthetic_fixture, SyntheticConfig, SyntheticWorkload};

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for depth in [2usize, 4, 6] {
        for fanout in [2usize, 4] {
            let shape = SyntheticConfig {
                attrs: 3,
                depth,
                fanout,
                mapping_chain: 0,
                synonyms_per_concept: 0.2,
                seed: 31,
            };
            let workload =
                SyntheticWorkload { subscriptions: 1_000, publications: 200, ..Default::default() };
            let fixture = synthetic_fixture(&shape, &workload);
            let config = Config { track_provenance: false, ..Config::default() };
            let matcher = matcher_for(&fixture, config);
            let events = &fixture.publications;
            let mut idx = 0usize;
            group.bench_with_input(
                BenchmarkId::new(format!("fanout{fanout}"), depth),
                &depth,
                |b, _| {
                    b.iter(|| {
                        let event = &events[idx % events.len()];
                        idx += 1;
                        black_box(matcher.publish(event).len())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hierarchy);
criterion_main!(benches);
