//! E1/E3 — cost of the semantic stage (Figure 1 ablation; claim C1:
//! "very fast without affecting already good performance of the matching
//! algorithms").
//!
//! Publish latency per stage combination over the job-finder workload.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stopss_bench::matcher_for;
use stopss_core::{Config, StageMask};
use stopss_workload::jobfinder_fixture;

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("semantic_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let stage_sets: [(&str, StageMask); 4] = [
        ("syntactic", StageMask::syntactic()),
        ("synonym", StageMask::SYNONYM),
        ("syn+hier", StageMask::SYNONYM.with(StageMask::HIERARCHY)),
        ("all", StageMask::all()),
    ];
    for subs in [1_000usize, 10_000] {
        let fixture = jobfinder_fixture(subs, 200, 7);
        for (label, stages) in stage_sets {
            let config = Config { stages, track_provenance: false, ..Config::default() };
            let mut matcher = matcher_for(&fixture, config);
            let events = &fixture.publications;
            let mut idx = 0usize;
            group.bench_with_input(BenchmarkId::new(label, subs), &subs, |b, _| {
                b.iter(|| {
                    let event = &events[idx % events.len()];
                    idx += 1;
                    black_box(matcher.publish(event).len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
