//! E1/E3 — cost of the semantic stage (Figure 1 ablation; claim C1:
//! "very fast without affecting already good performance of the matching
//! algorithms").
//!
//! Publish latency per stage combination over the job-finder workload.
//! Besides the criterion-stub report, the bench emits the
//! machine-readable perf trajectory `BENCH_semantic.json` at the repo
//! root; CI regenerates it and the file is committed so `git log` shows
//! the trajectory PR-over-PR.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use stopss_bench::{
    matcher_for, render_bench_json, sweep_json_fields, timed_sweep, JsonRow, JsonValue,
};
use stopss_core::{Config, StageMask};
use stopss_workload::jobfinder_fixture;

const SUBSCRIPTION_COUNTS: [usize; 2] = [1_000, 10_000];
const PUBLICATIONS: usize = 200;
const WARMUP: usize = 25;

fn stage_sets() -> [(&'static str, StageMask); 4] {
    [
        ("syntactic", StageMask::syntactic()),
        ("synonym", StageMask::SYNONYM),
        ("syn+hier", StageMask::SYNONYM.with(StageMask::HIERARCHY)),
        ("all", StageMask::all()),
    ]
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("semantic_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for subs in SUBSCRIPTION_COUNTS {
        let fixture = jobfinder_fixture(subs, PUBLICATIONS, 7);
        for (label, stages) in stage_sets() {
            let config = Config { stages, track_provenance: false, ..Config::default() };
            let mut matcher = matcher_for(&fixture, config);
            let events = &fixture.publications;
            let mut idx = 0usize;
            group.bench_with_input(BenchmarkId::new(label, subs), &subs, |b, _| {
                b.iter(|| {
                    let event = &events[idx % events.len()];
                    idx += 1;
                    black_box(matcher.publish(event).len())
                })
            });
        }
    }
    group.finish();
}

/// Full-pass timed sweeps for the committed perf trajectory.
fn trajectory_rows() -> Vec<JsonRow> {
    let mut rows = Vec::new();
    for subs in SUBSCRIPTION_COUNTS {
        let fixture = jobfinder_fixture(subs, PUBLICATIONS, 7);
        for (label, stages) in stage_sets() {
            let config = Config { stages, track_provenance: false, ..Config::default() };
            let mut matcher = matcher_for(&fixture, config);
            let result = timed_sweep(&mut matcher, &fixture.publications, WARMUP);
            let mut row: JsonRow = vec![
                ("stages", JsonValue::Str(label.to_owned())),
                ("subscriptions", JsonValue::UInt(subs as u64)),
            ];
            row.extend(sweep_json_fields(&result));
            rows.push(row);
        }
    }
    rows
}

criterion_group!(benches, bench_overhead);

fn main() {
    benches();
    // Opt-in like sharding_scaling's trajectory: plain `cargo bench`
    // stays a fast smoke run.
    if std::env::var_os("BENCH_TRAJECTORY").is_none() {
        return;
    }
    let json = render_bench_json(
        "semantic_overhead",
        &[
            ("workload", JsonValue::Str("jobfinder".to_owned())),
            ("publications", JsonValue::UInt(PUBLICATIONS as u64)),
        ],
        &trajectory_rows(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_semantic.json");
    std::fs::write(path, json).expect("write BENCH_semantic.json");
    println!("wrote {path}");
}
