//! E1/E3 — cost of the semantic stage (Figure 1 ablation; claim C1:
//! "very fast without affecting already good performance of the matching
//! algorithms").
//!
//! Publish latency per stage combination over the job-finder workload,
//! plus the tier-cache axis: on a hierarchy-heavy synthetic workload,
//! provenance-on and mixed-tolerance-verify throughput with the
//! per-publication tier cache (`Config::tier_cache = true`, the default)
//! against the per-candidate oracle path (`false`) — the before/after of
//! the tier-cache PR, kept honest because both paths stay runnable.
//! Besides the criterion-stub report, the bench emits the
//! machine-readable perf trajectory `BENCH_semantic.json` at the repo
//! root; CI regenerates it and the file is committed so `git log` shows
//! the trajectory PR-over-PR.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use stopss_bench::{
    matcher_for, matcher_with_cycled_tolerances, render_bench_json, sweep_json_fields, timed_sweep,
    JsonRow, JsonValue, SweepResult,
};
use stopss_core::{Config, StageMask, Tolerance};
use stopss_workload::{
    jobfinder_fixture, synthetic_fixture, Fixture, SyntheticConfig, SyntheticWorkload,
};

const SUBSCRIPTION_COUNTS: [usize; 2] = [1_000, 10_000];
const PUBLICATIONS: usize = 200;
const WARMUP: usize = 25;

/// Hierarchy-heavy workload for the tier-cache axis: deep taxonomies, no
/// mapping chain, general-biased subscriptions — most matches are
/// `Hierarchy { distance }` classifications, the case the per-candidate
/// oracle paid a bounded distance search for.
fn hierarchy_fixture() -> Fixture {
    let shape = SyntheticConfig {
        attrs: 4,
        depth: 6,
        fanout: 2,
        synonyms_per_concept: 0.25,
        mapping_chain: 0,
        seed: 1,
    };
    let workload = SyntheticWorkload {
        subscriptions: 1_500,
        publications: 150,
        preds_per_sub: 2,
        pairs_per_event: 3,
        general_term_bias: 0.9,
        seed: 5,
    };
    synthetic_fixture(&shape, &workload)
}

/// Mixed verification classes for the verify axis (3 of 4 subscriptions
/// differ from the system tolerance and need per-candidate verification).
fn verify_cycle() -> [Tolerance; 4] {
    [
        Tolerance::full(),
        Tolerance::bounded(1),
        Tolerance::bounded(3),
        Tolerance::stages(StageMask::SYNONYM),
    ]
}

fn stage_sets() -> [(&'static str, StageMask); 4] {
    [
        ("syntactic", StageMask::syntactic()),
        ("synonym", StageMask::SYNONYM),
        ("syn+hier", StageMask::SYNONYM.with(StageMask::HIERARCHY)),
        ("all", StageMask::all()),
    ]
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("semantic_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for subs in SUBSCRIPTION_COUNTS {
        let fixture = jobfinder_fixture(subs, PUBLICATIONS, 7);
        for (label, stages) in stage_sets() {
            let config = Config { stages, track_provenance: false, ..Config::default() };
            let matcher = matcher_for(&fixture, config);
            let events = &fixture.publications;
            let mut idx = 0usize;
            group.bench_with_input(BenchmarkId::new(label, subs), &subs, |b, _| {
                b.iter(|| {
                    let event = &events[idx % events.len()];
                    idx += 1;
                    black_box(matcher.publish(event).len())
                })
            });
        }
    }
    group.finish();
}

/// Full-pass timed sweeps for the committed perf trajectory.
fn trajectory_rows() -> Vec<JsonRow> {
    let mut rows = Vec::new();
    for subs in SUBSCRIPTION_COUNTS {
        let fixture = jobfinder_fixture(subs, PUBLICATIONS, 7);
        for (label, stages) in stage_sets() {
            let config = Config { stages, track_provenance: false, ..Config::default() };
            let matcher = matcher_for(&fixture, config);
            let result = timed_sweep(&matcher, &fixture.publications, WARMUP);
            let mut row: JsonRow = vec![
                ("workload", JsonValue::Str("jobfinder".to_owned())),
                ("axis", JsonValue::Str("stages".to_owned())),
                ("stages", JsonValue::Str(label.to_owned())),
                ("subscriptions", JsonValue::UInt(subs as u64)),
            ];
            row.extend(sweep_json_fields(&result));
            rows.push(row);
        }
    }
    rows
}

fn tier_row(axis: &str, path: &str, result: &SweepResult) -> JsonRow {
    let mut row: JsonRow = vec![
        ("workload", JsonValue::Str("synthetic-hier".to_owned())),
        ("axis", JsonValue::Str(axis.to_owned())),
        ("path", JsonValue::Str(path.to_owned())),
    ];
    row.extend(sweep_json_fields(result));
    row
}

/// The tier-cache axis: cached vs oracle per-candidate work on the
/// hierarchy-heavy workload, for provenance classification and for
/// mixed-tolerance verification. Returns the rows plus the provenance-on
/// cached-over-oracle throughput ratio (the PR's headline number).
fn tier_cache_rows() -> (Vec<JsonRow>, f64) {
    let fixture = hierarchy_fixture();
    let stages = StageMask::SYNONYM.with(StageMask::HIERARCHY);
    let warmup = 15;
    let mut rows = Vec::new();

    // Provenance axis: off / on-cached / on-oracle, uniform tolerance.
    let base = Config { stages, ..Config::default() };
    let off = timed_sweep(
        &matcher_for(&fixture, base.with_provenance(false)),
        &fixture.publications,
        warmup,
    );
    rows.push(tier_row("provenance-off", "-", &off));
    let cached = timed_sweep(&matcher_for(&fixture, base), &fixture.publications, warmup);
    rows.push(tier_row("provenance-on", "cached", &cached));
    let oracle = timed_sweep(
        &matcher_for(&fixture, base.with_tier_cache(false)),
        &fixture.publications,
        warmup,
    );
    rows.push(tier_row("provenance-on", "oracle", &oracle));
    let provenance_speedup =
        if cached.ns_per_event > 0.0 { oracle.ns_per_event / cached.ns_per_event } else { 0.0 };

    // Verify axis: mixed per-subscription tolerances, provenance off so
    // the rows isolate verification cost.
    let verify_base = base.with_provenance(false);
    let cycle = verify_cycle();
    let v_cached = timed_sweep(
        &matcher_with_cycled_tolerances(&fixture, verify_base, &cycle),
        &fixture.publications,
        warmup,
    );
    rows.push(tier_row("verify-mixed", "cached", &v_cached));
    let v_oracle = timed_sweep(
        &matcher_with_cycled_tolerances(&fixture, verify_base.with_tier_cache(false), &cycle),
        &fixture.publications,
        warmup,
    );
    rows.push(tier_row("verify-mixed", "oracle", &v_oracle));

    (rows, provenance_speedup)
}

criterion_group!(benches, bench_overhead);

fn main() {
    benches();
    // Opt-in like sharding_scaling's trajectory: plain `cargo bench`
    // stays a fast smoke run.
    if std::env::var_os("BENCH_TRAJECTORY").is_none() {
        return;
    }
    let mut rows = trajectory_rows();
    let (tier_rows, provenance_speedup) = tier_cache_rows();
    rows.extend(tier_rows);
    let json = render_bench_json(
        "semantic_overhead",
        &[
            ("workload", JsonValue::Str("jobfinder + synthetic-hier".to_owned())),
            ("publications", JsonValue::UInt(PUBLICATIONS as u64)),
            // Provenance-on publish throughput, tier cache over the
            // per-candidate oracle path, on the hierarchy-heavy workload.
            ("provenance_cached_speedup", JsonValue::Float(provenance_speedup)),
        ],
        &rows,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_semantic.json");
    std::fs::write(path, json).expect("write BENCH_semantic.json");
    println!("wrote {path}");
}
