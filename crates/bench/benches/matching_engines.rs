//! E5 — syntactic engine comparison (the paper's substrate, refs [1], [4]).
//!
//! Publish latency of the four engines on the job-finder workload with all
//! semantic stages disabled, across subscription counts.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stopss_bench::matcher_for;
use stopss_core::{Config, StageMask};
use stopss_matching::EngineKind;
use stopss_workload::jobfinder_fixture;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_engines");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for subs in [1_000usize, 10_000] {
        let fixture = jobfinder_fixture(subs, 200, 11);
        for engine in EngineKind::ALL {
            let config = Config {
                engine,
                stages: StageMask::syntactic(),
                track_provenance: false,
                ..Config::default()
            };
            let matcher = matcher_for(&fixture, config);
            let events = &fixture.publications;
            let mut idx = 0usize;
            group.bench_with_input(BenchmarkId::new(engine.name(), subs), &subs, |b, _| {
                b.iter(|| {
                    let event = &events[idx % events.len()];
                    idx += 1;
                    black_box(matcher.publish(event).len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
