//! E4 — claim C2: "hash structures to quickly locate relevant
//! information" keep semantic lookups flat as the ontology grows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stopss_ontology::SemanticSource;
use stopss_types::{Event, Interner, Value};
use stopss_workload::{build_synthetic, Rng, SyntheticConfig};

fn bench_ontology(c: &mut Criterion) {
    let mut group = c.benchmark_group("ontology_scaling");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    for depth in [4usize, 8] {
        let mut interner = Interner::new();
        let shape = SyntheticConfig {
            attrs: 1,
            depth,
            fanout: 4,
            synonyms_per_concept: 0.5,
            mapping_chain: 4,
            seed: 3,
        };
        let domain = build_synthetic(&mut interner, &shape);
        let concepts = domain.concept_count();
        let leaves = domain.leaves(0).to_vec();
        let root = domain.level(0, 0)[0];
        let aliases = domain.aliases.clone();
        let ontology = domain.ontology.clone();
        let _ = ontology.is_a(leaves[0], root); // warm the ancestor cache

        let mut rng = Rng::new(1);
        group.bench_with_input(BenchmarkId::new("synonym_resolve", concepts), &concepts, |b, _| {
            b.iter(|| {
                let term = *rng.pick(&aliases);
                black_box(ontology.resolve_synonym(term))
            })
        });
        let mut rng = Rng::new(2);
        group.bench_with_input(BenchmarkId::new("is_a", concepts), &concepts, |b, _| {
            b.iter(|| {
                let leaf = *rng.pick(&leaves);
                black_box(ontology.is_a(leaf, root))
            })
        });
        let mut rng = Rng::new(3);
        group.bench_with_input(BenchmarkId::new("ancestor_walk", concepts), &concepts, |b, _| {
            b.iter(|| {
                let leaf = *rng.pick(&leaves);
                let mut count = 0u32;
                ontology.for_each_ancestor(leaf, &mut |_, _| count += 1);
                black_box(count)
            })
        });
        let chain_start = domain.chain_start.unwrap();
        let event = Event::new().with(chain_start, Value::Int(1));
        group.bench_with_input(BenchmarkId::new("mapping_lookup", concepts), &concepts, |b, _| {
            b.iter(|| {
                let mut fired = 0u32;
                ontology.apply_mappings(&event, &interner, 0, &mut |_, _| fired += 1);
                black_box(fired)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ontology);
criterion_main!(benches);
