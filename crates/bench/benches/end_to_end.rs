//! E2 — Figure 2 end to end: broker publish → match → notification
//! enqueue, in semantic and syntactic mode.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stopss_broker::{Broker, BrokerConfig, TransportKind};
use stopss_core::Config;
use stopss_workload::jobfinder_fixture;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for semantic in [true, false] {
        let fixture = jobfinder_fixture(1_000, 200, 42);
        let broker = Broker::new(
            BrokerConfig {
                udp_loss: 0.02,
                matcher: Config { track_provenance: false, ..Config::default() },
                ..Default::default()
            },
            fixture.source.clone(),
            fixture.interner.clone(),
        );
        broker.set_semantic_mode(semantic);
        let clients: Vec<_> = TransportKind::ALL
            .iter()
            .map(|kind| broker.register_client(format!("co-{}", kind.name()), *kind))
            .collect();
        for (k, sub) in fixture.subscriptions.iter().enumerate() {
            broker.subscribe(clients[k % clients.len()], sub.predicates().to_vec()).unwrap();
        }
        let events = fixture.publications.clone();
        let mut idx = 0usize;
        let label = if semantic { "semantic" } else { "syntactic" };
        group.bench_with_input(BenchmarkId::new("publish", label), &label, |b, _| {
            b.iter(|| {
                let event = &events[idx % events.len()];
                idx += 1;
                black_box(broker.publish(event))
            })
        });
        // Broker dropped here; its Drop joins the notification worker.
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
