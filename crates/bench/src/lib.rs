//! Shared infrastructure for the S-ToPSS benchmark harness.
//!
//! The Criterion benches (one per experiment) and the `experiments`
//! binary (which regenerates every table in `EXPERIMENTS.md`) build their
//! fixtures and matchers through this crate so that both measure exactly
//! the same configurations.

#![warn(missing_docs)]

use std::time::Instant;

use stopss_core::{Config, SToPSS, ShardedSToPSS};
use stopss_types::{Event, SubId, Subscription};
use stopss_workload::Fixture;

/// Builds a matcher over a fixture's ontology and loads its subscriptions.
pub fn matcher_for(fixture: &Fixture, config: Config) -> SToPSS {
    fixture.matcher(config)
}

/// Builds a matcher with one tolerance applied to every subscription.
pub fn matcher_with_tolerance(
    fixture: &Fixture,
    config: Config,
    tolerance: stopss_core::Tolerance,
) -> SToPSS {
    let mut matcher = SToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
    for sub in &fixture.subscriptions {
        matcher.subscribe_with_tolerance(sub.clone(), tolerance);
    }
    matcher
}

/// Result of one timed publication sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepResult {
    /// Total matches across all publications.
    pub matches: u64,
    /// Mean publish latency in nanoseconds.
    pub ns_per_event: f64,
    /// Publications per second implied by the mean.
    pub events_per_sec: f64,
    /// Derived events fed to the engine during the timed pass.
    pub derived_events: u64,
    /// Publications whose processing hit a resource cap.
    pub truncations: u64,
}

/// Publishes every event once (after one untimed warm-up pass over the
/// first `warmup` events) and reports matches and mean latency.
pub fn timed_sweep(matcher: &mut SToPSS, events: &[Event], warmup: usize) -> SweepResult {
    for event in events.iter().take(warmup) {
        let _ = matcher.publish(event);
    }
    let stats_before = *matcher.stats();
    let start = Instant::now();
    let mut matches = 0u64;
    for event in events {
        matches += matcher.publish(event).len() as u64;
    }
    let elapsed = start.elapsed();
    let stats_after = *matcher.stats();
    let ns_per_event = elapsed.as_nanos() as f64 / events.len().max(1) as f64;
    SweepResult {
        matches,
        ns_per_event,
        events_per_sec: if ns_per_event > 0.0 { 1e9 / ns_per_event } else { 0.0 },
        derived_events: stats_after.derived_events - stats_before.derived_events,
        truncations: stats_after.truncations - stats_before.truncations,
    }
}

/// Builds a sharded matcher (shard count from `config.shards`) over a
/// fixture's ontology and loads its subscriptions.
pub fn sharded_matcher_for(fixture: &Fixture, config: Config) -> ShardedSToPSS {
    fixture.sharded_matcher(config)
}

/// Publishes every event through `publish_batch` in batches of
/// `batch_size` (after one untimed warm-up pass over the first `warmup`
/// events) and reports matches and mean per-event latency — the sharded
/// counterpart of [`timed_sweep`].
pub fn timed_batch_sweep(
    matcher: &mut ShardedSToPSS,
    events: &[Event],
    batch_size: usize,
    warmup: usize,
) -> SweepResult {
    let warm = &events[..warmup.min(events.len())];
    if !warm.is_empty() {
        let _ = matcher.publish_batch(warm);
    }
    let stats_before = matcher.stats();
    let start = Instant::now();
    let mut matches = 0u64;
    for batch in events.chunks(batch_size.max(1)) {
        matches += matcher.publish_batch(batch).iter().map(|m| m.len() as u64).sum::<u64>();
    }
    let elapsed = start.elapsed();
    let stats_after = matcher.stats();
    let ns_per_event = elapsed.as_nanos() as f64 / events.len().max(1) as f64;
    SweepResult {
        matches,
        ns_per_event,
        events_per_sec: if ns_per_event > 0.0 { 1e9 / ns_per_event } else { 0.0 },
        derived_events: stats_after.derived_events - stats_before.derived_events,
        truncations: stats_after.truncations - stats_before.truncations,
    }
}

/// Match sets per event, for recall comparisons between configurations.
pub fn match_sets(matcher: &mut SToPSS, events: &[Event]) -> Vec<Vec<SubId>> {
    events
        .iter()
        .map(|event| {
            let mut ids: Vec<SubId> = matcher.publish(event).iter().map(|m| m.sub).collect();
            ids.sort_unstable();
            ids
        })
        .collect()
}

/// Recall of `got` against reference match sets: matched pairs found /
/// matched pairs expected. 1.0 when the reference is empty.
pub fn recall(got: &[Vec<SubId>], reference: &[Vec<SubId>]) -> f64 {
    let expected: usize = reference.iter().map(Vec::len).sum();
    if expected == 0 {
        return 1.0;
    }
    let mut found = 0usize;
    for (g, r) in got.iter().zip(reference) {
        found += r.iter().filter(|id| g.binary_search(id).is_ok()).count();
    }
    found as f64 / expected as f64
}

/// Total number of matched (event, subscription) pairs.
pub fn total_matches(sets: &[Vec<SubId>]) -> usize {
    sets.iter().map(Vec::len).sum()
}

/// A deterministic prefix of a fixture's subscriptions (for sweeps over
/// subscription count).
pub fn take_subscriptions(fixture: &Fixture, n: usize) -> Vec<Subscription> {
    fixture.subscriptions.iter().take(n).cloned().collect()
}

/// Times `f` over `iters` runs and returns mean nanoseconds.
pub fn time_mean_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_workload::jobfinder_fixture;

    #[test]
    fn timed_sweep_counts_matches() {
        let fixture = jobfinder_fixture(50, 50, 3);
        let mut matcher = matcher_for(&fixture, Config::default().with_provenance(false));
        let result = timed_sweep(&mut matcher, &fixture.publications, 5);
        assert!(result.ns_per_event > 0.0);
        assert!(result.events_per_sec > 0.0);
        assert_eq!(result.derived_events, 50, "generalized strategy: one per event");
        assert_eq!(result.truncations, 0);
    }

    #[test]
    fn timed_batch_sweep_agrees_with_sequential_sweep() {
        let fixture = jobfinder_fixture(50, 50, 3);
        let config = Config::default().with_provenance(false).with_shards(4);
        let mut single = matcher_for(&fixture, config);
        let sequential = timed_sweep(&mut single, &fixture.publications, 5);
        let mut sharded = sharded_matcher_for(&fixture, config);
        let batched = timed_batch_sweep(&mut sharded, &fixture.publications, 8, 5);
        assert_eq!(batched.matches, sequential.matches);
        assert_eq!(batched.derived_events, sequential.derived_events);
        assert_eq!(batched.truncations, sequential.truncations);
        assert!(batched.ns_per_event > 0.0);
    }

    #[test]
    fn recall_is_one_against_self_and_less_for_subsets() {
        let a = vec![vec![SubId(1), SubId(2)], vec![SubId(3)]];
        let b = vec![vec![SubId(1)], vec![SubId(3)]];
        assert_eq!(recall(&a, &a), 1.0);
        assert!((recall(&b, &a) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(recall(&a, &b), 1.0, "supersets have full recall");
        assert_eq!(recall(&[], &[]), 1.0);
        assert_eq!(total_matches(&a), 3);
    }

    #[test]
    fn match_sets_are_sorted() {
        let fixture = jobfinder_fixture(30, 20, 5);
        let mut matcher = matcher_for(&fixture, Config::default().with_provenance(false));
        for set in match_sets(&mut matcher, &fixture.publications) {
            assert!(set.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn take_subscriptions_prefix() {
        let fixture = jobfinder_fixture(30, 1, 5);
        let subs = take_subscriptions(&fixture, 10);
        assert_eq!(subs.len(), 10);
        assert_eq!(subs[0], fixture.subscriptions[0]);
    }
}
