//! Shared infrastructure for the S-ToPSS benchmark harness.
//!
//! The Criterion benches (one per experiment) and the `experiments`
//! binary (which regenerates every table in `EXPERIMENTS.md`) build their
//! fixtures and matchers through this crate so that both measure exactly
//! the same configurations.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::Instant;

use stopss_core::{shard_of, Config, Match, SToPSS, ShardedSToPSS};
use stopss_types::{Event, SubId, Subscription};
use stopss_workload::Fixture;

/// Builds a matcher over a fixture's ontology and loads its subscriptions.
pub fn matcher_for(fixture: &Fixture, config: Config) -> SToPSS {
    fixture.matcher(config)
}

/// Builds a matcher with one tolerance applied to every subscription.
pub fn matcher_with_tolerance(
    fixture: &Fixture,
    config: Config,
    tolerance: stopss_core::Tolerance,
) -> SToPSS {
    let matcher = SToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
    for sub in &fixture.subscriptions {
        matcher.subscribe_with_tolerance(sub.clone(), tolerance);
    }
    matcher
}

/// Builds a matcher with per-subscription tolerances cycled from
/// `cycle` — the mixed-tolerance verify workload of the
/// `semantic_overhead` bench's cached-vs-oracle axis.
pub fn matcher_with_cycled_tolerances(
    fixture: &Fixture,
    config: Config,
    cycle: &[stopss_core::Tolerance],
) -> SToPSS {
    assert!(!cycle.is_empty(), "need at least one tolerance");
    let matcher = SToPSS::new(config, fixture.source.clone(), fixture.interner.clone());
    for (k, sub) in fixture.subscriptions.iter().enumerate() {
        matcher.subscribe_with_tolerance(sub.clone(), cycle[k % cycle.len()]);
    }
    matcher
}

/// Result of one timed publication sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepResult {
    /// Total matches across all publications.
    pub matches: u64,
    /// Mean publish latency in nanoseconds.
    pub ns_per_event: f64,
    /// Publications per second implied by the mean.
    pub events_per_sec: f64,
    /// Derived events fed to the engine during the timed pass.
    pub derived_events: u64,
    /// Publications whose processing hit a resource cap.
    pub truncations: u64,
}

/// Publishes every event once (after one untimed warm-up pass over the
/// first `warmup` events) and reports matches and mean latency.
pub fn timed_sweep(matcher: &SToPSS, events: &[Event], warmup: usize) -> SweepResult {
    for event in events.iter().take(warmup) {
        let _ = matcher.publish(event);
    }
    let stats_before = matcher.stats();
    let start = Instant::now();
    let mut matches = 0u64;
    for event in events {
        matches += matcher.publish(event).len() as u64;
    }
    let elapsed = start.elapsed();
    let stats_after = matcher.stats();
    let ns_per_event = elapsed.as_nanos() as f64 / events.len().max(1) as f64;
    SweepResult {
        matches,
        ns_per_event,
        events_per_sec: if ns_per_event > 0.0 { 1e9 / ns_per_event } else { 0.0 },
        derived_events: stats_after.derived_events - stats_before.derived_events,
        truncations: stats_after.truncations - stats_before.truncations,
    }
}

/// Builds a sharded matcher (shard count from `config.shards`) over a
/// fixture's ontology and loads its subscriptions.
pub fn sharded_matcher_for(fixture: &Fixture, config: Config) -> ShardedSToPSS {
    fixture.sharded_matcher(config)
}

/// Publishes every event through `publish_batch` in batches of
/// `batch_size` (after one untimed warm-up pass over the first `warmup`
/// events) and reports matches and mean per-event latency — the sharded
/// counterpart of [`timed_sweep`].
pub fn timed_batch_sweep(
    matcher: &ShardedSToPSS,
    events: &[Event],
    batch_size: usize,
    warmup: usize,
) -> SweepResult {
    let warm = &events[..warmup.min(events.len())];
    if !warm.is_empty() {
        let _ = matcher.publish_batch(warm);
    }
    let stats_before = matcher.stats();
    let start = Instant::now();
    let mut matches = 0u64;
    for batch in events.chunks(batch_size.max(1)) {
        matches += matcher.publish_batch(batch).iter().map(|m| m.len() as u64).sum::<u64>();
    }
    let elapsed = start.elapsed();
    let stats_after = matcher.stats();
    let ns_per_event = elapsed.as_nanos() as f64 / events.len().max(1) as f64;
    SweepResult {
        matches,
        ns_per_event,
        events_per_sec: if ns_per_event > 0.0 { 1e9 / ns_per_event } else { 0.0 },
        derived_events: stats_after.derived_events - stats_before.derived_events,
        truncations: stats_after.truncations - stats_before.truncations,
    }
}

/// Publishes every event through the explicit two-stage **barrier** —
/// `frontend().prepare_batch()` then `publish_prepared_batch()`, no
/// stage overlap — in batches of `batch_size`. The comparison
/// counterpart of [`timed_batch_sweep`] (whose `publish_batch` pipelines
/// stage 1 of chunk k+1 against stage 2 of chunk k): together they form
/// the pipelined-vs-barrier axis of the `sharding_scaling` trajectory.
pub fn timed_barrier_batch_sweep(
    matcher: &ShardedSToPSS,
    events: &[Event],
    batch_size: usize,
    warmup: usize,
) -> SweepResult {
    let frontend = matcher.frontend();
    let warm = &events[..warmup.min(events.len())];
    if !warm.is_empty() {
        let prepared = frontend.prepare_batch(warm);
        let _ = matcher.publish_prepared_batch(&prepared);
    }
    let stats_before = matcher.stats();
    let start = Instant::now();
    let mut matches = 0u64;
    for batch in events.chunks(batch_size.max(1)) {
        let prepared = frontend.prepare_batch(batch);
        matches += matcher
            .publish_prepared_batch(&prepared)
            .iter()
            .map(|r| r.matches.len() as u64)
            .sum::<u64>();
    }
    let elapsed = start.elapsed();
    let stats_after = matcher.stats();
    let ns_per_event = elapsed.as_nanos() as f64 / events.len().max(1) as f64;
    SweepResult {
        matches,
        ns_per_event,
        events_per_sec: if ns_per_event > 0.0 { 1e9 / ns_per_event } else { 0.0 },
        derived_events: stats_after.derived_events - stats_before.derived_events,
        truncations: stats_after.truncations - stats_before.truncations,
    }
}

/// The PR-2 replicated sharding design, kept as a reference baseline: N
/// complete [`SToPSS`] instances partitioned by [`shard_of`], each
/// recomputing the *full* semantic pass (closure / materialization) for
/// every publication, fanned out on scoped worker threads.
///
/// The production [`ShardedSToPSS`] hoists the event-side pass into a
/// shared front-end; this harness preserves the replicated architecture
/// so the `sharding_scaling` bench can report the hoisted-vs-replicated
/// comparison axis honestly, and so differential tests can pin that both
/// designs produce identical match sets.
pub struct ReplicatedSharded {
    shards: Vec<SToPSS>,
    workers: usize,
}

impl ReplicatedSharded {
    /// Builds the replicated harness over a fixture: subscriptions are
    /// partitioned across `config.effective_shards()` full matchers.
    pub fn new(fixture: &Fixture, config: Config) -> Self {
        let shards_n = config.effective_shards();
        let shards: Vec<SToPSS> = (0..shards_n)
            .map(|_| SToPSS::new(config, fixture.source.clone(), fixture.interner.clone()))
            .collect();
        for sub in &fixture.subscriptions {
            shards[shard_of(sub.id(), shards_n)].subscribe(sub.clone());
        }
        ReplicatedSharded { shards, workers: config.effective_parallelism() }
    }

    /// Publishes a batch the PR-2 way: every shard runs the complete
    /// publication pipeline (semantic pass *and* matching) for every
    /// event; per-shard match sets merge sorted by `SubId`.
    pub fn publish_batch(&mut self, events: &[Event]) -> Vec<Vec<Match>> {
        if events.is_empty() {
            return Vec::new();
        }
        let per_shard: Vec<Vec<Vec<Match>>> = if self.workers <= 1 || self.shards.len() <= 1 {
            self.shards.iter_mut().map(|s| s.publish_batch(events)).collect()
        } else {
            let chunk = self.shards.len().div_ceil(self.workers);
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .chunks_mut(chunk)
                    .map(|chunk_shards| {
                        scope.spawn(move |_| {
                            chunk_shards
                                .iter_mut()
                                .map(|s| s.publish_batch(events))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().expect("shard worker panicked")).collect()
            })
            .expect("shard scope panicked")
        };
        let mut merged: Vec<Vec<Match>> = Vec::with_capacity(events.len());
        for k in 0..events.len() {
            let mut matches: Vec<Match> = Vec::new();
            for shard_sets in &per_shard {
                matches.extend_from_slice(&shard_sets[k]);
            }
            matches.sort_unstable_by_key(|m| m.sub);
            merged.push(matches);
        }
        merged
    }

    /// Derived events fed to engines across all shards (each shard
    /// replicates the event-side pass, so this is `shards ×` the hoisted
    /// figure).
    pub fn total_derived_events(&self) -> u64 {
        self.shards.iter().map(|s| s.stats().derived_events).sum()
    }

    /// Publications whose semantic pass hit a resource bound, summed
    /// across the replicated shards.
    pub fn total_truncations(&self) -> u64 {
        self.shards.iter().map(|s| s.stats().truncations).sum()
    }
}

/// Publishes every event through the replicated baseline in batches of
/// `batch_size` (after one untimed warm-up pass over the first `warmup`
/// events) — the comparison counterpart of [`timed_batch_sweep`].
pub fn timed_replicated_batch_sweep(
    matcher: &mut ReplicatedSharded,
    events: &[Event],
    batch_size: usize,
    warmup: usize,
) -> SweepResult {
    let warm = &events[..warmup.min(events.len())];
    if !warm.is_empty() {
        let _ = matcher.publish_batch(warm);
    }
    let derived_before = matcher.total_derived_events();
    let truncations_before = matcher.total_truncations();
    let start = Instant::now();
    let mut matches = 0u64;
    for batch in events.chunks(batch_size.max(1)) {
        matches += matcher.publish_batch(batch).iter().map(|m| m.len() as u64).sum::<u64>();
    }
    let elapsed = start.elapsed();
    let ns_per_event = elapsed.as_nanos() as f64 / events.len().max(1) as f64;
    SweepResult {
        matches,
        ns_per_event,
        events_per_sec: if ns_per_event > 0.0 { 1e9 / ns_per_event } else { 0.0 },
        derived_events: matcher.total_derived_events() - derived_before,
        truncations: matcher.total_truncations() - truncations_before,
    }
}

/// A scalar value in the perf-trajectory JSON reports.
#[derive(Clone, Debug)]
pub enum JsonValue {
    /// A string (quoted and escaped).
    Str(String),
    /// An unsigned integer.
    UInt(u64),
    /// A float (emitted with one decimal, enough for nanosecond means).
    Float(f64),
}

impl JsonValue {
    fn render(&self, out: &mut String) {
        match self {
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f:.1}");
                } else {
                    out.push_str("null");
                }
            }
        }
    }
}

/// One measurement row of a perf-trajectory report: ordered
/// `(field, value)` pairs.
pub type JsonRow = Vec<(&'static str, JsonValue)>;

/// The [`SweepResult`] counters as JSON fields, appended to a row's
/// identifying fields by the bench emitters.
pub fn sweep_json_fields(result: &SweepResult) -> JsonRow {
    vec![
        ("matches", JsonValue::UInt(result.matches)),
        ("ns_per_event", JsonValue::Float(result.ns_per_event)),
        ("events_per_sec", JsonValue::Float(result.events_per_sec)),
        ("derived_events", JsonValue::UInt(result.derived_events)),
        ("truncations", JsonValue::UInt(result.truncations)),
    ]
}

/// Renders a perf-trajectory report: a top-level object with the bench
/// name, free-form context fields, and a `rows` array. Hand-rolled so the
/// offline workspace needs no serde; committed at the repo root as
/// `BENCH_<name>.json` so `git log` shows the trajectory PR-over-PR.
pub fn render_bench_json(bench: &str, context: &[(&str, JsonValue)], rows: &[JsonRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = write!(out, "  \"bench\": ");
    JsonValue::Str(bench.to_owned()).render(&mut out);
    for (name, value) in context {
        let _ = write!(out, ",\n  \"{name}\": ");
        value.render(&mut out);
    }
    out.push_str(",\n  \"rows\": [\n");
    for (k, row) in rows.iter().enumerate() {
        out.push_str("    {");
        for (j, (name, value)) in row.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": ");
            value.render(&mut out);
        }
        out.push('}');
        if k + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Match sets per event, for recall comparisons between configurations.
pub fn match_sets(matcher: &SToPSS, events: &[Event]) -> Vec<Vec<SubId>> {
    events
        .iter()
        .map(|event| {
            let mut ids: Vec<SubId> = matcher.publish(event).iter().map(|m| m.sub).collect();
            ids.sort_unstable();
            ids
        })
        .collect()
}

/// Recall of `got` against reference match sets: matched pairs found /
/// matched pairs expected. 1.0 when the reference is empty.
pub fn recall(got: &[Vec<SubId>], reference: &[Vec<SubId>]) -> f64 {
    let expected: usize = reference.iter().map(Vec::len).sum();
    if expected == 0 {
        return 1.0;
    }
    let mut found = 0usize;
    for (g, r) in got.iter().zip(reference) {
        found += r.iter().filter(|id| g.binary_search(id).is_ok()).count();
    }
    found as f64 / expected as f64
}

/// Total number of matched (event, subscription) pairs.
pub fn total_matches(sets: &[Vec<SubId>]) -> usize {
    sets.iter().map(Vec::len).sum()
}

/// A deterministic prefix of a fixture's subscriptions (for sweeps over
/// subscription count).
pub fn take_subscriptions(fixture: &Fixture, n: usize) -> Vec<Subscription> {
    fixture.subscriptions.iter().take(n).cloned().collect()
}

/// Times `f` over `iters` runs and returns mean nanoseconds.
pub fn time_mean_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_workload::jobfinder_fixture;

    #[test]
    fn timed_sweep_counts_matches() {
        let fixture = jobfinder_fixture(50, 50, 3);
        let matcher = matcher_for(&fixture, Config::default().with_provenance(false));
        let result = timed_sweep(&matcher, &fixture.publications, 5);
        assert!(result.ns_per_event > 0.0);
        assert!(result.events_per_sec > 0.0);
        assert_eq!(result.derived_events, 50, "generalized strategy: one per event");
        assert_eq!(result.truncations, 0);
    }

    #[test]
    fn cycled_tolerances_change_match_sets_and_paths_agree() {
        use stopss_core::Tolerance;
        let fixture = jobfinder_fixture(60, 40, 3);
        let cycle = [Tolerance::full(), Tolerance::bounded(1), Tolerance::syntactic()];
        let config = Config::default().with_provenance(false);
        let cached = matcher_with_cycled_tolerances(&fixture, config, &cycle);
        let oracle =
            matcher_with_cycled_tolerances(&fixture, config.with_tier_cache(false), &cycle);
        let uniform = matcher_with_tolerance(&fixture, config, Tolerance::full());
        let mut cached_total = 0usize;
        let mut oracle_total = 0usize;
        let mut uniform_total = 0usize;
        for event in &fixture.publications {
            cached_total += cached.publish(event).len();
            oracle_total += oracle.publish(event).len();
            uniform_total += uniform.publish(event).len();
        }
        assert_eq!(cached_total, oracle_total, "cached and oracle verify paths agree");
        assert!(cached_total < uniform_total, "stricter tolerances must drop matches");
        assert!(cached.stats().verifications > 0);
    }

    #[test]
    fn timed_batch_sweep_agrees_with_sequential_sweep() {
        let fixture = jobfinder_fixture(50, 50, 3);
        let config = Config::default().with_provenance(false).with_shards(4);
        let single = matcher_for(&fixture, config);
        let sequential = timed_sweep(&single, &fixture.publications, 5);
        let sharded = sharded_matcher_for(&fixture, config);
        let batched = timed_batch_sweep(&sharded, &fixture.publications, 8, 5);
        assert_eq!(batched.matches, sequential.matches);
        assert_eq!(batched.derived_events, sequential.derived_events);
        assert_eq!(batched.truncations, sequential.truncations);
        assert!(batched.ns_per_event > 0.0);
    }

    #[test]
    fn barrier_sweep_agrees_with_pipelined_sweep() {
        let fixture = jobfinder_fixture(50, 80, 3);
        let config = Config::default().with_provenance(false).with_shards(4);
        let single = matcher_for(&fixture, config);
        let sequential = timed_sweep(&single, &fixture.publications, 5);
        // Batch size above the pipeline chunk so publish_batch overlaps.
        let pipelined = sharded_matcher_for(&fixture, config);
        let p = timed_batch_sweep(&pipelined, &fixture.publications, 40, 5);
        let barrier = sharded_matcher_for(&fixture, config);
        let b = timed_barrier_batch_sweep(&barrier, &fixture.publications, 40, 5);
        assert_eq!(p.matches, sequential.matches);
        assert_eq!(b.matches, sequential.matches);
        assert_eq!(p.derived_events, b.derived_events);
        assert_eq!(p.truncations, b.truncations);
        assert!(b.ns_per_event > 0.0);
    }

    #[test]
    fn replicated_baseline_agrees_with_hoisted_sharded() {
        let fixture = jobfinder_fixture(60, 30, 3);
        let config = Config::default().with_provenance(false).with_shards(4);
        let hoisted = sharded_matcher_for(&fixture, config);
        let mut replicated = ReplicatedSharded::new(&fixture, config);
        let want = hoisted.publish_batch(&fixture.publications);
        let got = replicated.publish_batch(&fixture.publications);
        assert_eq!(got, want, "both sharding designs must produce identical match sets");
        // The replicated design pays the event-side pass once per shard.
        assert_eq!(replicated.total_derived_events(), 4 * hoisted.stats().derived_events);
        let sweep = timed_replicated_batch_sweep(&mut replicated, &fixture.publications, 8, 5);
        assert!(sweep.ns_per_event > 0.0);
        assert_eq!(sweep.derived_events, 4 * hoisted.stats().derived_events);
    }

    #[test]
    fn bench_json_renders_rows_and_escapes() {
        let rows = vec![
            vec![
                ("engine", JsonValue::Str("counting".into())),
                ("shards", JsonValue::UInt(2)),
                ("ns_per_event", JsonValue::Float(1234.56)),
            ],
            vec![("engine", JsonValue::Str("a\"b".into()))],
        ];
        let json =
            render_bench_json("sharding", &[("workload", JsonValue::Str("job".into()))], &rows);
        assert!(json.contains("\"bench\": \"sharding\""));
        assert!(json.contains("\"workload\": \"job\""));
        assert!(json.contains("\"shards\": 2"));
        assert!(json.contains("\"ns_per_event\": 1234.6"));
        assert!(json.contains("\\\"b"), "quotes must be escaped: {json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn sweep_json_fields_cover_all_counters() {
        let fixture = jobfinder_fixture(20, 10, 1);
        let matcher = matcher_for(&fixture, Config::default().with_provenance(false));
        let result = timed_sweep(&matcher, &fixture.publications, 0);
        let fields = sweep_json_fields(&result);
        let names: Vec<&str> = fields.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["matches", "ns_per_event", "events_per_sec", "derived_events", "truncations"]
        );
    }

    #[test]
    fn recall_is_one_against_self_and_less_for_subsets() {
        let a = vec![vec![SubId(1), SubId(2)], vec![SubId(3)]];
        let b = vec![vec![SubId(1)], vec![SubId(3)]];
        assert_eq!(recall(&a, &a), 1.0);
        assert!((recall(&b, &a) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(recall(&a, &b), 1.0, "supersets have full recall");
        assert_eq!(recall(&[], &[]), 1.0);
        assert_eq!(total_matches(&a), 3);
    }

    #[test]
    fn match_sets_are_sorted() {
        let fixture = jobfinder_fixture(30, 20, 5);
        let matcher = matcher_for(&fixture, Config::default().with_provenance(false));
        for set in match_sets(&matcher, &fixture.publications) {
            assert!(set.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn take_subscriptions_prefix() {
        let fixture = jobfinder_fixture(30, 1, 5);
        let subs = take_subscriptions(&fixture, 10);
        assert_eq!(subs.len(), 10);
        assert_eq!(subs[0], fixture.subscriptions[0]);
    }
}
