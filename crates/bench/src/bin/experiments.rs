//! Regenerates every table of `EXPERIMENTS.md`.
//!
//! The S-ToPSS paper is a demonstration paper: its evaluation artifacts
//! are Figure 1 (the semantic-stage architecture), Figure 2 (the demo
//! setup), and a set of qualitative claims. Each experiment below turns
//! one of them into a measured table. See `DESIGN.md` §4 for the index.
//!
//! Usage:
//!   experiments [--quick] [--check] [exp ...]
//! where `exp` ∈ {fig1, fig2, overhead, ontology, engines, tolerance,
//! multidomain, strategy, hierarchy, scenarios, all} (default: all).
//! Tables are printed and written to `results/<exp>.md` / `.csv`
//! (`results/quick/<exp>.*` with `--quick`, so the fast sweep has its own
//! committed goldens at its own scale).
//!
//! `--check` is the CI freshness gate: instead of writing, regenerated
//! tables are compared against the committed CSVs with *timing columns
//! masked* (latency/rate cells vary run to run; match counts, recall,
//! delivery conservation and derivation counters are deterministic), and
//! the process exits non-zero on any drift — guarding the oracle tables
//! against silent decay.

use std::fmt::Write as _;
use std::time::Instant;

use stopss_types::sync::Arc;

use stopss_bench::{match_sets, matcher_for, recall, timed_sweep, total_matches};
use stopss_broker::{run_chaos, Broker, BrokerConfig, ChaosConfig, TransportKind};
use stopss_core::{Config, OriginCounts, StageMask, Strategy, Tolerance};
use stopss_matching::EngineKind;
use stopss_ontology::{
    DomainRegistry, Expr, MappingFunction, Ontology, PatternItem, Production, SemanticSource,
};
use stopss_types::{Interner, Predicate, SharedInterner, SubId, Value};
use stopss_workload::{
    build_synthetic, churn_scenario, fmt_f64, fmt_nanos, geo_fixture, iot_fixture,
    jobfinder_fixture, market_fixture, replay_interleaved, replay_sequential, synthetic_fixture,
    ChurnMode, ChurnOp, Fixture, Rng, SyntheticConfig, SyntheticWorkload, Table,
};

struct Scale {
    subs: usize,
    pubs: usize,
    big_subs: Vec<usize>,
}

fn scale(quick: bool) -> Scale {
    if quick {
        Scale { subs: 500, pubs: 500, big_subs: vec![100, 1_000, 5_000] }
    } else {
        Scale { subs: 2_000, pubs: 2_000, big_subs: vec![100, 1_000, 10_000, 50_000] }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let mut selected: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    if selected.is_empty() || selected.contains(&"all") {
        selected = vec![
            "fig1",
            "fig2",
            "overhead",
            "ontology",
            "engines",
            "tolerance",
            "multidomain",
            "strategy",
            "hierarchy",
            "scenarios",
        ];
    }
    let s = scale(quick);
    let dir = if quick { "results/quick" } else { "results" };
    if !check {
        std::fs::create_dir_all(dir).ok();
    }

    let started = Instant::now();
    let mut drifted: Vec<String> = Vec::new();
    for exp in selected {
        let tables = match exp {
            "fig1" => exp_fig1(&s),
            "fig2" => exp_fig2(&s),
            "overhead" => exp_overhead(&s),
            "ontology" => exp_ontology(quick),
            "engines" => exp_engines(&s),
            "tolerance" => exp_tolerance(&s),
            "multidomain" => exp_multidomain(&s),
            "strategy" => exp_strategy(quick),
            "hierarchy" => exp_hierarchy(quick),
            "scenarios" => exp_scenarios(&s, quick),
            other => {
                eprintln!("unknown experiment '{other}', skipping");
                continue;
            }
        };
        let mut md = String::new();
        let mut csv = String::new();
        for table in &tables {
            println!("{}", table.to_text());
            writeln!(md, "{}", table.to_markdown()).unwrap();
            writeln!(csv, "# {}\n{}", table.title, table.to_csv()).unwrap();
        }
        if check {
            let path = format!("{dir}/{exp}.csv");
            match std::fs::read_to_string(&path) {
                Ok(committed) => {
                    if let Err(diff) = compare_masked(&committed, &csv) {
                        eprintln!("freshness: {path} drifted\n{diff}");
                        drifted.push(path);
                    }
                }
                Err(err) => {
                    eprintln!("freshness: cannot read {path}: {err}");
                    drifted.push(path);
                }
            }
        } else {
            std::fs::write(format!("{dir}/{exp}.md"), md).ok();
            std::fs::write(format!("{dir}/{exp}.csv"), csv).ok();
        }
    }
    eprintln!("done in {:.1}s", started.elapsed().as_secs_f64());
    if check {
        if drifted.is_empty() {
            eprintln!("freshness check passed: regenerated tables match the committed ones");
        } else {
            eprintln!(
                "freshness check FAILED: {} table file(s) drifted: {}",
                drifted.len(),
                drifted.join(", ")
            );
            std::process::exit(1);
        }
    }
}

// ---------------------------------------------------------------------
// Freshness gate: committed-vs-regenerated comparison with timing masked.

/// True if a column holds wall-clock-dependent values (latencies, rates,
/// ratios of latencies): masked out of the freshness comparison. Count
/// columns (matches, recall, deliveries, derivation counters) stay.
fn is_timing_column(header: &str) -> bool {
    const TIMING: [&str; 9] = [
        "publish", // "mean publish"
        "pubs/sec",
        "time",     // "closure time", "engine time", "subscribe time"
        "overhead", // "overhead vs syntactic"
        "closure share",
        "speedup", // "speedup vs naive"
        "resolve", // E4 "synonym resolve"
        "check",   // E4 "is_a check"
        "walk",    // E4 "ancestor walk" (+ "mapping candidates" below)
    ];
    let h = header.to_ascii_lowercase();
    TIMING.iter().any(|p| h.contains(p)) || h.contains("candidates")
}

/// Splits one CSV line into cells, honoring `"…"` quoting with `""`
/// escapes (the inverse of `Table::to_csv`).
fn split_csv_line(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cell = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cell.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' => quoted = true,
            ',' if !quoted => cells.push(std::mem::take(&mut cell)),
            c => cell.push(c),
        }
    }
    cells.push(cell);
    cells
}

/// Renders a results CSV with every timing cell replaced by `~`, so two
/// runs of the same deterministic experiment normalize identically.
fn mask_timing_cells(text: &str) -> String {
    let mut out = String::new();
    let mut mask: Vec<bool> = Vec::new();
    let mut expect_header = false;
    for line in text.lines() {
        if let Some(title) = line.strip_prefix("# ") {
            writeln!(out, "# {title}").unwrap();
            expect_header = true;
            continue;
        }
        let cells = split_csv_line(line);
        if expect_header {
            mask = cells.iter().map(|h| is_timing_column(h)).collect();
            expect_header = false;
            writeln!(out, "{}", cells.join("|")).unwrap();
            continue;
        }
        let masked: Vec<String> = cells
            .iter()
            .enumerate()
            .map(
                |(k, c)| {
                    if mask.get(k).copied().unwrap_or(false) {
                        "~".to_owned()
                    } else {
                        c.clone()
                    }
                },
            )
            .collect();
        writeln!(out, "{}", masked.join("|")).unwrap();
    }
    out
}

/// Compares two results CSVs modulo timing columns; `Err` carries the
/// first differing line pair.
fn compare_masked(committed: &str, fresh: &str) -> Result<(), String> {
    let committed = mask_timing_cells(committed);
    let fresh = mask_timing_cells(fresh);
    if committed == fresh {
        return Ok(());
    }
    let mut c_lines = committed.lines();
    let mut f_lines = fresh.lines();
    loop {
        match (c_lines.next(), f_lines.next()) {
            (Some(c), Some(f)) if c == f => continue,
            (c, f) => {
                return Err(format!(
                    "  committed: {}\n  fresh:     {}",
                    c.unwrap_or("<eof>"),
                    f.unwrap_or("<eof>")
                ));
            }
        }
    }
}

/// E1 / Figure 1 — stage ablation: every combination of the three
/// semantic stages; match counts and cost on the job-finder workload.
fn exp_fig1(s: &Scale) -> Vec<Table> {
    let fixture = jobfinder_fixture(s.subs, s.pubs, 2003);
    let mut table = Table::new(
        format!("E1 (Figure 1): stage ablation — job-finder, {} subs x {} pubs", s.subs, s.pubs),
        &["stages", "matches", "uplift vs syntactic", "mean publish", "pubs/sec"],
    );
    let mut syntactic_matches = 0u64;
    for stages in StageMask::all_combinations() {
        let config = Config { stages, track_provenance: false, ..Config::default() };
        let matcher = matcher_for(&fixture, config);
        let result = timed_sweep(&matcher, &fixture.publications, 50);
        if stages.is_syntactic() {
            syntactic_matches = result.matches;
        }
        let uplift = if syntactic_matches > 0 {
            format!("{:.2}x", result.matches as f64 / syntactic_matches as f64)
        } else {
            "-".into()
        };
        table.push_row(vec![
            stages.to_string(),
            result.matches.to_string(),
            uplift,
            fmt_nanos(result.ns_per_event),
            fmt_f64(result.events_per_sec),
        ]);
    }

    // Attribution: where do full-semantics matches come from?
    let mut origin_table = Table::new(
        "E1b: match origins under full semantics (provenance on)",
        &["origin", "matches", "share"],
    );
    let matcher = matcher_for(&fixture, Config::default());
    let mut counts = OriginCounts::default();
    for event in fixture.publications.iter().take(s.pubs.min(500)) {
        for m in matcher.publish(event) {
            counts.record(m.origin);
        }
    }
    let total = counts.total().max(1);
    for (label, n) in [
        ("syntactic", counts.syntactic),
        ("synonym", counts.synonym),
        ("hierarchy", counts.hierarchy),
        ("mapping", counts.mapping),
    ] {
        origin_table.push_row(vec![
            label.into(),
            n.to_string(),
            format!("{:.1}%", 100.0 * n as f64 / total as f64),
        ]);
    }
    vec![table, origin_table]
}

/// E2 / Figure 2 — the demonstration setup: broker + workload generator +
/// notification engine, semantic vs syntactic mode.
fn exp_fig2(s: &Scale) -> Vec<Table> {
    let fixture = jobfinder_fixture(s.subs.min(1_000), s.pubs, 42);
    let mut mode_table = Table::new(
        format!(
            "E2 (Figure 2): demo end-to-end — {} subs, {} pubs, 4 transports",
            fixture.subscriptions.len(),
            fixture.publications.len()
        ),
        &["mode", "matches", "pubs/sec", "notifications delivered", "lost (udp)", "sms retries"],
    );
    let mut transport_table = Table::new(
        "E2b: per-transport delivery (semantic mode)",
        &["transport", "attempted", "delivered", "lost", "retried", "rate-dropped"],
    );

    for semantic in [true, false] {
        let broker = Broker::new(
            BrokerConfig {
                udp_loss: 0.02,
                matcher: Config { track_provenance: false, ..Config::default() },
                ..Default::default()
            },
            fixture.source.clone(),
            fixture.interner.clone(),
        );
        broker.set_semantic_mode(semantic);
        let clients: Vec<_> = TransportKind::ALL
            .iter()
            .map(|kind| broker.register_client(format!("co-{}", kind.name()), *kind))
            .collect();
        for (k, sub) in fixture.subscriptions.iter().enumerate() {
            broker.subscribe(clients[k % clients.len()], sub.predicates().to_vec()).unwrap();
        }
        let start = Instant::now();
        let mut matches = 0usize;
        for event in &fixture.publications {
            matches += broker.publish(event);
        }
        let elapsed = start.elapsed();
        let stats = broker.shutdown();
        let udp = stats.get(TransportKind::Udp);
        let sms = stats.get(TransportKind::Sms);
        mode_table.push_row(vec![
            if semantic { "semantic" } else { "syntactic" }.into(),
            matches.to_string(),
            fmt_f64(fixture.publications.len() as f64 / elapsed.as_secs_f64()),
            stats.total_delivered().to_string(),
            udp.lost.to_string(),
            sms.retried.to_string(),
        ]);
        if semantic {
            for kind in TransportKind::ALL {
                let t = stats.get(kind);
                transport_table.push_row(vec![
                    kind.name().into(),
                    t.attempted.to_string(),
                    t.delivered.to_string(),
                    t.lost.to_string(),
                    t.retried.to_string(),
                    t.rate_dropped.to_string(),
                ]);
            }
        }
    }
    vec![mode_table, transport_table]
}

/// E3 / Claim C1 — "the semantic stage is very fast without affecting the
/// already good performance of the matching algorithms": overhead factor
/// of each stage over raw syntactic matching, versus subscription count.
fn exp_overhead(s: &Scale) -> Vec<Table> {
    let mut table = Table::new(
        "E3 (claim C1): semantic-stage overhead vs raw matching (counting engine)",
        &["subscriptions", "stages", "mean publish", "overhead vs syntactic"],
    );
    for &n in &s.big_subs {
        let fixture = jobfinder_fixture(n, s.pubs.min(1_000), 7);
        let mut baseline = 0.0f64;
        for stages in [
            StageMask::syntactic(),
            StageMask::SYNONYM,
            StageMask::SYNONYM.with(StageMask::HIERARCHY),
            StageMask::all(),
        ] {
            let config = Config { stages, track_provenance: false, ..Config::default() };
            let matcher = matcher_for(&fixture, config);
            let result = timed_sweep(&matcher, &fixture.publications, 50);
            if stages.is_syntactic() {
                baseline = result.ns_per_event;
            }
            table.push_row(vec![
                n.to_string(),
                stages.to_string(),
                fmt_nanos(result.ns_per_event),
                format!("{:.2}x", result.ns_per_event / baseline),
            ]);
        }
    }
    vec![table, exp_overhead_breakdown(s)]
}

/// E3b — where does publish time go? The closure (semantic stage) and the
/// engine match are both public APIs, so they can be timed separately.
fn exp_overhead_breakdown(s: &Scale) -> Table {
    use stopss_core::{semantic_closure, ClosureLimits};
    let mut table = Table::new(
        "E3b: publish-time breakdown — semantic closure vs engine match",
        &["subscriptions", "closure time", "engine time", "closure share"],
    );
    for &n in &s.big_subs {
        let fixture = jobfinder_fixture(n, s.pubs.min(500), 7);
        // Closure-only timing.
        let source = fixture.source.clone();
        let interner = fixture.interner.snapshot();
        let events = &fixture.publications;
        let mut idx = 0usize;
        let closure_ns = stopss_bench::time_mean_ns(events.len(), || {
            let event = &events[idx % events.len()];
            idx += 1;
            std::hint::black_box(semantic_closure(
                event,
                source.as_ref(),
                StageMask::all(),
                None,
                2003,
                &interner,
                &ClosureLimits::default(),
            ));
        });
        // Engine-only timing: match the pre-closed events.
        let closed: Vec<stopss_types::Event> = events
            .iter()
            .map(|event| {
                semantic_closure(
                    event,
                    source.as_ref(),
                    StageMask::all(),
                    None,
                    2003,
                    &interner,
                    &ClosureLimits::default(),
                )
                .event
            })
            .collect();
        let mut engine = stopss_matching::EngineKind::Counting.build();
        for sub in &fixture.subscriptions {
            engine.insert(
                stopss_core::synonym_resolve_subscription(sub, source.as_ref()).into_owned(),
            );
        }
        let mut out = Vec::new();
        let mut idx = 0usize;
        let engine_ns = stopss_bench::time_mean_ns(closed.len(), || {
            out.clear();
            let event = &closed[idx % closed.len()];
            idx += 1;
            engine.match_event(event, &interner, &mut out);
            std::hint::black_box(out.len());
        });
        table.push_row(vec![
            n.to_string(),
            fmt_nanos(closure_ns),
            fmt_nanos(engine_ns),
            format!("{:.0}%", 100.0 * closure_ns / (closure_ns + engine_ns)),
        ]);
    }
    table
}

/// E4 / Claim C2 — hash structures keep semantic lookups fast as the
/// ontology grows.
fn exp_ontology(quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "E4 (claim C2): semantic lookup latency vs ontology size",
        &["concepts", "synonym resolve", "is_a check", "ancestor walk", "mapping candidates"],
    );
    let depths: &[usize] = if quick { &[2, 4, 6] } else { &[2, 4, 6, 8] };
    for &depth in depths {
        let mut interner = Interner::new();
        let shape = SyntheticConfig {
            attrs: 1,
            depth,
            fanout: 4,
            synonyms_per_concept: 0.5,
            mapping_chain: 4,
            seed: 3,
        };
        let domain = build_synthetic(&mut interner, &shape);
        let concepts = domain.concept_count();
        let leaves = domain.leaves(0).to_vec();
        let root = domain.level(0, 0)[0];
        let aliases = domain.aliases.clone();
        let ontology = &domain.ontology;

        // Warm the taxonomy's ancestor cache once.
        let _ = ontology.is_a(leaves[0], root);

        let iters = 20_000usize;
        let mut rng = Rng::new(1);
        let resolve_ns = stopss_bench::time_mean_ns(iters, || {
            let term = if aliases.is_empty() { leaves[0] } else { *rng.pick(&aliases) };
            std::hint::black_box(ontology.resolve_synonym(term));
        });
        let mut rng = Rng::new(2);
        let isa_ns = stopss_bench::time_mean_ns(iters, || {
            let leaf = *rng.pick(&leaves);
            std::hint::black_box(ontology.is_a(leaf, root));
        });
        let mut rng = Rng::new(3);
        let anc_ns = stopss_bench::time_mean_ns(iters, || {
            let leaf = *rng.pick(&leaves);
            let mut count = 0u32;
            ontology.for_each_ancestor(leaf, &mut |_, _| count += 1);
            std::hint::black_box(count);
        });
        let chain_start = domain.chain_start.unwrap();
        let event = stopss_types::Event::new().with(chain_start, Value::Int(1));
        let map_ns = stopss_bench::time_mean_ns(iters, || {
            let mut fired = 0u32;
            ontology.apply_mappings(&event, &interner, 0, &mut |_, _| fired += 1);
            std::hint::black_box(fired);
        });
        table.push_row(vec![
            concepts.to_string(),
            fmt_nanos(resolve_ns),
            fmt_nanos(isa_ns),
            fmt_nanos(anc_ns),
            fmt_nanos(map_ns),
        ]);
    }
    vec![table]
}

/// E5 — the syntactic substrate baseline: engine comparison (references
/// \[1\] and \[4\] of the paper).
fn exp_engines(s: &Scale) -> Vec<Table> {
    let mut table = Table::new(
        "E5: syntactic engine comparison (semantic stages off)",
        &["subscriptions", "engine", "mean publish", "speedup vs naive", "matches"],
    );
    for &n in &s.big_subs {
        let fixture = jobfinder_fixture(n, s.pubs.min(500), 11);
        let mut naive_ns = 0.0f64;
        for engine in EngineKind::ALL {
            let config = Config {
                engine,
                stages: StageMask::syntactic(),
                track_provenance: false,
                ..Config::default()
            };
            let matcher = matcher_for(&fixture, config);
            let result = timed_sweep(&matcher, &fixture.publications, 20);
            if engine == EngineKind::Naive {
                naive_ns = result.ns_per_event;
            }
            table.push_row(vec![
                n.to_string(),
                engine.name().into(),
                fmt_nanos(result.ns_per_event),
                format!("{:.2}x", naive_ns / result.ns_per_event),
                result.matches.to_string(),
            ]);
        }
    }
    vec![table]
}

/// E6 / Claim C3 — the information-loss knob: recall vs cost across
/// tolerance settings.
fn exp_tolerance(s: &Scale) -> Vec<Table> {
    let fixture = jobfinder_fixture(s.subs, s.pubs.min(1_000), 13);
    // Reference: full semantics.
    let reference_matcher =
        matcher_for(&fixture, Config { track_provenance: false, ..Config::default() });
    let reference = match_sets(&reference_matcher, &fixture.publications);
    let reference_total = total_matches(&reference);

    let mut table = Table::new(
        format!("E6 (claim C3): tolerance — recall vs cost ({reference_total} reference matches)"),
        &["tolerance", "matches", "recall", "mean publish"],
    );
    let settings: Vec<(String, Tolerance)> = vec![
        ("syntactic".into(), Tolerance::syntactic()),
        ("synonym only".into(), Tolerance::stages(StageMask::SYNONYM)),
        (
            "syn+hier, k=1".into(),
            Tolerance {
                stages: StageMask::SYNONYM.with(StageMask::HIERARCHY),
                max_distance: Some(1),
            },
        ),
        ("all, k=1".into(), Tolerance::bounded(1)),
        ("all, k=2".into(), Tolerance::bounded(2)),
        ("all, k=3".into(), Tolerance::bounded(3)),
        ("all, unbounded".into(), Tolerance::full()),
    ];
    for (label, tolerance) in settings {
        // The tolerance is applied as the system configuration so the cost
        // column reflects the reduced closure work (a per-subscription
        // tolerance would measure verification cost instead).
        let config = Config {
            stages: tolerance.stages,
            max_distance: tolerance.max_distance,
            track_provenance: false,
            ..Config::default()
        };
        let matcher = matcher_for(&fixture, config);
        let start = Instant::now();
        let sets = match_sets(&matcher, &fixture.publications);
        let elapsed = start.elapsed();
        table.push_row(vec![
            label,
            total_matches(&sets).to_string(),
            format!("{:.3}", recall(&sets, &reference)),
            fmt_nanos(elapsed.as_nanos() as f64 / fixture.publications.len() as f64),
        ]);
    }
    vec![table]
}

/// E7 / Claim C4 — multi-domain operation with inter-domain bridges.
fn exp_multidomain(s: &Scale) -> Vec<Table> {
    let mut table = Table::new(
        "E7 (claim C4): multi-domain registry — cross-domain matches appear once a bridge exists",
        &["configuration", "in-domain matches", "cross-domain matches", "mean publish"],
    );
    for with_bridge in [false, true] {
        let mut interner = Interner::new();
        // Domain A: a value taxonomy plus a numeric signal attribute.
        let shape = SyntheticConfig {
            attrs: 2,
            depth: 3,
            fanout: 3,
            seed: 5,
            mapping_chain: 0,
            ..Default::default()
        };
        let domain_a = build_synthetic(&mut interner, &shape);
        let a_signal = interner.intern("a_signal");
        // Domain B: its own attribute vocabulary, one internal function.
        let b_metric = interner.intern("b_metric");
        let b_flag = interner.intern("b_flag");
        let mut domain_b = Ontology::new("domain_b");
        domain_b
            .mappings
            .register(MappingFunction::new(
                "b_internal",
                vec![PatternItem { attr: b_metric, guard: None }],
                vec![Production { attr: b_flag, expr: Expr::Const(Value::Bool(true)) }],
            ))
            .unwrap();

        let mut registry = DomainRegistry::new();
        let a0 = domain_a.attrs[0];
        registry.add_domain(domain_a.ontology.clone()).unwrap();
        registry.add_domain(domain_b).unwrap();
        if with_bridge {
            registry
                .add_bridge(MappingFunction::new(
                    "a_to_b",
                    vec![PatternItem { attr: a_signal, guard: None }],
                    vec![Production { attr: b_metric, expr: Expr::Attr(a_signal) }],
                ))
                .unwrap();
        }

        // Subscriptions: half on domain A terms, half on domain B's flag.
        let n = s.subs.min(500);
        let mut subs = Vec::new();
        let mut rng = Rng::new(17);
        let generals = domain_a.level(0, 1).to_vec();
        for k in 0..n {
            if k % 2 == 0 {
                subs.push(stopss_types::Subscription::new(
                    SubId(k as u64),
                    vec![Predicate::eq(a0, *rng.pick(&generals))],
                ));
            } else {
                subs.push(stopss_types::Subscription::new(
                    SubId(k as u64),
                    vec![Predicate::eq(b_flag, Value::Bool(true))],
                ));
            }
        }
        // Publications: domain A events carrying the bridged signal.
        let leaves = domain_a.leaves(0).to_vec();
        let events: Vec<stopss_types::Event> = (0..s.pubs.min(500))
            .map(|_| {
                stopss_types::Event::new()
                    .with(a0, Value::Sym(*rng.pick(&leaves)))
                    .with(a_signal, Value::Int(rng.range_i64(0, 100)))
            })
            .collect();

        let matcher = stopss_core::SToPSS::new(
            Config { track_provenance: false, ..Config::default() },
            Arc::new(registry),
            SharedInterner::from_interner(interner),
        );
        for sub in &subs {
            matcher.subscribe(sub.clone());
        }
        let start = Instant::now();
        let mut in_domain = 0usize;
        let mut cross_domain = 0usize;
        for event in &events {
            for m in matcher.publish(event) {
                if m.sub.0 % 2 == 0 {
                    in_domain += 1;
                } else {
                    cross_domain += 1;
                }
            }
        }
        let elapsed = start.elapsed();
        table.push_row(vec![
            if with_bridge { "two domains + bridge" } else { "two domains, no bridge" }.into(),
            in_domain.to_string(),
            cross_domain.to_string(),
            fmt_nanos(elapsed.as_nanos() as f64 / events.len() as f64),
        ]);
    }
    vec![table]
}

/// E8 — strategy ablation: materialize vs generalized vs sub-rewrite
/// across taxonomy depth, with the subscribe-time cost rewriting pays.
fn exp_strategy(quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "E8: strategy ablation across taxonomy depth",
        &[
            "depth",
            "strategy",
            "mean publish",
            "derived events/pub",
            "engine subs",
            "recall",
            "subscribe time",
        ],
    );
    let depths: &[usize] = if quick { &[2, 3] } else { &[2, 3, 4, 5] };
    for &depth in depths {
        let shape = SyntheticConfig {
            attrs: 4,
            depth,
            fanout: 3,
            mapping_chain: 2,
            seed: 23,
            ..Default::default()
        };
        let workload = SyntheticWorkload {
            subscriptions: if quick { 300 } else { 1_000 },
            publications: if quick { 200 } else { 500 },
            general_term_bias: 0.6,
            ..Default::default()
        };
        let fixture = synthetic_fixture(&shape, &workload);

        // Reference match sets from the exact flattened strategy.
        let reference_matcher =
            matcher_for(&fixture, Config { track_provenance: false, ..Config::default() });
        let reference = match_sets(&reference_matcher, &fixture.publications);

        for strategy in Strategy::ALL {
            let config = Config { strategy, track_provenance: false, ..Config::default() };
            let sub_start = Instant::now();
            let matcher = matcher_for(&fixture, config);
            let subscribe_time = sub_start.elapsed();
            let engine_subs = match strategy {
                Strategy::SubscriptionRewrite => count_engine_subs(&fixture, config).to_string(),
                _ => fixture.subscriptions.len().to_string(),
            };
            let start = Instant::now();
            let sets = match_sets(&matcher, &fixture.publications);
            let elapsed = start.elapsed();
            let stats = matcher.stats();
            table.push_row(vec![
                depth.to_string(),
                strategy.name().into(),
                fmt_nanos(elapsed.as_nanos() as f64 / fixture.publications.len() as f64),
                format!("{:.1}", stats.derived_events as f64 / stats.published.max(1) as f64),
                engine_subs,
                format!("{:.3}", recall(&sets, &reference)),
                fmt_nanos(subscribe_time.as_nanos() as f64),
            ]);
        }
    }
    vec![table]
}

fn count_engine_subs(fixture: &stopss_workload::Fixture, config: Config) -> usize {
    // Rewrite fan-out: expand each subscription the way the matcher does.
    let mut total = 0usize;
    for sub in &fixture.subscriptions {
        let canonical = stopss_core::synonym_resolve_subscription(sub, fixture.source.as_ref());
        let expansion = stopss_core::expand_subscription(
            &canonical,
            fixture.source.as_ref(),
            config.stages.hierarchy(),
            config.max_distance,
            config.limits.max_rewrites,
        );
        total += expansion.combos.len();
    }
    total
}

/// E9 — hierarchy scaling: publish cost vs taxonomy depth and fanout.
fn exp_hierarchy(quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "E9: hierarchy stage scaling (generalized-event strategy)",
        &["depth", "fanout", "concepts", "closure pairs/pub", "mean publish", "matches"],
    );
    let depths: &[usize] = if quick { &[1, 3, 5] } else { &[1, 2, 3, 4, 5, 6] };
    for &depth in depths {
        for fanout in [2usize, 4] {
            let shape = SyntheticConfig {
                attrs: 3,
                depth,
                fanout,
                mapping_chain: 0,
                synonyms_per_concept: 0.2,
                seed: 31,
            };
            let workload = SyntheticWorkload {
                subscriptions: if quick { 300 } else { 1_000 },
                publications: if quick { 300 } else { 1_000 },
                ..Default::default()
            };
            let fixture = synthetic_fixture(&shape, &workload);
            let concepts = {
                let mut interner = Interner::new();
                build_synthetic(&mut interner, &shape).concept_count()
            };
            let config = Config { track_provenance: false, ..Config::default() };
            let matcher = matcher_for(&fixture, config);
            let result = timed_sweep(&matcher, &fixture.publications, 50);
            let stats = matcher.stats();
            table.push_row(vec![
                depth.to_string(),
                fanout.to_string(),
                concepts.to_string(),
                format!("{:.1}", stats.closure_pairs as f64 / stats.published.max(1) as f64),
                fmt_nanos(result.ns_per_event),
                result.matches.to_string(),
            ]);
        }
    }
    vec![table]
}

/// E10 — scenario diversity and the chaos harness: match profiles of the
/// four workload domains (origin attribution included), the churn
/// differential (interleaved replay vs the fresh-matcher oracle), and
/// delivery conservation under injected broker faults. Every column is a
/// deterministic count or parity verdict, so the freshness gate covers
/// this experiment unmasked.
fn exp_scenarios(s: &Scale, quick: bool) -> Vec<Table> {
    let domains: Vec<(&str, Fixture)> = vec![
        ("jobfinder", jobfinder_fixture(s.subs, s.pubs, 2003)),
        ("iot", iot_fixture(s.subs, s.pubs, 2003)),
        ("market", market_fixture(s.subs, s.pubs, 2003)),
        ("geo", geo_fixture(s.subs, s.pubs, 2003)),
    ];

    let mut profile = Table::new(
        format!("E10: per-domain match profile — {} subs x {} pubs", s.subs, s.pubs),
        &[
            "domain",
            "syntactic matches",
            "semantic matches",
            "uplift",
            "synonym",
            "hierarchy",
            "mapping",
        ],
    );
    for (name, fixture) in &domains {
        let syn_config =
            Config { stages: StageMask::syntactic(), track_provenance: false, ..Config::default() };
        let syn_matcher = matcher_for(fixture, syn_config);
        let syntactic: usize =
            fixture.publications.iter().map(|e| syn_matcher.publish(e).len()).sum();
        let matcher = matcher_for(fixture, Config::default());
        let mut counts = OriginCounts::default();
        for event in &fixture.publications {
            for m in matcher.publish(event) {
                counts.record(m.origin);
            }
        }
        let total = counts.total();
        profile.push_row(vec![
            (*name).into(),
            syntactic.to_string(),
            total.to_string(),
            format!("{:.2}x", total as f64 / syntactic.max(1) as f64),
            counts.synonym.to_string(),
            counts.hierarchy.to_string(),
            counts.mapping.to_string(),
        ]);
    }

    let mut churn = Table::new(
        "E10b: churn differential — interleaved replay vs fresh-matcher oracle",
        &[
            "domain",
            "mode",
            "ops",
            "subs added",
            "subs removed",
            "onto swaps",
            "pubs",
            "interleaved matches",
            "sequential parity",
        ],
    );
    let steps = if quick { 120 } else { 240 };
    let churn_fixtures: Vec<(&str, Fixture)> = vec![
        ("jobfinder", jobfinder_fixture(150, 100, 7)),
        ("iot", iot_fixture(150, 100, 7)),
        ("market", market_fixture(150, 100, 7)),
        ("geo", geo_fixture(150, 100, 7)),
    ];
    for (name, fixture) in &churn_fixtures {
        for mode in [ChurnMode::UnsubscribeHeavy, ChurnMode::FlashCrowd] {
            let scenario = churn_scenario(fixture, mode, steps, 42);
            let (mut added, mut removed, mut swaps) = (0usize, 0usize, 0usize);
            for op in &scenario.ops {
                match op {
                    ChurnOp::Subscribe(_) => added += 1,
                    ChurnOp::Unsubscribe(_) => removed += 1,
                    ChurnOp::SetOntology(_) => swaps += 1,
                    ChurnOp::Publish(_) => {}
                }
            }
            let config = Config::default();
            let interleaved = replay_interleaved(fixture, &scenario, config);
            let sequential = replay_sequential(fixture, &scenario, config);
            let matches: usize = interleaved.iter().map(Vec::len).sum();
            churn.push_row(vec![
                (*name).into(),
                match mode {
                    ChurnMode::UnsubscribeHeavy => "unsubscribe-heavy",
                    ChurnMode::FlashCrowd => "flash-crowd",
                }
                .into(),
                scenario.ops.len().to_string(),
                added.to_string(),
                removed.to_string(),
                swaps.to_string(),
                scenario.publishes.to_string(),
                matches.to_string(),
                if interleaved == sequential { "agree" } else { "DIVERGED" }.into(),
            ]);
        }
    }

    let mut chaos_table = Table::new(
        "E10c: chaos harness — delivery conservation under injected faults",
        &[
            "faults",
            "pubs",
            "matches",
            "delivered",
            "lost",
            "rate-dropped",
            "orphaned",
            "retried",
            "restarts",
            "clients dropped",
            "conserved",
            "order",
        ],
    );
    let quiet = ChaosConfig {
        seed: 2003,
        drop_client: 0.0,
        slow_consumer: 0.0,
        restart_every: 0,
        udp_loss: 0.0,
        sms_budget: 1_000_000,
    };
    let presets: Vec<(&str, ChaosConfig)> = vec![
        ("none", quiet),
        ("connection drops", ChaosConfig { drop_client: 0.15, ..quiet }),
        ("slow consumers", ChaosConfig { slow_consumer: 0.3, ..quiet }),
        ("engine restarts", ChaosConfig { restart_every: 25, ..quiet }),
        ("all faults", ChaosConfig::default()),
    ];
    let fixture = jobfinder_fixture(48, if quick { 150 } else { 400 }, 9);
    for (name, chaos) in presets {
        let report = run_chaos(
            BrokerConfig::default(),
            &chaos,
            fixture.source.clone(),
            fixture.interner.clone(),
            &fixture.subscriptions,
            &fixture.publications,
        );
        chaos_table.push_row(vec![
            name.into(),
            report.published.to_string(),
            report.matches.to_string(),
            report.delivered.to_string(),
            report.lost.to_string(),
            report.rate_dropped.to_string(),
            report.orphaned.to_string(),
            report.retried.to_string(),
            report.restarts.to_string(),
            report.dropped_clients.to_string(),
            if report.matches == report.accounted() { "yes" } else { "NO" }.into(),
            if report.ordering_violations.is_empty() { "intact" } else { "VIOLATED" }.into(),
        ]);
    }

    vec![profile, churn, chaos_table]
}
