//! # stopss-types
//!
//! Shared data model for the S-ToPSS reproduction (Petrovic, Burcea,
//! Jacobsen — *S-ToPSS: Semantic Toronto Publish/Subscribe System*, VLDB
//! 2003).
//!
//! Everything above this crate — the syntactic matching engines, the
//! ontology substrate, the semantic pipeline, the broker — agrees on the
//! vocabulary defined here:
//!
//! * [`Symbol`] / [`Interner`]: interned strings for attribute names and
//!   categorical values;
//! * [`Value`]: typed attribute values with strict (hashable) equality and
//!   separate numeric range comparison;
//! * [`Predicate`] / [`Operator`]: single attribute tests;
//! * [`Subscription`]: conjunctions of predicates;
//! * [`Event`]: attribute–value pair lists (multi-valued to support the
//!   generalized-event strategy).
//!
//! The ground-truth *syntactic* matching relation is
//! [`Subscription::matches`]; every engine in `stopss-matching` and every
//! strategy in `stopss-core` is tested against it (and against the semantic
//! oracle built on top of it).

#![warn(missing_docs)]

pub mod event;
pub mod hash;
pub mod intern;
pub mod predicate;
pub mod rng;
pub mod subscription;
pub mod sync;
pub mod value;

pub use event::{Event, EventBuilder};
pub use hash::{fx_hash_one, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use intern::{Interner, SharedInterner, Symbol};
pub use predicate::{Operator, Predicate};
pub use subscription::{distinct_attrs, SubId, Subscription, SubscriptionBuilder};
pub use value::Value;
