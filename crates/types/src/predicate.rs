//! Subscription predicates.
//!
//! A predicate is a single test `attribute ⊙ value`. Subscriptions are
//! conjunctions of predicates (the model of Aguilera et al. and Fabret et
//! al., which the S-ToPSS paper builds on).

use std::fmt;

use crate::intern::{Interner, Symbol};
use crate::value::Value;

/// Comparison operator of a predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Operator {
    /// Strict equality (same variant, same payload).
    Eq,
    /// Attribute present with a different value.
    Ne,
    /// Numeric less-than.
    Lt,
    /// Numeric less-or-equal.
    Le,
    /// Numeric greater-than.
    Gt,
    /// Numeric greater-or-equal.
    Ge,
    /// Attribute present with any value (the predicate's value is ignored).
    Exists,
    /// String value starts with the given string.
    Prefix,
    /// String value ends with the given string.
    Suffix,
    /// String value contains the given string.
    Contains,
}

impl Operator {
    /// All operators, for generators and exhaustive tests.
    pub const ALL: [Operator; 10] = [
        Operator::Eq,
        Operator::Ne,
        Operator::Lt,
        Operator::Le,
        Operator::Gt,
        Operator::Ge,
        Operator::Exists,
        Operator::Prefix,
        Operator::Suffix,
        Operator::Contains,
    ];

    /// True for the numeric range operators `< <= > >=`.
    #[inline]
    pub fn is_range(self) -> bool {
        matches!(self, Operator::Lt | Operator::Le | Operator::Gt | Operator::Ge)
    }

    /// True for the operators that inspect the string content of symbols.
    #[inline]
    pub fn is_string(self) -> bool {
        matches!(self, Operator::Prefix | Operator::Suffix | Operator::Contains)
    }

    /// Symbolic rendering (`=`, `!=`, `<`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Operator::Eq => "=",
            Operator::Ne => "!=",
            Operator::Lt => "<",
            Operator::Le => "<=",
            Operator::Gt => ">",
            Operator::Ge => ">=",
            Operator::Exists => "exists",
            Operator::Prefix => "prefix",
            Operator::Suffix => "suffix",
            Operator::Contains => "contains",
        }
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A single test over one attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// Attribute the test applies to.
    pub attr: Symbol,
    /// Comparison operator.
    pub op: Operator,
    /// Right-hand side. Ignored for `Exists`.
    pub value: Value,
}

impl Predicate {
    /// Builds a predicate.
    pub fn new(attr: Symbol, op: Operator, value: Value) -> Self {
        Predicate { attr, op, value }
    }

    /// Shorthand for an equality predicate.
    pub fn eq(attr: Symbol, value: impl Into<Value>) -> Self {
        Predicate::new(attr, Operator::Eq, value.into())
    }

    /// Shorthand for an existence predicate.
    pub fn exists(attr: Symbol) -> Self {
        Predicate::new(attr, Operator::Exists, Value::Bool(true))
    }

    /// Evaluates this predicate against a candidate value for its
    /// attribute. String operators need the `interner` to look at symbol
    /// contents; all other operators ignore it.
    ///
    /// Cross-type comparisons are unsatisfied rather than errors (see
    /// [`Value::range_cmp`]); `Ne` requires the attribute to be present
    /// (the caller only invokes `eval` for present attributes) and the
    /// value to differ under strict equality.
    pub fn eval(&self, candidate: &Value, interner: &Interner) -> bool {
        match self.op {
            Operator::Eq => candidate == &self.value,
            Operator::Ne => candidate != &self.value,
            Operator::Exists => true,
            Operator::Lt => {
                matches!(candidate.range_cmp(&self.value), Some(std::cmp::Ordering::Less))
            }
            Operator::Le => matches!(
                candidate.range_cmp(&self.value),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            ),
            Operator::Gt => {
                matches!(candidate.range_cmp(&self.value), Some(std::cmp::Ordering::Greater))
            }
            Operator::Ge => matches!(
                candidate.range_cmp(&self.value),
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            ),
            Operator::Prefix | Operator::Suffix | Operator::Contains => {
                let (Value::Sym(have), Value::Sym(want)) = (candidate, &self.value) else {
                    return false;
                };
                let (Some(have), Some(want)) =
                    (interner.try_resolve(*have), interner.try_resolve(*want))
                else {
                    return false;
                };
                match self.op {
                    Operator::Prefix => have.starts_with(want),
                    Operator::Suffix => have.ends_with(want),
                    Operator::Contains => have.contains(want),
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Renders the predicate for humans.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> impl fmt::Display + 'a {
        PredicateDisplay { pred: self, interner }
    }
}

struct PredicateDisplay<'a> {
    pred: &'a Predicate,
    interner: &'a Interner,
}

impl fmt::Display for PredicateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let attr = self.interner.try_resolve(self.pred.attr).unwrap_or("<foreign-attr>");
        if self.pred.op == Operator::Exists {
            write!(f, "{attr} exists")
        } else {
            write!(f, "{attr} {} {}", self.pred.op, self.pred.value.display(self.interner))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Interner, Symbol) {
        let mut i = Interner::new();
        let attr = i.intern("experience");
        (i, attr)
    }

    #[test]
    fn eq_and_ne_are_strict() {
        let (i, attr) = setup();
        let p = Predicate::eq(attr, 4i64);
        assert!(p.eval(&Value::Int(4), &i));
        assert!(!p.eval(&Value::Float(4.0), &i));

        let n = Predicate::new(attr, Operator::Ne, Value::Int(4));
        assert!(!n.eval(&Value::Int(4), &i));
        assert!(n.eval(&Value::Int(5), &i));
        // Different type counts as "different value".
        assert!(n.eval(&Value::Float(4.0), &i));
    }

    #[test]
    fn range_operators_cover_boundaries() {
        let (i, attr) = setup();
        let ge = Predicate::new(attr, Operator::Ge, Value::Int(4));
        assert!(ge.eval(&Value::Int(4), &i));
        assert!(ge.eval(&Value::Int(5), &i));
        assert!(ge.eval(&Value::Float(4.5), &i));
        assert!(!ge.eval(&Value::Int(3), &i));

        let lt = Predicate::new(attr, Operator::Lt, Value::Float(2.5));
        assert!(lt.eval(&Value::Int(2), &i));
        assert!(!lt.eval(&Value::Float(2.5), &i));
    }

    #[test]
    fn range_on_non_numeric_is_unsatisfied() {
        let (mut i, attr) = setup();
        let s = i.intern("toronto");
        let gt = Predicate::new(attr, Operator::Gt, Value::Int(0));
        assert!(!gt.eval(&Value::Sym(s), &i));
        assert!(!gt.eval(&Value::Bool(true), &i));
    }

    #[test]
    fn exists_matches_anything() {
        let (mut i, attr) = setup();
        let p = Predicate::exists(attr);
        let s = i.intern("x");
        assert!(p.eval(&Value::Int(0), &i));
        assert!(p.eval(&Value::Sym(s), &i));
        assert!(p.eval(&Value::Bool(false), &i));
    }

    #[test]
    fn string_operators_resolve_symbols() {
        let (mut i, attr) = setup();
        let dev = i.intern("mainframe developer");
        let mainframe = i.intern("mainframe");
        let developer = i.intern("developer");
        let frame = i.intern("frame");

        assert!(Predicate::new(attr, Operator::Prefix, Value::Sym(mainframe))
            .eval(&Value::Sym(dev), &i));
        assert!(Predicate::new(attr, Operator::Suffix, Value::Sym(developer))
            .eval(&Value::Sym(dev), &i));
        assert!(
            Predicate::new(attr, Operator::Contains, Value::Sym(frame)).eval(&Value::Sym(dev), &i)
        );
        assert!(!Predicate::new(attr, Operator::Prefix, Value::Sym(developer))
            .eval(&Value::Sym(dev), &i));
    }

    #[test]
    fn string_operators_reject_non_symbols() {
        let (mut i, attr) = setup();
        let x = i.intern("x");
        let p = Predicate::new(attr, Operator::Contains, Value::Sym(x));
        assert!(!p.eval(&Value::Int(3), &i));
        let q = Predicate::new(attr, Operator::Contains, Value::Int(3));
        assert!(!q.eval(&Value::Sym(x), &i));
    }

    #[test]
    fn display_is_readable() {
        let (mut i, attr) = setup();
        let p = Predicate::new(attr, Operator::Ge, Value::Int(4));
        assert_eq!(format!("{}", p.display(&i)), "experience >= 4");
        let e = Predicate::exists(i.intern("degree"));
        assert_eq!(format!("{}", e.display(&i)), "degree exists");
    }

    #[test]
    fn operator_classification() {
        assert!(Operator::Lt.is_range());
        assert!(!Operator::Eq.is_range());
        assert!(Operator::Prefix.is_string());
        assert!(!Operator::Ge.is_string());
        assert_eq!(Operator::ALL.len(), 10);
    }
}
