//! Subscriptions.
//!
//! A subscription is a conjunction of [`Predicate`]s plus a stable
//! identifier. Matching engines key their internal state on [`SubId`], and
//! the broker maps `SubId`s back to clients.

use std::fmt;

use crate::event::Event;
use crate::intern::{Interner, Symbol};
use crate::predicate::{Operator, Predicate};
use crate::value::Value;

/// Identifier of a subscription, unique within one matcher instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubId(pub u64);

impl fmt::Debug for SubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub#{}", self.0)
    }
}

impl fmt::Display for SubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub#{}", self.0)
    }
}

/// A conjunctive subscription.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Subscription {
    id: SubId,
    predicates: Vec<Predicate>,
}

impl Subscription {
    /// Creates a subscription from predicates.
    pub fn new(id: SubId, predicates: Vec<Predicate>) -> Self {
        Subscription { id, predicates }
    }

    /// The subscription's identifier.
    #[inline]
    pub fn id(&self) -> SubId {
        self.id
    }

    /// The conjunction of predicates.
    #[inline]
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// True for the empty conjunction, which matches every event.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Returns a copy with a different id (used by subscription-rewrite
    /// strategies that fan one user subscription out into several engine
    /// subscriptions).
    pub fn with_id(&self, id: SubId) -> Self {
        Subscription { id, predicates: self.predicates.clone() }
    }

    /// Returns a copy with the predicate list replaced.
    pub fn with_predicates(&self, predicates: Vec<Predicate>) -> Self {
        Subscription { id: self.id, predicates }
    }

    /// Syntactic (purely structural) matching: every predicate satisfied
    /// under ∃-semantics. This is the ground-truth definition every
    /// matching engine must agree with.
    pub fn matches(&self, event: &Event, interner: &Interner) -> bool {
        self.predicates.iter().all(|p| event.satisfies(p, interner))
    }

    /// Renders the subscription for humans.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> impl fmt::Display + 'a {
        SubscriptionDisplay { sub: self, interner }
    }
}

/// Convenience builder that interns attribute names and string values,
/// mirroring [`crate::event::EventBuilder`].
pub struct SubscriptionBuilder<'a> {
    interner: &'a mut Interner,
    predicates: Vec<Predicate>,
}

impl<'a> SubscriptionBuilder<'a> {
    /// Starts building against `interner`.
    pub fn new(interner: &'a mut Interner) -> Self {
        SubscriptionBuilder { interner, predicates: Vec::new() }
    }

    /// Adds `attr ⊙ value` with a [`Value`] right-hand side.
    pub fn pred(mut self, attr: &str, op: Operator, value: impl Into<Value>) -> Self {
        let attr = self.interner.intern(attr);
        self.predicates.push(Predicate::new(attr, op, value.into()));
        self
    }

    /// Adds `attr ⊙ term` with a categorical right-hand side.
    pub fn term(mut self, attr: &str, op: Operator, term: &str) -> Self {
        let attr = self.interner.intern(attr);
        let term = self.interner.intern(term);
        self.predicates.push(Predicate::new(attr, op, Value::Sym(term)));
        self
    }

    /// Adds `attr = term` (the common case in the paper's examples).
    pub fn term_eq(self, attr: &str, term: &str) -> Self {
        self.term(attr, Operator::Eq, term)
    }

    /// Adds `attr exists`.
    pub fn exists(mut self, attr: &str) -> Self {
        let attr = self.interner.intern(attr);
        self.predicates.push(Predicate::exists(attr));
        self
    }

    /// Finishes the subscription.
    pub fn build(self, id: SubId) -> Subscription {
        Subscription::new(id, self.predicates)
    }
}

struct SubscriptionDisplay<'a> {
    sub: &'a Subscription,
    interner: &'a Interner,
}

impl fmt::Display for SubscriptionDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sub.predicates.is_empty() {
            return write!(f, "{}: (true)", self.sub.id);
        }
        write!(f, "{}: ", self.sub.id)?;
        for (idx, p) in self.sub.predicates.iter().enumerate() {
            if idx > 0 {
                f.write_str(" AND ")?;
            }
            write!(f, "({})", p.display(self.interner))?;
        }
        Ok(())
    }
}

/// Iterates over the attributes referenced by a subscription without
/// duplicates (small-N: subscriptions typically have < 10 predicates, so a
/// linear scan beats a hash set).
pub fn distinct_attrs(sub: &Subscription) -> Vec<Symbol> {
    let mut attrs: Vec<Symbol> = Vec::with_capacity(sub.len());
    for p in sub.predicates() {
        if !attrs.contains(&p.attr) {
            attrs.push(p.attr);
        }
    }
    attrs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventBuilder;

    /// The paper's Section 1 example: the recruiter subscription must
    /// match a suitable candidate event *after* semantic processing; here
    /// we check the purely syntactic part of the definition.
    #[test]
    fn syntactic_matching_is_conjunctive() {
        let mut i = Interner::new();
        let sub = SubscriptionBuilder::new(&mut i)
            .term_eq("university", "toronto")
            .pred("professional experience", Operator::Ge, 4i64)
            .build(SubId(1));

        let matching = EventBuilder::new(&mut i)
            .term("university", "toronto")
            .pair("professional experience", 5i64)
            .build();
        let wrong_value = EventBuilder::new(&mut i)
            .term("university", "waterloo")
            .pair("professional experience", 5i64)
            .build();
        let missing_attr = EventBuilder::new(&mut i).term("university", "toronto").build();

        assert!(sub.matches(&matching, &i));
        assert!(!sub.matches(&wrong_value, &i));
        assert!(!sub.matches(&missing_attr, &i));
    }

    #[test]
    fn empty_subscription_matches_everything() {
        let mut i = Interner::new();
        let sub = Subscription::new(SubId(0), vec![]);
        assert!(sub.is_empty());
        let e = EventBuilder::new(&mut i).pair("x", 1i64).build();
        assert!(sub.matches(&e, &i));
        assert!(sub.matches(&Event::new(), &i));
    }

    #[test]
    fn with_id_and_with_predicates_rebuild() {
        let mut i = Interner::new();
        let sub = SubscriptionBuilder::new(&mut i).exists("degree").build(SubId(7));
        let renamed = sub.with_id(SubId(9));
        assert_eq!(renamed.id(), SubId(9));
        assert_eq!(renamed.predicates(), sub.predicates());

        let stripped = sub.with_predicates(vec![]);
        assert_eq!(stripped.id(), SubId(7));
        assert!(stripped.is_empty());
    }

    #[test]
    fn duplicate_attr_predicates_form_ranges() {
        let mut i = Interner::new();
        let sub = SubscriptionBuilder::new(&mut i)
            .pred("x", Operator::Ge, 2i64)
            .pred("x", Operator::Lt, 10i64)
            .build(SubId(1));
        let inside = EventBuilder::new(&mut i).pair("x", 5i64).build();
        let outside = EventBuilder::new(&mut i).pair("x", 12i64).build();
        assert!(sub.matches(&inside, &i));
        assert!(!sub.matches(&outside, &i));
    }

    #[test]
    fn distinct_attrs_deduplicates_in_order() {
        let mut i = Interner::new();
        let sub = SubscriptionBuilder::new(&mut i)
            .pred("x", Operator::Ge, 2i64)
            .pred("y", Operator::Lt, 10i64)
            .pred("x", Operator::Lt, 10i64)
            .build(SubId(1));
        let attrs = distinct_attrs(&sub);
        let x = i.get("x").unwrap();
        let y = i.get("y").unwrap();
        assert_eq!(attrs, vec![x, y]);
    }

    #[test]
    fn display_is_readable() {
        let mut i = Interner::new();
        let sub = SubscriptionBuilder::new(&mut i)
            .term_eq("university", "toronto")
            .pred("professional experience", Operator::Ge, 4i64)
            .build(SubId(3));
        assert_eq!(
            format!("{}", sub.display(&i)),
            "sub#3: (university = toronto) AND (professional experience >= 4)"
        );
        let empty = Subscription::new(SubId(0), vec![]);
        assert_eq!(format!("{}", empty.display(&i)), "sub#0: (true)");
    }
}
