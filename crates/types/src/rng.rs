//! Deterministic pseudo-random numbers, shared by every layer.
//!
//! Experiments must be reproducible bit-for-bit across machines and crate
//! upgrades, so the generator is implemented here rather than taken from a
//! crate whose stream might change between versions: PCG-XSH-RR 64/32
//! (O'Neill 2014) seeded through SplitMix64. Not cryptographic; not meant
//! to be.
//!
//! This is the single RNG implementation in the workspace: the workload
//! generators re-export it as `stopss_workload::rng`, and the broker's
//! simulated transports (seeded UDP loss) draw from it directly — there
//! is exactly one stream definition under test.

/// SplitMix64 — used to expand one `u64` seed into stream-independent
/// initial states.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG-XSH-RR 64/32: 64-bit state, 32-bit output, excellent statistical
/// quality for its size and trivially seedable.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Rng {
    /// Creates a deterministic generator from a seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let init_state = sm.next_u64();
        let init_inc = sm.next_u64() | 1; // increment must be odd
        let mut rng = Rng { state: 0, inc: init_inc };
        rng.state = init_state.wrapping_add(init_inc);
        rng.next_u32();
        rng
    }

    /// Derives an independent stream (for per-client generators).
    pub fn fork(&mut self, stream: u64) -> Rng {
        Rng::new(self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`. `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Lemire's multiply-shift; the slight modulo bias of the naive
        // approach would be harmless here, but this is just as cheap.
        ((self.next_u32() as u64 * n as u64) >> 32) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniformly picks an element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for k in (1..items.len()).rev() {
            items.swap(k, self.index(k + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn golden_values_pin_the_stream() {
        // Regression pin against hard-coded literals: if these change,
        // every experiment's workload (and the broker's seeded UDP loss
        // pattern) silently changes too.
        let mut rng = Rng::new(2003);
        let got: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        assert_eq!(got, [300040452, 1343330199, 2050292906, 2342400987]);
        let mut rng = Rng::new(42);
        let got64: Vec<u64> = (0..2).map(|_| rng.next_u64()).collect();
        assert_eq!(got64, [18426880419652318212, 15651267610458985608]);
    }

    /// Golden pins for the derived draw paths (fork, index, range,
    /// chance) and the SplitMix64 expander. The committed workload
    /// fixtures and chaos fault schedules are downstream of every one of
    /// these streams, so a refactor that shifts any of them must fail
    /// here before it silently rewrites the goldens.
    #[test]
    fn golden_values_pin_the_derived_streams() {
        let mut sm = SplitMix64::new(2003);
        let got: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(got, [333383092983190037, 7734571167853026315, 9197357792466191094]);

        let mut root = Rng::new(2003);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        let got1: Vec<u32> = (0..3).map(|_| f1.next_u32()).collect();
        let got2: Vec<u32> = (0..3).map(|_| f2.next_u32()).collect();
        assert_eq!(got1, [2289646462, 1757236824, 84307214]);
        assert_eq!(got2, [3095145738, 1359208396, 16424293]);

        let mut rng = Rng::new(7);
        let idx: Vec<usize> = (0..6).map(|_| rng.index(10)).collect();
        assert_eq!(idx, [3, 0, 7, 9, 9, 6]);

        let mut rng = Rng::new(7);
        let rng_i64: Vec<i64> = (0..6).map(|_| rng.range_i64(-50, 50)).collect();
        assert_eq!(rng_i64, [-8, -17, -38, 5, 27, 9]);

        let mut rng = Rng::new(7);
        let flips: Vec<bool> = (0..8).map(|_| rng.chance(0.5)).collect();
        assert_eq!(flips, [true, false, false, true, true, true, true, false]);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn index_is_in_bounds_and_covers() {
        let mut rng = Rng::new(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.index(10)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit in 1000 draws");
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Rng::new(3);
        for _ in 0..1_000 {
            let v = rng.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = Rng::new(99);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Rng::new(5);
        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "20 elements almost surely move");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = Rng::new(1);
        let mut s1 = root.fork(1);
        let mut s2 = root.fork(2);
        let same = (0..64).filter(|_| s1.next_u64() == s2.next_u64()).count();
        assert!(same < 2);
    }
}
