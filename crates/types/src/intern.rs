//! String interning.
//!
//! Attribute names and categorical values flow through every layer of the
//! system (synonym tables, taxonomies, predicate indexes), so they are
//! interned once into dense [`Symbol`] handles and compared / hashed as
//! `u32` afterwards. The interner is append-only: symbols are never
//! invalidated, which lets long-lived indexes store raw `Symbol`s.

use std::fmt;

use crate::sync::{Arc, RwLock};

use crate::hash::FxHashMap;

/// A handle to an interned string. Cheap to copy, hash and compare.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them; mixing symbols from different interners is a logic error (the
/// types cannot catch it, but `debug_assert`s in higher layers do).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Returns the raw index of this symbol in its interner.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a symbol from a raw index. Intended for codecs and
    /// dense side-tables; the caller must guarantee the index came from
    /// [`Symbol::index`] on the same interner.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Symbol(u32::try_from(index).expect("interner overflow: more than u32::MAX symbols"))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only string interner.
#[derive(Default, Debug, Clone)]
pub struct Interner {
    map: FxHashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner with capacity for `cap` distinct strings.
    pub fn with_capacity(cap: usize) -> Self {
        Interner {
            map: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
            strings: Vec::with_capacity(cap),
        }
    }

    /// Interns `s`, returning its symbol. Repeated calls with the same
    /// string return the same symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol::from_index(self.strings.len());
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up a previously interned string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Resolves a symbol, returning `None` for foreign symbols instead of
    /// panicking.
    pub fn try_resolve(&self, sym: Symbol) -> Option<&str> {
        self.strings.get(sym.index()).map(|s| &**s)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(symbol, string)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (Symbol::from_index(i), &**s))
    }
}

/// A cheaply clonable, thread-safe interner handle.
///
/// The broker and the workload generator intern from multiple threads; the
/// matching hot path only *resolves*, which takes the read lock.
#[derive(Clone, Default, Debug)]
pub struct SharedInterner {
    inner: Arc<RwLock<Interner>>,
}

impl SharedInterner {
    /// Creates an empty shared interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing interner.
    pub fn from_interner(interner: Interner) -> Self {
        SharedInterner { inner: Arc::new(RwLock::new(interner)) }
    }

    /// Interns a string (write lock).
    pub fn intern(&self, s: &str) -> Symbol {
        // Fast path: already interned (read lock only).
        if let Some(sym) = self.inner.read().get(s) {
            return sym;
        }
        self.inner.write().intern(s)
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.inner.read().get(s)
    }

    /// Resolves a symbol to an owned string.
    pub fn resolve(&self, sym: Symbol) -> String {
        self.inner.read().resolve(sym).to_owned()
    }

    /// Runs `f` with the underlying interner borrowed for reading. Use this
    /// on hot paths to avoid the owned-`String` allocation of
    /// [`SharedInterner::resolve`].
    pub fn with<R>(&self, f: impl FnOnce(&Interner) -> R) -> R {
        f(&self.inner.read())
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Returns a deep copy of the current interner contents.
    pub fn snapshot(&self) -> Interner {
        self.inner.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("university");
        let b = i.intern("university");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("school");
        let b = i.intern("university");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "school");
        assert_eq!(i.resolve(b), "university");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn try_resolve_handles_foreign_symbols() {
        let i = Interner::new();
        assert_eq!(i.try_resolve(Symbol::from_index(3)), None);
    }

    #[test]
    fn iteration_preserves_interning_order() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        let got: Vec<_> = i.iter().collect();
        assert_eq!(got, vec![(a, "a"), (b, "b")]);
    }

    #[test]
    fn shared_interner_roundtrip() {
        let shared = SharedInterner::new();
        let sym = shared.intern("degree");
        assert_eq!(shared.resolve(sym), "degree");
        assert_eq!(shared.intern("degree"), sym);
        assert_eq!(shared.len(), 1);
        shared.with(|i| assert_eq!(i.resolve(sym), "degree"));
    }

    #[test]
    fn shared_interner_is_actually_shared() {
        let a = SharedInterner::new();
        let b = a.clone();
        let sym = a.intern("phd");
        assert_eq!(b.get("phd"), Some(sym));
    }

    #[test]
    fn shared_interner_concurrent_interning_is_consistent() {
        let shared = SharedInterner::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = shared.clone();
                std::thread::spawn(move || {
                    (0..100).map(|k| s.intern(&format!("w{k}"))).collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in &results[1..] {
            assert_eq!(w, &results[0]);
        }
        assert_eq!(shared.len(), 100);
    }
}
