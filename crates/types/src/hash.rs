//! Fast, non-cryptographic hashing for internal data structures.
//!
//! The matching and ontology layers hash small keys (interned `u32` symbols,
//! short strings, predicate triples) on every publication, so hashing shows
//! up hot in profiles. SipHash's HashDoS protection buys nothing here: all
//! keys are produced by the system itself, never by an untrusted network
//! peer. This module implements the FNV-free "Fx" mix used by rustc, which
//! is the fastest option for short keys among the common alternatives.

use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant used by the Fx mix (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic [`Hasher`] for trusted, internally generated
/// keys. Do not use it on attacker-controlled input.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // chunk is exactly 8 bytes by construction.
            let word = u64::from_le_bytes(chunk.try_into().unwrap());
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
            // Disambiguate "abc" from "abc\0": fold in the length.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hashes a single value with [`FxHasher`]; convenience for dedup keys.
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic() {
        assert_eq!(fx_hash_one(&42u64), fx_hash_one(&42u64));
        assert_eq!(fx_hash_one(&"hello"), fx_hash_one(&"hello"));
    }

    #[test]
    fn different_keys_usually_differ() {
        assert_ne!(fx_hash_one(&1u64), fx_hash_one(&2u64));
        assert_ne!(fx_hash_one(&"abc"), fx_hash_one(&"abd"));
    }

    #[test]
    fn length_is_folded_into_short_strings() {
        // "abc" must not collide with "abc\0" through zero padding.
        assert_ne!(fx_hash_one(&b"abc".as_slice()), fx_hash_one(&b"abc\0".as_slice()));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(7, "seven");
        assert_eq!(map.get(&7), Some(&"seven"));

        let mut set: FxHashSet<&str> = FxHashSet::default();
        set.insert("x");
        assert!(set.contains("x"));
    }

    #[test]
    fn long_inputs_hash_all_bytes() {
        let a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        b[63] = 1;
        assert_ne!(fx_hash_one(&a), fx_hash_one(&b));
    }
}
