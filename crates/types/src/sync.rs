//! The workspace synchronization facade.
//!
//! Every crate in the workspace imports its concurrency primitives from
//! here instead of `std::sync`/`parking_lot` directly (enforced by
//! `stopss-lint`'s `sync-facade` rule). In an ordinary build the facade
//! is exactly the vendored `parking_lot` locks plus `std` atomics and
//! containers — zero-cost re-exports. With the `loom` cargo feature the
//! same names resolve to the instrumented types from `vendor/loom-lite`,
//! so the model-check suites (`cargo test --features loom --test
//! loom_model`) explore every bounded interleaving of the *real*
//! production types, not hand-written doubles.
//!
//! Items deliberately **not** behind the facade: `std::thread` (worker
//! threads are spawned by harnesses and long-running services, never by
//! the state machines the models exercise) and `std::sync::mpsc`
//! channels re-exported verbatim (un-instrumented in both modes; model
//! scenarios avoid racing on them).

#[cfg(feature = "loom")]
pub use loom_lite::sync::{
    atomic, mpsc, Arc, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard, Weak,
};

#[cfg(not(feature = "loom"))]
pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
#[cfg(not(feature = "loom"))]
pub use std::sync::{atomic, mpsc, Arc, OnceLock, Weak};
