//! Attribute values.
//!
//! Values in publications and subscription predicates are integers, floats,
//! booleans, or categorical terms. Categorical terms are interned
//! [`Symbol`]s — they are exactly the things the ontology layer relates
//! through synonym tables and concept hierarchies.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::intern::{Interner, Symbol};

/// A publication / predicate value.
#[derive(Clone, Copy, Debug)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Interned categorical term (string).
    Sym(Symbol),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// Discriminant rank used to build the cross-type total order.
    #[inline]
    fn type_rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Float(_) => 1,
            Value::Sym(_) => 2,
            Value::Bool(_) => 3,
        }
    }

    /// True for `Int` and `Float`.
    #[inline]
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Numeric view of the value, if it is numeric.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The symbol inside a `Sym` value.
    #[inline]
    pub fn as_symbol(&self) -> Option<Symbol> {
        match self {
            Value::Sym(s) => Some(*s),
            _ => None,
        }
    }

    /// The integer inside an `Int` value.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The bool inside a `Bool` value.
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Ordering used by *range predicates* (`<`, `<=`, `>`, `>=`).
    ///
    /// `Int` and `Float` compare numerically with each other; every other
    /// cross-type pair is incomparable (`None`), which makes the range
    /// predicate unsatisfied — matching silently across types would hide
    /// schema errors. `Sym`/`Sym` and `Bool`/`Bool` are also incomparable:
    /// symbols have no meaningful runtime order (their `u32` order is
    /// interning order), and ordering booleans is not useful.
    pub fn range_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            _ => None,
        }
    }

    /// A total order over all values, used only by ordered index
    /// structures (never by predicate semantics): type rank major, then
    /// in-type order, with floats ordered by `total_cmp`.
    pub fn index_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Sym(a), Value::Sym(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    /// Renders the value for humans, resolving symbols via `interner`.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> impl fmt::Display + 'a {
        ValueDisplay { value: self, interner }
    }
}

/// Strict, hash-compatible equality: same variant, same payload. Floats
/// compare by bit pattern so `Value` can be a hash-map key (equality
/// predicate indexes rely on this).
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Sym(a), Value::Sym(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.type_rank());
        match self {
            Value::Int(i) => state.write_i64(*i),
            Value::Float(f) => state.write_u64(f.to_bits()),
            Value::Sym(s) => s.hash(state),
            Value::Bool(b) => state.write_u8(*b as u8),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<Symbol> for Value {
    fn from(v: Symbol) -> Self {
        Value::Sym(v)
    }
}

struct ValueDisplay<'a> {
    value: &'a Value,
    interner: &'a Interner,
}

impl fmt::Display for ValueDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.value {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Sym(s) => match self.interner.try_resolve(*s) {
                Some(text) => write!(f, "{text}"),
                None => write!(f, "{s:?}"),
            },
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: &mut Interner, s: &str) -> Value {
        Value::Sym(i.intern(s))
    }

    #[test]
    fn strict_equality_is_variant_sensitive() {
        assert_eq!(Value::Int(1), Value::Int(1));
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_ne!(Value::Bool(true), Value::Int(1));
    }

    #[test]
    fn float_equality_uses_bits_so_eq_is_reflexive() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan);
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
    }

    #[test]
    fn range_cmp_is_numeric_and_cross_type_for_numbers() {
        assert_eq!(Value::Int(1).range_cmp(&Value::Float(1.5)), Some(Ordering::Less));
        assert_eq!(Value::Float(2.0).range_cmp(&Value::Int(2)), Some(Ordering::Equal));
        assert_eq!(Value::Int(3).range_cmp(&Value::Int(2)), Some(Ordering::Greater));
    }

    #[test]
    fn range_cmp_rejects_non_numeric_pairs() {
        let mut i = Interner::new();
        let a = sym(&mut i, "a");
        assert_eq!(a.range_cmp(&a), None);
        assert_eq!(Value::Bool(true).range_cmp(&Value::Bool(false)), None);
        assert_eq!(Value::Int(1).range_cmp(&a), None);
        assert_eq!(Value::Float(f64::NAN).range_cmp(&Value::Float(1.0)), None);
    }

    #[test]
    fn index_cmp_is_total_and_consistent() {
        let mut i = Interner::new();
        let vals = [
            Value::Int(-5),
            Value::Int(7),
            Value::Float(f64::NAN),
            Value::Float(0.5),
            sym(&mut i, "x"),
            sym(&mut i, "y"),
            Value::Bool(false),
            Value::Bool(true),
        ];
        for a in &vals {
            assert_eq!(a.index_cmp(a), Ordering::Equal);
            for b in &vals {
                assert_eq!(a.index_cmp(b), b.index_cmp(a).reverse());
            }
        }
    }

    #[test]
    fn hash_agrees_with_eq() {
        use crate::hash::fx_hash_one;
        assert_eq!(fx_hash_one(&Value::Int(9)), fx_hash_one(&Value::Int(9)));
        let nan = Value::Float(f64::NAN);
        assert_eq!(fx_hash_one(&nan), fx_hash_one(&nan));
    }

    #[test]
    fn accessors() {
        let mut i = Interner::new();
        let s = i.intern("toronto");
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Sym(s).as_symbol(), Some(s));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert!(Value::Sym(s).as_f64().is_none());
        assert!(!Value::Sym(s).is_numeric());
        assert!(Value::Int(0).is_numeric());
    }

    #[test]
    fn display_resolves_symbols() {
        let mut i = Interner::new();
        let v = sym(&mut i, "phd");
        assert_eq!(format!("{}", v.display(&i)), "phd");
        assert_eq!(format!("{}", Value::Int(3).display(&i)), "3");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
    }
}
