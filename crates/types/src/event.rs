//! Publications (events).
//!
//! An event is a list of attribute–value pairs. Duplicate attributes are
//! allowed: the semantic layer's *generalized event* strategy widens an
//! event by adding `(attr, ancestor-of-value)` pairs in place, so a
//! predicate is satisfied if **any** pair for its attribute satisfies it
//! (∃-semantics). Plain syntactic events produced by publishers have
//! distinct attributes, for which ∃-semantics coincides with the usual
//! single-valued reading.

use std::fmt;

use crate::hash::fx_hash_one;
use crate::intern::{Interner, Symbol};
use crate::predicate::Predicate;
use crate::value::Value;

/// A publication: attribute–value pairs, in insertion order.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Event {
    pairs: Vec<(Symbol, Value)>,
}

impl Event {
    /// Creates an empty event.
    pub fn new() -> Self {
        Event::default()
    }

    /// Creates an event with room for `cap` pairs.
    pub fn with_capacity(cap: usize) -> Self {
        Event { pairs: Vec::with_capacity(cap) }
    }

    /// Creates an event from pairs.
    pub fn from_pairs(pairs: Vec<(Symbol, Value)>) -> Self {
        Event { pairs }
    }

    /// Appends a pair.
    pub fn push(&mut self, attr: Symbol, value: impl Into<Value>) {
        self.pairs.push((attr, value.into()));
    }

    /// Appends a pair, builder-style.
    pub fn with(mut self, attr: Symbol, value: impl Into<Value>) -> Self {
        self.push(attr, value);
        self
    }

    /// Appends a pair only if the exact `(attr, value)` pair is not already
    /// present. Returns true if the pair was added. Used by the semantic
    /// stages to keep derived events duplicate-free.
    pub fn push_unique(&mut self, attr: Symbol, value: Value) -> bool {
        if self.pairs.iter().any(|(a, v)| *a == attr && *v == value) {
            return false;
        }
        self.pairs.push((attr, value));
        true
    }

    /// All pairs, in insertion order.
    #[inline]
    pub fn pairs(&self) -> &[(Symbol, Value)] {
        &self.pairs
    }

    /// Values carried for `attr` (usually zero or one; more after
    /// generalization).
    pub fn values_for<'a>(&'a self, attr: Symbol) -> impl Iterator<Item = &'a Value> + 'a {
        self.pairs.iter().filter(move |(a, _)| *a == attr).map(|(_, v)| v)
    }

    /// First value carried for `attr`, if any.
    pub fn get(&self, attr: Symbol) -> Option<&Value> {
        self.values_for(attr).next()
    }

    /// True if the event carries `attr`.
    pub fn has_attr(&self, attr: Symbol) -> bool {
        self.pairs.iter().any(|(a, _)| *a == attr)
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the event has no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// ∃-semantics satisfaction: does any pair for the predicate's
    /// attribute satisfy it?
    pub fn satisfies(&self, pred: &Predicate, interner: &Interner) -> bool {
        self.values_for(pred.attr).any(|v| pred.eval(v, interner))
    }

    /// An order-insensitive fingerprint of the pair multiset, used by the
    /// semantic pipeline to deduplicate derived events cheaply. Pairs are
    /// hashed individually and combined with a commutative fold so that
    /// permuted events collide intentionally.
    pub fn fingerprint(&self) -> u64 {
        let mut acc: u64 = 0x9e37_79b9_7f4a_7c15 ^ (self.pairs.len() as u64);
        for pair in &self.pairs {
            acc = acc.wrapping_add(fx_hash_one(pair));
        }
        acc
    }

    /// Renders the event for humans.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> impl fmt::Display + 'a {
        EventDisplay { event: self, interner }
    }
}

impl FromIterator<(Symbol, Value)> for Event {
    fn from_iter<T: IntoIterator<Item = (Symbol, Value)>>(iter: T) -> Self {
        Event { pairs: iter.into_iter().collect() }
    }
}

/// Convenience builder that interns attribute names and string values on
/// the fly; intended for tests, examples, and the demo front-end rather
/// than hot paths.
pub struct EventBuilder<'a> {
    interner: &'a mut Interner,
    event: Event,
}

impl<'a> EventBuilder<'a> {
    /// Starts building an event against `interner`.
    pub fn new(interner: &'a mut Interner) -> Self {
        EventBuilder { interner, event: Event::new() }
    }

    /// Adds `attr = value` where `value` is already a [`Value`].
    pub fn pair(mut self, attr: &str, value: impl Into<Value>) -> Self {
        let attr = self.interner.intern(attr);
        self.event.push(attr, value);
        self
    }

    /// Adds `attr = value` where `value` is a categorical string.
    pub fn term(mut self, attr: &str, value: &str) -> Self {
        let attr = self.interner.intern(attr);
        let value = self.interner.intern(value);
        self.event.push(attr, Value::Sym(value));
        self
    }

    /// Finishes the event.
    pub fn build(self) -> Event {
        self.event
    }
}

struct EventDisplay<'a> {
    event: &'a Event,
    interner: &'a Interner,
}

impl fmt::Display for EventDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (idx, (attr, value)) in self.event.pairs.iter().enumerate() {
            if idx > 0 {
                f.write_str(" ")?;
            }
            let attr = self.interner.try_resolve(*attr).unwrap_or("<foreign-attr>");
            write!(f, "({attr}, {})", value.display(self.interner))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Operator;

    #[test]
    fn builder_and_accessors() {
        let mut i = Interner::new();
        let e = EventBuilder::new(&mut i)
            .term("school", "toronto")
            .pair("professional experience", 5i64)
            .build();
        let school = i.get("school").unwrap();
        let exp = i.get("professional experience").unwrap();
        assert_eq!(e.len(), 2);
        assert!(e.has_attr(school));
        assert_eq!(e.get(exp), Some(&Value::Int(5)));
        assert_eq!(e.get(i.intern("missing")), None);
    }

    #[test]
    fn multi_valued_attributes_are_supported() {
        let mut i = Interner::new();
        let skill = i.intern("skill");
        let java = i.intern("java");
        let lang = i.intern("language");
        let e = Event::new().with(skill, Value::Sym(java)).with(skill, Value::Sym(lang));
        assert_eq!(e.values_for(skill).count(), 2);
        assert_eq!(e.get(skill), Some(&Value::Sym(java)));
    }

    #[test]
    fn push_unique_deduplicates_exact_pairs() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let mut e = Event::new();
        assert!(e.push_unique(a, Value::Int(1)));
        assert!(!e.push_unique(a, Value::Int(1)));
        assert!(e.push_unique(a, Value::Int(2)));
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn satisfies_uses_exists_semantics_over_pairs() {
        let mut i = Interner::new();
        let x = i.intern("x");
        let e = Event::new().with(x, Value::Int(1)).with(x, Value::Int(10));
        let gt5 = Predicate::new(x, Operator::Gt, Value::Int(5));
        let lt0 = Predicate::new(x, Operator::Lt, Value::Int(0));
        assert!(e.satisfies(&gt5, &i));
        assert!(!e.satisfies(&lt0, &i));
    }

    #[test]
    fn fingerprint_is_order_insensitive() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        let e1 = Event::new().with(a, Value::Int(1)).with(b, Value::Int(2));
        let e2 = Event::new().with(b, Value::Int(2)).with(a, Value::Int(1));
        assert_eq!(e1.fingerprint(), e2.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_different_multisets() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let e1 = Event::new().with(a, Value::Int(1));
        let e2 = Event::new().with(a, Value::Int(2));
        let e3 = Event::new().with(a, Value::Int(1)).with(a, Value::Int(1));
        assert_ne!(e1.fingerprint(), e2.fingerprint());
        assert_ne!(e1.fingerprint(), e3.fingerprint());
    }

    #[test]
    fn display_lists_pairs_in_order() {
        let mut i = Interner::new();
        let e = EventBuilder::new(&mut i).term("degree", "phd").pair("year", 1990i64).build();
        assert_eq!(format!("{}", e.display(&i)), "(degree, phd) (year, 1990)");
    }

    #[test]
    fn from_iterator_collects_pairs() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let e: Event = vec![(a, Value::Int(1))].into_iter().collect();
        assert_eq!(e.len(), 1);
    }
}
