//! CLI for the project-invariant checker. See `stopss_lint` for the
//! rule engine; `docs/STATIC_ANALYSIS.md` for the rule catalogue.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut check = false;
    let mut list_rules = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--list-rules" => list_rules = true,
            "--root" => match iter.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--root requires a path argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                print_usage();
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in stopss_lint::rules() {
            println!("{:<24} {}", rule.name, rule.summary);
        }
        return ExitCode::SUCCESS;
    }
    if !check {
        print_usage();
        return ExitCode::from(2);
    }

    let root = root.unwrap_or_else(|| PathBuf::from("."));
    match stopss_lint::check_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("stopss-lint: all rules clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("stopss-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("stopss-lint: {err}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "usage: stopss-lint [--root <workspace-dir>] --check\n       stopss-lint --list-rules"
    );
}
