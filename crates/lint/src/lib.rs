//! `stopss-lint` — project-invariant checker for the S-ToPSS workspace.
//!
//! Offline static analysis over the workspace's own source, enforcing
//! conventions that `rustc`/`clippy` can't express because they are
//! *project* rules, not language rules:
//!
//! * `sync-facade` — runtime code uses `stopss_types::sync` (which
//!   swaps to `loom-lite` under the `loom` feature), never `std::sync`
//!   / `parking_lot` directly. A type that bypasses the facade
//!   silently falls out of model checking.
//! * `no-panic-hot-path` — no `.unwrap()` / `panic!` in broker/core
//!   hot paths; `.expect(...)` only with a message starting
//!   `"invariant: "` that names the invariant relied on.
//! * `ordering-justified` — every `Ordering::Relaxed` /
//!   `Ordering::SeqCst` carries an `// ordering:` justification in the
//!   same paragraph.
//! * `no-wall-clock` — deterministic chaos/session code never reads
//!   `Instant::now` / `SystemTime::now`; time is logical ticks so
//!   seeded runs stay bit-reproducible.
//! * `wire-tags-sync` — the wire tag tables in
//!   `crates/broker/src/wire.rs` match `docs/WIRE_PROTOCOL.md` and
//!   keep their append-only frozen prefix.
//! * `conservation-counters` — every counter named in a
//!   `// conservation:` identity anchor has at least one increment
//!   site in the workspace.
//!
//! Findings are suppressed per-site with `// lint: allow(rule-name)`
//! on the offending line or the line above, or per-file with
//! `// lint: allow-file(rule-name)` anywhere in the file. Suppression
//! is deliberate and greppable — the point is an audit trail, not a
//! gate that gets wedged open.
//!
//! The analysis is line-oriented and intentionally dumb: comments and
//! string literals are stripped first, `#[cfg(test)]` regions are
//! skipped by brace tracking, and everything else is substring
//! matching. Dumb is a feature — the checker has zero dependencies,
//! runs in milliseconds, and anyone can read the whole engine in one
//! sitting. See `docs/STATIC_ANALYSIS.md` for the catalogue and the
//! escalation story.

use std::fmt;
use std::path::{Path, PathBuf};

/// Rule name: runtime code must import sync primitives from the
/// `stopss_types::sync` facade.
pub const RULE_SYNC_FACADE: &str = "sync-facade";
/// Rule name: no `.unwrap()`/`panic!`/unjustified `.expect` in hot paths.
pub const RULE_NO_PANIC: &str = "no-panic-hot-path";
/// Rule name: relaxed/seq-cst atomics need an `// ordering:` comment.
pub const RULE_ORDERING: &str = "ordering-justified";
/// Rule name: no wall-clock reads in deterministic code.
pub const RULE_WALL_CLOCK: &str = "no-wall-clock";
/// Rule name: wire tag tables stay append-only and doc-synced.
pub const RULE_WIRE_TAGS: &str = "wire-tags-sync";
/// Rule name: conservation-identity counters have increment sites.
pub const RULE_CONSERVATION: &str = "conservation-counters";

/// Hot-path files for `no-panic-hot-path`: the publish → match →
/// notify pipeline and the serving path. Harness/demo code
/// (`chaos.rs`, `server.rs`, `client.rs`) is excluded — it asserts
/// freely.
const HOT_PATHS: &[&str] = &[
    "crates/broker/src/eventloop.rs",
    "crates/broker/src/session.rs",
    "crates/broker/src/wire.rs",
    "crates/broker/src/dispatcher.rs",
    "crates/broker/src/notify.rs",
    "crates/broker/src/transport.rs",
    "crates/core/src/matcher.rs",
    "crates/core/src/sharded.rs",
    "crates/core/src/frontend.rs",
];

/// Deterministic files for `no-wall-clock`: anything a seeded
/// chaos/workload run replays must not observe wall time.
const DETERMINISTIC_PATHS: &[&str] =
    &["crates/broker/src/chaos.rs", "crates/broker/src/session.rs", "crates/workload/src/"];

/// The facade itself is the one place allowed to name the real
/// primitives.
const FACADE_PATH: &str = "crates/types/src/sync.rs";

/// Append-only baseline for the wire tag tables: the frozen prefix
/// that deployed peers already speak. `wire-tags-sync` fails if any of
/// these entries moves; new variants may only be appended after them
/// (and must reach `docs/WIRE_PROTOCOL.md` in the same change).
const CLIENT_TAG_BASELINE: &[&str] = &[
    "Register",
    "Subscribe",
    "Unsubscribe",
    "Publish",
    "SetMode",
    "Hello",
    "Ack",
    "Ping",
    "SetOntology",
];
/// Server-side half of the frozen baseline (see [`CLIENT_TAG_BASELINE`]).
const SERVER_TAG_BASELINE: &[&str] = &[
    "Registered",
    "Subscribed",
    "Unsubscribed",
    "Published",
    "ModeSet",
    "Error",
    "Notification",
    "Welcome",
    "Pong",
    "OntologyUpdated",
];
/// Value tags are closed: the set is frozen, not just the prefix.
const VALUE_TAG_BASELINE: &[&str] = &["Int", "Float", "Term", "Bool"];

/// A named rule, for `--list-rules`.
pub struct RuleInfo {
    /// Stable rule name, usable in `// lint: allow(...)`.
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// All rules the checker knows, in evaluation order.
pub fn rules() -> Vec<RuleInfo> {
    vec![
        RuleInfo {
            name: RULE_SYNC_FACADE,
            summary: "runtime code uses stopss_types::sync, not std::sync/parking_lot",
        },
        RuleInfo {
            name: RULE_NO_PANIC,
            summary: "no unwrap()/panic!/unjustified expect() in broker/core hot paths",
        },
        RuleInfo {
            name: RULE_ORDERING,
            summary: "Ordering::Relaxed/SeqCst sites carry an `// ordering:` justification",
        },
        RuleInfo {
            name: RULE_WALL_CLOCK,
            summary: "no Instant::now/SystemTime::now in deterministic chaos/session code",
        },
        RuleInfo {
            name: RULE_WIRE_TAGS,
            summary: "wire tag tables append-only and in sync with docs/WIRE_PROTOCOL.md",
        },
        RuleInfo {
            name: RULE_CONSERVATION,
            summary: "every counter in a `// conservation:` identity has an increment site",
        },
    ]
}

/// One finding: which rule fired, where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line, or 0 for whole-file findings.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// One source line after preprocessing.
struct Line {
    /// Code with comments removed and string/char literal *contents*
    /// blanked (the quotes remain, so `.expect(` stays visible).
    code: String,
    /// Comment text on this line (`//` and `/* */` contents).
    comment: String,
    /// Raw line as written, for expect-message extraction.
    raw: String,
    /// Inside a `#[cfg(test)]` item.
    in_test: bool,
}

/// A preprocessed source file.
struct SourceFile {
    rel: String,
    lines: Vec<Line>,
}

impl SourceFile {
    fn new(rel: &str, content: &str) -> Self {
        let (codes, comments) = strip(content);
        let in_test = mark_test_regions(&codes);
        let lines = content
            .lines()
            .enumerate()
            .map(|(i, raw)| Line {
                code: codes[i].clone(),
                comment: comments[i].clone(),
                raw: raw.to_string(),
                in_test: in_test[i],
            })
            .collect();
        SourceFile { rel: rel.to_string(), lines }
    }

    /// Whole-file suppression: `// lint: allow-file(rule)`.
    fn allows_file(&self, rule: &str) -> bool {
        let needle = format!("lint: allow-file({rule})");
        self.lines.iter().any(|l| l.comment.contains(&needle))
    }

    /// Per-site suppression: `// lint: allow(rule)` on the line or the
    /// line above.
    fn allows_line(&self, rule: &str, idx: usize) -> bool {
        let needle = format!("lint: allow({rule})");
        if self.lines[idx].comment.contains(&needle) {
            return true;
        }
        idx > 0 && self.lines[idx - 1].comment.contains(&needle)
    }
}

/// Splits source into per-line (code, comment) with string and char
/// literal contents blanked out of the code half. Handles `//` and
/// nested `/* */` comments, escapes, and `r"…"`/`r#"…"#` raw strings.
fn strip(content: &str) -> (Vec<String>, Vec<String>) {
    #[derive(Clone, Copy, PartialEq)]
    enum Mode {
        Code,
        Block(u32),
        Str,
        RawStr(u32),
    }
    let mut mode = Mode::Code;
    let mut codes = Vec::new();
    let mut comments = Vec::new();
    for line in content.lines() {
        let chars: Vec<char> = line.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < chars.len() {
            match mode {
                Mode::Code => {
                    let c = chars[i];
                    let next = chars.get(i + 1).copied();
                    if c == '/' && next == Some('/') {
                        comment.extend(&chars[i + 2..]);
                        break;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::Block(1);
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Str;
                        i += 1;
                    } else if c == 'r'
                        && matches!(next, Some('"') | Some('#'))
                        && !prev_is_ident(&code)
                    {
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            code.push_str("r\"");
                            mode = Mode::RawStr(hashes);
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        if chars.get(i + 1) == Some(&'\\') {
                            // escaped char literal: skip to closing quote
                            match chars[i + 2..].iter().position(|&c| c == '\'') {
                                Some(off) => {
                                    code.push_str("' '");
                                    i += off + 3;
                                }
                                None => i += 1,
                            }
                        } else if chars.get(i + 2) == Some(&'\'') {
                            code.push_str("' '");
                            i += 3;
                        } else {
                            // lifetime — keep as-is
                            code.push(c);
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                Mode::Block(depth) => {
                    let c = chars[i];
                    let next = chars.get(i + 1).copied();
                    if c == '*' && next == Some('/') {
                        mode = if depth == 1 { Mode::Code } else { Mode::Block(depth - 1) };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                Mode::Str => {
                    let c = chars[i];
                    if c == '\\' {
                        i += 2; // skip escape
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if chars[i] == '"'
                        && (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'))
                    {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1 + hashes as usize;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        codes.push(code);
        comments.push(comment.trim().to_string());
    }
    (codes, comments)
}

/// True if the stripped code so far ends in an identifier char —
/// distinguishes the raw-string sigil `r"` from an identifier ending
/// in `r` followed by a string.
fn prev_is_ident(code: &str) -> bool {
    code.chars().last().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Marks lines inside `#[cfg(test)]` items by brace tracking over the
/// stripped code: from the attribute to the matching close brace of
/// the item that follows it.
fn mark_test_regions(codes: &[String]) -> Vec<bool> {
    let mut flags = vec![false; codes.len()];
    let mut i = 0;
    while i < codes.len() {
        if codes[i].contains("#[cfg(test)]") {
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut j = i;
            while j < codes.len() {
                flags[j] = true;
                for c in codes[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    flags
}

/// Runs every rule over the workspace rooted at `root`.
///
/// `root` must contain `Cargo.toml` and `crates/`. Returns findings
/// sorted by file then line; an empty vector means clean.
pub fn check_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    if !root.join("Cargo.toml").exists() {
        return Err(format!("{} does not look like the workspace root", root.display()));
    }
    let files = collect_sources(root)?;
    let mut violations = Vec::new();
    for (rel, content) in &files {
        violations.extend(check_file(rel, content));
    }
    violations.extend(check_wire_tags_in_tree(root, &files));
    violations.extend(check_conservation(&files));
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(violations)
}

/// Collects workspace-relative `.rs` sources the file rules run over:
/// the `src/` trees of the root package and every `crates/*` member.
/// The lint crate itself and `vendor/` are out of scope (vendored code
/// is what the facade hides; the linter's own sources and tests must
/// name every forbidden token).
fn collect_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut stack: Vec<PathBuf> = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            if entry.file_name() == "lint" {
                continue;
            }
            let src = entry.path().join("src");
            if src.is_dir() {
                stack.push(src);
            }
        }
    }
    let mut out = Vec::new();
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| e.to_string())?
                    .to_string_lossy()
                    .replace('\\', "/");
                let content = std::fs::read_to_string(&path).map_err(|e| format!("{rel}: {e}"))?;
                out.push((rel, content));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs all single-file rules over one source file. Public so rule
/// unit tests can feed violating snippets without a filesystem.
pub fn check_file(rel: &str, content: &str) -> Vec<Violation> {
    let file = SourceFile::new(rel, content);
    let mut out = Vec::new();
    rule_sync_facade(&file, &mut out);
    rule_no_panic(&file, &mut out);
    rule_ordering(&file, &mut out);
    rule_wall_clock(&file, &mut out);
    out
}

fn rule_sync_facade(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.rel == FACADE_PATH || file.allows_file(RULE_SYNC_FACADE) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || file.allows_line(RULE_SYNC_FACADE, idx) {
            continue;
        }
        for token in ["std::sync::", "parking_lot::"] {
            if line.code.contains(token) {
                out.push(Violation {
                    rule: RULE_SYNC_FACADE,
                    file: file.rel.clone(),
                    line: idx + 1,
                    message: format!(
                        "`{}` bypasses the sync facade; import from `stopss_types::sync` \
                         so the type participates in loom-lite model checking",
                        token.trim_end_matches(':')
                    ),
                });
                break;
            }
        }
    }
}

fn rule_no_panic(file: &SourceFile, out: &mut Vec<Violation>) {
    if !HOT_PATHS.contains(&file.rel.as_str()) || file.allows_file(RULE_NO_PANIC) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || file.allows_line(RULE_NO_PANIC, idx) {
            continue;
        }
        if line.code.contains(".unwrap()") {
            out.push(Violation {
                rule: RULE_NO_PANIC,
                file: file.rel.clone(),
                line: idx + 1,
                message: "`.unwrap()` in a hot path; return a typed error or use \
                          `.expect(\"invariant: ...\")` naming the invariant"
                    .into(),
            });
        }
        if line.code.contains("panic!(") {
            out.push(Violation {
                rule: RULE_NO_PANIC,
                file: file.rel.clone(),
                line: idx + 1,
                message: "`panic!` in a hot path; hot-path failures must be typed errors".into(),
            });
        }
        if let Some(pos) = line.raw.find(".expect(") {
            // The justification must open on the same line and start
            // with "invariant: ". Check the raw line — string contents
            // are blanked in `code` — but only when `code` also shows
            // the call (so comments/strings don't trigger).
            if line.code.contains(".expect(")
                && !line.raw[pos + ".expect(".len()..].trim_start().starts_with("\"invariant: ")
            {
                out.push(Violation {
                    rule: RULE_NO_PANIC,
                    file: file.rel.clone(),
                    line: idx + 1,
                    message: "`.expect()` in a hot path without an `\"invariant: ...\"` \
                              message naming the invariant that makes it unreachable"
                        .into(),
                });
            }
        }
    }
}

fn rule_ordering(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.allows_file(RULE_ORDERING) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || file.allows_line(RULE_ORDERING, idx) {
            continue;
        }
        let which =
            ["Ordering::Relaxed", "Ordering::SeqCst"].into_iter().find(|t| line.code.contains(t));
        let Some(which) = which else { continue };
        // Look for `ordering:` in a comment on this line or any line
        // of the contiguous paragraph above (stop at a blank line).
        let mut justified = line.comment.contains("ordering:");
        let mut j = idx;
        while !justified && j > 0 {
            j -= 1;
            let above = &file.lines[j];
            if above.raw.trim().is_empty() {
                break;
            }
            justified = above.comment.contains("ordering:");
        }
        if !justified {
            out.push(Violation {
                rule: RULE_ORDERING,
                file: file.rel.clone(),
                line: idx + 1,
                message: format!(
                    "`{which}` without an `// ordering:` justification in the same \
                     paragraph; say why this ordering is sufficient"
                ),
            });
        }
    }
}

fn rule_wall_clock(file: &SourceFile, out: &mut Vec<Violation>) {
    let scoped = DETERMINISTIC_PATHS.iter().any(|p| {
        if p.ends_with('/') {
            file.rel.starts_with(p)
        } else {
            file.rel == *p
        }
    });
    if !scoped || file.allows_file(RULE_WALL_CLOCK) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || file.allows_line(RULE_WALL_CLOCK, idx) {
            continue;
        }
        for token in ["Instant::now", "SystemTime::now"] {
            if line.code.contains(token) {
                out.push(Violation {
                    rule: RULE_WALL_CLOCK,
                    file: file.rel.clone(),
                    line: idx + 1,
                    message: format!(
                        "`{token}` in deterministic code; seeded runs must be \
                         bit-reproducible — use logical ticks"
                    ),
                });
            }
        }
    }
}

/// Extracts the variant names of a `pub const *_TAG_TABLE` block from
/// `wire.rs` source text.
fn parse_code_table(wire_src: &str, table: &str) -> Vec<String> {
    let Some(start) = wire_src.find(&format!("pub const {table}")) else {
        return Vec::new();
    };
    let mut names = Vec::new();
    for line in wire_src[start..].lines().skip(1) {
        let line = line.trim();
        if line.starts_with("];") {
            break;
        }
        // Rows look like: (client_tag::REGISTER, "Register"),
        if let Some(q1) = line.find('"') {
            if let Some(q2) = line[q1 + 1..].find('"') {
                names.push(line[q1 + 1..q1 + 1 + q2].to_string());
            }
        }
    }
    names
}

/// Extracts the variant column of the markdown tag table after
/// `heading` in `docs/WIRE_PROTOCOL.md` text.
fn parse_doc_table(doc: &str, heading: &str) -> Vec<String> {
    let Some((_, section)) = doc.split_once(heading) else { return Vec::new() };
    let mut rows = Vec::new();
    let mut in_table = false;
    for line in section.lines() {
        let line = line.trim();
        if !in_table {
            if line.starts_with("| Tag | Variant |") {
                in_table = true;
            }
            continue;
        }
        if !line.starts_with('|') {
            break;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 || cells[0].starts_with("---") {
            continue;
        }
        rows.push(cells[1].trim_matches('`').to_string());
    }
    rows
}

/// `wire-tags-sync` over in-memory sources. Public for unit tests.
pub fn check_wire_tags(wire_src: &str, doc: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let wire_rel = "crates/broker/src/wire.rs";
    let checks: [(&str, &str, &[&str], bool); 3] = [
        ("CLIENT_TAG_TABLE", "## Client → server messages", CLIENT_TAG_BASELINE, false),
        ("SERVER_TAG_TABLE", "## Server → client messages", SERVER_TAG_BASELINE, false),
        ("VALUE_TAG_TABLE", "", VALUE_TAG_BASELINE, true),
    ];
    for (table, heading, baseline, closed) in checks {
        let code = parse_code_table(wire_src, table);
        if code.is_empty() {
            out.push(Violation {
                rule: RULE_WIRE_TAGS,
                file: wire_rel.into(),
                line: 0,
                message: format!("could not parse `{table}` out of wire.rs"),
            });
            continue;
        }
        // Append-only against the frozen baseline.
        for (i, want) in baseline.iter().enumerate() {
            match code.get(i) {
                Some(got) if got == want => {}
                Some(got) => out.push(Violation {
                    rule: RULE_WIRE_TAGS,
                    file: wire_rel.into(),
                    line: 0,
                    message: format!(
                        "`{table}` tag {i} is `{got}` but the frozen baseline says \
                         `{want}` — tags are append-only, never renumbered"
                    ),
                }),
                None => out.push(Violation {
                    rule: RULE_WIRE_TAGS,
                    file: wire_rel.into(),
                    line: 0,
                    message: format!(
                        "`{table}` lost baseline entry {i} (`{want}`) — tags are \
                         append-only, never removed"
                    ),
                }),
            }
        }
        if closed && code.len() > baseline.len() {
            out.push(Violation {
                rule: RULE_WIRE_TAGS,
                file: wire_rel.into(),
                line: 0,
                message: format!(
                    "`{table}` grew past the closed set {baseline:?}; adding a value \
                     kind needs a protocol revision, not a tag"
                ),
            });
        }
        // Doc sync (markdown tables only; the value block has its own
        // format and is covered by tests/wire_doc_drift.rs).
        if heading.is_empty() {
            continue;
        }
        let doc_rows = parse_doc_table(doc, heading);
        if doc_rows != code {
            out.push(Violation {
                rule: RULE_WIRE_TAGS,
                file: "docs/WIRE_PROTOCOL.md".into(),
                line: 0,
                message: format!(
                    "tag table under `{heading}` lists {doc_rows:?} but wire.rs \
                     `{table}` has {code:?} — update the doc in the same change"
                ),
            });
        }
    }
    out
}

fn check_wire_tags_in_tree(root: &Path, files: &[(String, String)]) -> Vec<Violation> {
    let wire = files.iter().find(|(rel, _)| rel == "crates/broker/src/wire.rs");
    let doc = std::fs::read_to_string(root.join("docs/WIRE_PROTOCOL.md"));
    match (wire, doc) {
        (Some((_, wire_src)), Ok(doc)) => check_wire_tags(wire_src, &doc),
        (None, _) => vec![Violation {
            rule: RULE_WIRE_TAGS,
            file: "crates/broker/src/wire.rs".into(),
            line: 0,
            message: "wire.rs missing from workspace".into(),
        }],
        (_, Err(e)) => vec![Violation {
            rule: RULE_WIRE_TAGS,
            file: "docs/WIRE_PROTOCOL.md".into(),
            line: 0,
            message: format!("cannot read docs/WIRE_PROTOCOL.md: {e}"),
        }],
    }
}

/// `conservation-counters`: finds `// conservation: <identity>`
/// anchors, takes every identifier in the identity as a counter name,
/// and requires `name +=` or `name.fetch_add(` somewhere in the
/// workspace. Public for unit tests.
pub fn check_conservation(files: &[(String, String)]) -> Vec<Violation> {
    let stripped: Vec<(String, Vec<String>, Vec<String>)> = files
        .iter()
        .map(|(rel, content)| {
            let (codes, comments) = strip(content);
            (rel.clone(), codes, comments)
        })
        .collect();
    let mut counters: Vec<(String, String, usize)> = Vec::new();
    for (rel, _, comments) in &stripped {
        for (idx, comment) in comments.iter().enumerate() {
            let Some(pos) = comment.find("conservation:") else { continue };
            let identity = &comment[pos + "conservation:".len()..];
            for name in identifiers(identity) {
                counters.push((name, rel.clone(), idx + 1));
            }
        }
    }
    let mut out = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for (name, rel, line) in counters {
        if !seen.insert(name.clone()) {
            continue;
        }
        let add = format!("{name} +=");
        let fetch = format!("{name}.fetch_add(");
        let incremented = stripped
            .iter()
            .any(|(_, codes, _)| codes.iter().any(|c| c.contains(&add) || c.contains(&fetch)));
        if !incremented {
            out.push(Violation {
                rule: RULE_CONSERVATION,
                file: rel,
                line,
                message: format!(
                    "counter `{name}` appears in a conservation identity but has no \
                     `{name} +=` / `{name}.fetch_add(` increment site in the workspace"
                ),
            });
        }
    }
    out
}

/// Identifiers in an identity expression, skipping operators and
/// numbers.
fn identifiers(identity: &str) -> Vec<String> {
    identity
        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|t| !t.is_empty() && !t.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn only_rule<'a>(violations: &'a [Violation], rule: &str) -> Vec<&'a Violation> {
        violations.iter().filter(|v| v.rule == rule).collect()
    }

    // --- sync-facade -----------------------------------------------------

    #[test]
    fn sync_facade_flags_std_sync_import() {
        let src = "use std::sync::Mutex;\nfn f() {}\n";
        let v = check_file("crates/broker/src/dispatcher.rs", src);
        let hits = only_rule(&v, RULE_SYNC_FACADE);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 1);
        assert!(hits[0].message.contains("stopss_types::sync"));
    }

    #[test]
    fn sync_facade_flags_parking_lot() {
        let src = "use parking_lot::RwLock;\n";
        let v = check_file("crates/core/src/matcher.rs", src);
        assert_eq!(only_rule(&v, RULE_SYNC_FACADE).len(), 1);
    }

    #[test]
    fn sync_facade_ignores_tests_comments_strings_and_facade() {
        let in_test = "#[cfg(test)]\nmod tests {\n    use std::sync::Arc;\n}\n";
        assert!(only_rule(&check_file("crates/broker/src/server.rs", in_test), RULE_SYNC_FACADE)
            .is_empty());
        let in_comment = "// std::sync::Mutex is banned here\nfn f() {}\n";
        assert!(only_rule(
            &check_file("crates/broker/src/server.rs", in_comment),
            RULE_SYNC_FACADE
        )
        .is_empty());
        let in_string = "fn f() -> &'static str { \"std::sync::Mutex\" }\n";
        assert!(only_rule(&check_file("crates/broker/src/server.rs", in_string), RULE_SYNC_FACADE)
            .is_empty());
        let facade = "pub use std::sync::{atomic, Arc};\n";
        assert!(only_rule(&check_file(FACADE_PATH, facade), RULE_SYNC_FACADE).is_empty());
    }

    #[test]
    fn sync_facade_suppression_works() {
        let line_above = "// lint: allow(sync-facade)\nuse std::sync::Weak;\n";
        assert!(only_rule(
            &check_file("crates/broker/src/notify.rs", line_above),
            RULE_SYNC_FACADE
        )
        .is_empty());
        let file_wide =
            "// lint: allow-file(sync-facade)\nuse std::sync::Weak;\nuse std::sync::Arc;\n";
        assert!(only_rule(&check_file("crates/broker/src/notify.rs", file_wide), RULE_SYNC_FACADE)
            .is_empty());
    }

    // --- no-panic-hot-path ----------------------------------------------

    #[test]
    fn no_panic_flags_unwrap_in_hot_path() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = check_file("crates/broker/src/eventloop.rs", src);
        let hits = only_rule(&v, RULE_NO_PANIC);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("unwrap"));
    }

    #[test]
    fn no_panic_flags_bare_and_unjustified_expect() {
        let bare = "fn f(x: Option<u8>) -> u8 { x.expect(\"oops\") }\n";
        assert_eq!(
            only_rule(&check_file("crates/broker/src/session.rs", bare), RULE_NO_PANIC).len(),
            1
        );
        let justified = "fn f(x: Option<u8>) -> u8 { x.expect(\"invariant: caller checked\") }\n";
        assert!(only_rule(&check_file("crates/broker/src/session.rs", justified), RULE_NO_PANIC)
            .is_empty());
    }

    #[test]
    fn no_panic_flags_panic_macro_but_not_outside_hot_paths() {
        let src = "fn f() { panic!(\"boom\") }\n";
        assert_eq!(
            only_rule(&check_file("crates/core/src/matcher.rs", src), RULE_NO_PANIC).len(),
            1
        );
        // chaos.rs is harness code, not a hot path.
        assert!(only_rule(&check_file("crates/broker/src/chaos.rs", src), RULE_NO_PANIC).is_empty());
        // unwrap() in tests inside a hot-path file is fine.
        let in_test = "#[cfg(test)]\nmod tests {\n    fn g(x: Option<u8>) { x.unwrap(); }\n}\n";
        assert!(
            only_rule(&check_file("crates/broker/src/wire.rs", in_test), RULE_NO_PANIC).is_empty()
        );
    }

    // --- ordering-justified ----------------------------------------------

    #[test]
    fn ordering_flags_unjustified_relaxed() {
        let src = "fn f(c: &A) { c.fetch_add(1, Ordering::Relaxed); }\n";
        let v = check_file("crates/broker/src/dispatcher.rs", src);
        let hits = only_rule(&v, RULE_ORDERING);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("Ordering::Relaxed"));
    }

    #[test]
    fn ordering_accepts_paragraph_justification() {
        let same_line =
            "fn f(c: &A) { c.fetch_add(1, Ordering::Relaxed); // ordering: monotone\n}\n";
        assert!(only_rule(
            &check_file("crates/broker/src/dispatcher.rs", same_line),
            RULE_ORDERING
        )
        .is_empty());
        let above = "fn f(c: &A) {\n    // ordering: monotone counter, adds commute\n    // and no other state is paired with it\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(only_rule(&check_file("crates/broker/src/dispatcher.rs", above), RULE_ORDERING)
            .is_empty());
        // A blank line cuts the paragraph: justification no longer reaches.
        let cut = "fn f(c: &A) {\n    // ordering: monotone\n\n    c.fetch_add(1, Ordering::SeqCst);\n}\n";
        assert_eq!(
            only_rule(&check_file("crates/broker/src/dispatcher.rs", cut), RULE_ORDERING).len(),
            1
        );
    }

    // --- no-wall-clock ---------------------------------------------------

    #[test]
    fn wall_clock_flags_instant_now_in_deterministic_code() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let v = check_file("crates/broker/src/chaos.rs", src);
        assert_eq!(only_rule(&v, RULE_WALL_CLOCK).len(), 1);
        let wl = check_file("crates/workload/src/scenario.rs", src);
        assert_eq!(only_rule(&wl, RULE_WALL_CLOCK).len(), 1);
        // Bench is wall-clock by design — out of scope.
        assert!(only_rule(&check_file("crates/bench/src/lib.rs", src), RULE_WALL_CLOCK).is_empty());
    }

    // --- wire-tags-sync --------------------------------------------------

    const WIRE_OK: &str = r#"
pub const CLIENT_TAG_TABLE: &[(u8, &str)] = &[
    (client_tag::REGISTER, "Register"),
    (client_tag::SUBSCRIBE, "Subscribe"),
    (client_tag::UNSUBSCRIBE, "Unsubscribe"),
    (client_tag::PUBLISH, "Publish"),
    (client_tag::SET_MODE, "SetMode"),
    (client_tag::HELLO, "Hello"),
    (client_tag::ACK, "Ack"),
    (client_tag::PING, "Ping"),
    (client_tag::SET_ONTOLOGY, "SetOntology"),
];
pub const SERVER_TAG_TABLE: &[(u8, &str)] = &[
    (server_tag::REGISTERED, "Registered"),
    (server_tag::SUBSCRIBED, "Subscribed"),
    (server_tag::UNSUBSCRIBED, "Unsubscribed"),
    (server_tag::PUBLISHED, "Published"),
    (server_tag::MODE_SET, "ModeSet"),
    (server_tag::ERROR, "Error"),
    (server_tag::NOTIFICATION, "Notification"),
    (server_tag::WELCOME, "Welcome"),
    (server_tag::PONG, "Pong"),
    (server_tag::ONTOLOGY_UPDATED, "OntologyUpdated"),
];
pub const VALUE_TAG_TABLE: &[(u8, &str)] = &[
    (value_tag::INT, "Int"),
    (value_tag::FLOAT, "Float"),
    (value_tag::TERM, "Term"),
    (value_tag::BOOL, "Bool"),
];
"#;

    fn doc_for(client: &[&str], server: &[&str]) -> String {
        let mut doc = String::from(
            "## Client → server messages\n\n| Tag | Variant | Body |\n|---|---|---|\n",
        );
        for (i, v) in client.iter().enumerate() {
            doc.push_str(&format!("| {i} | `{v}` | x |\n"));
        }
        doc.push_str("\n## Server → client messages\n\n| Tag | Variant | Body |\n|---|---|---|\n");
        for (i, v) in server.iter().enumerate() {
            doc.push_str(&format!("| {i} | `{v}` | x |\n"));
        }
        doc
    }

    #[test]
    fn wire_tags_clean_when_in_sync() {
        let doc = doc_for(CLIENT_TAG_BASELINE, SERVER_TAG_BASELINE);
        assert!(check_wire_tags(WIRE_OK, &doc).is_empty());
    }

    #[test]
    fn wire_tags_catches_renumbered_baseline() {
        // Swap Register/Subscribe in the code table: a renumbering.
        let bad = WIRE_OK
            .replace("\"Register\"", "\"TMP\"")
            .replace("\"Subscribe\"", "\"Register\"")
            .replace("\"TMP\"", "\"Subscribe\"");
        let doc = doc_for(CLIENT_TAG_BASELINE, SERVER_TAG_BASELINE);
        let v = check_wire_tags(&bad, &doc);
        assert!(
            v.iter().any(|v| v.message.contains("append-only")),
            "expected an append-only violation, got {v:?}"
        );
    }

    #[test]
    fn wire_tags_catches_doc_drift() {
        // Code gains a tag the doc doesn't know.
        let grown = WIRE_OK.replace(
            "    (client_tag::SET_ONTOLOGY, \"SetOntology\"),\n];",
            "    (client_tag::SET_ONTOLOGY, \"SetOntology\"),\n    (client_tag::BYE, \"Bye\"),\n];",
        );
        let doc = doc_for(CLIENT_TAG_BASELINE, SERVER_TAG_BASELINE);
        let v = check_wire_tags(&grown, &doc);
        assert!(
            v.iter().any(|v| v.file == "docs/WIRE_PROTOCOL.md"),
            "expected a doc-drift violation, got {v:?}"
        );
    }

    #[test]
    fn wire_tags_value_set_is_closed() {
        let grown = WIRE_OK.replace(
            "    (value_tag::BOOL, \"Bool\"),\n];",
            "    (value_tag::BOOL, \"Bool\"),\n    (value_tag::BLOB, \"Blob\"),\n];",
        );
        let doc = doc_for(CLIENT_TAG_BASELINE, SERVER_TAG_BASELINE);
        let v = check_wire_tags(&grown, &doc);
        assert!(
            v.iter().any(|v| v.message.contains("closed set")),
            "expected a closed-set violation, got {v:?}"
        );
    }

    // --- conservation-counters -------------------------------------------

    #[test]
    fn conservation_clean_when_counters_increment() {
        let files = vec![
            (
                "crates/broker/src/eventloop.rs".to_string(),
                "// conservation: seen == lost + kept\nfn f(s: &mut S) { s.seen += 1; s.kept += 1; }\n"
                    .to_string(),
            ),
            (
                "crates/broker/src/notify.rs".to_string(),
                "fn g(c: &A) { c.lost.fetch_add(1, O::Relaxed); }\n".to_string(),
            ),
        ];
        assert!(check_conservation(&files).is_empty());
    }

    #[test]
    fn conservation_flags_counter_with_no_increment_site() {
        let files = vec![(
            "crates/broker/src/eventloop.rs".to_string(),
            "// conservation: seen == lost + kept\nfn f(s: &mut S) { s.seen += 1; s.kept += 1; }\n"
                .to_string(),
        )];
        let v = check_conservation(&files);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_CONSERVATION);
        assert!(v[0].message.contains("`lost`"));
    }

    // --- engine plumbing -------------------------------------------------

    #[test]
    fn rules_catalogue_matches_rule_constants() {
        let names: Vec<&str> = rules().iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec![
                RULE_SYNC_FACADE,
                RULE_NO_PANIC,
                RULE_ORDERING,
                RULE_WALL_CLOCK,
                RULE_WIRE_TAGS,
                RULE_CONSERVATION
            ]
        );
    }

    #[test]
    fn strip_handles_block_comments_and_raw_strings() {
        let src = "let a = 1; /* std::sync::Mutex */ let b = r\"std::sync\"; // tail\n";
        let (codes, comments) = strip(src);
        assert!(!codes[0].contains("std::sync"));
        assert!(comments[0].contains("std::sync::Mutex"));
        assert!(comments[0].contains("tail"));
    }

    #[test]
    fn workspace_self_check_is_clean() {
        // The real tree must stay lint-clean; this is the same check CI
        // runs via `cargo run -p stopss-lint -- --check`.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let violations = check_workspace(&root).expect("workspace should be scannable");
        assert!(violations.is_empty(), "workspace has lint violations:\n{violations:#?}");
    }
}
