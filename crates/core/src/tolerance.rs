//! Stage selection and the information-loss knob.
//!
//! "Some users may be satisfied with fewer results for their semantic
//! subscriptions, if the matching would be faster. The idea is to allow
//! the user to inform the system about how much information loss the user
//! is willing to tolerate" (§3.2). Two dials exist: which semantic stages
//! apply, and how far up the concept hierarchy a match may reach.

use std::fmt;

/// A set of enabled semantic stages.
///
/// The paper's three stages compose freely: "Each of the approaches can be
/// used independently … It is also possible to use all three approaches
/// together" (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageMask(u8);

impl StageMask {
    /// The synonym-translation stage.
    pub const SYNONYM: StageMask = StageMask(0b001);
    /// The concept-hierarchy stage.
    pub const HIERARCHY: StageMask = StageMask(0b010);
    /// The mapping-function stage.
    pub const MAPPING: StageMask = StageMask(0b100);

    /// No semantic processing: plain syntactic matching.
    pub const fn syntactic() -> StageMask {
        StageMask(0)
    }

    /// All three stages.
    pub const fn all() -> StageMask {
        StageMask(0b111)
    }

    /// True if this mask enables `stage`.
    #[inline]
    pub fn contains(self, stage: StageMask) -> bool {
        self.0 & stage.0 == stage.0
    }

    /// Union of two masks.
    #[must_use]
    pub fn with(self, stage: StageMask) -> StageMask {
        StageMask(self.0 | stage.0)
    }

    /// This mask minus `stage`.
    #[must_use]
    pub fn without(self, stage: StageMask) -> StageMask {
        StageMask(self.0 & !stage.0)
    }

    /// Intersection of two masks.
    #[must_use]
    pub fn intersect(self, other: StageMask) -> StageMask {
        StageMask(self.0 & other.0)
    }

    /// True if no stage is enabled.
    pub fn is_syntactic(self) -> bool {
        self.0 == 0
    }

    /// Shorthand accessors.
    pub fn synonym(self) -> bool {
        self.contains(Self::SYNONYM)
    }
    /// True if the hierarchy stage is enabled.
    pub fn hierarchy(self) -> bool {
        self.contains(Self::HIERARCHY)
    }
    /// True if the mapping stage is enabled.
    pub fn mapping(self) -> bool {
        self.contains(Self::MAPPING)
    }

    /// All eight stage combinations, for ablation sweeps (E1).
    pub fn all_combinations() -> [StageMask; 8] {
        [
            StageMask(0b000),
            StageMask(0b001),
            StageMask(0b010),
            StageMask(0b011),
            StageMask(0b100),
            StageMask(0b101),
            StageMask(0b110),
            StageMask(0b111),
        ]
    }
}

macro_rules! stage_mask_fmt {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            if self.is_syntactic() {
                return f.write_str("syntactic");
            }
            let mut first = true;
            for (bit, name) in [
                (StageMask::SYNONYM, "synonym"),
                (StageMask::HIERARCHY, "hierarchy"),
                (StageMask::MAPPING, "mapping"),
            ] {
                if self.contains(bit) {
                    if !first {
                        f.write_str("+")?;
                    }
                    first = false;
                    f.write_str(name)?;
                }
            }
            Ok(())
        }
    };
}

impl fmt::Debug for StageMask {
    stage_mask_fmt!();
}

impl fmt::Display for StageMask {
    stage_mask_fmt!();
}

/// A subscriber's information-loss tolerance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Tolerance {
    /// Stages this subscriber accepts matches from.
    pub stages: StageMask,
    /// Maximum generalization distance per hierarchy step (`None` =
    /// unbounded). `Some(0)` disables generalization entirely, equivalent
    /// to removing the hierarchy stage. The bound applies component-wise:
    /// both the attribute's and the value's generalization distance must
    /// stay within it.
    pub max_distance: Option<u32>,
}

impl Tolerance {
    /// Full semantics: all stages, unbounded generalization.
    pub const fn full() -> Tolerance {
        Tolerance { stages: StageMask::all(), max_distance: None }
    }

    /// Purely syntactic matching.
    pub const fn syntactic() -> Tolerance {
        Tolerance { stages: StageMask::syntactic(), max_distance: None }
    }

    /// All stages but generalization limited to `k` levels.
    pub const fn bounded(k: u32) -> Tolerance {
        Tolerance { stages: StageMask::all(), max_distance: Some(k) }
    }

    /// Restricts to the given stages, unbounded distance.
    pub const fn stages(stages: StageMask) -> Tolerance {
        Tolerance { stages, max_distance: None }
    }

    /// True if `distance` is within this tolerance.
    #[inline]
    pub fn admits_distance(&self, distance: u32) -> bool {
        match self.max_distance {
            Some(k) => distance <= k,
            None => true,
        }
    }

    /// The tolerance at least as strict as both inputs (used to clamp a
    /// subscriber's request to the system-wide configuration).
    #[must_use]
    pub fn clamp_to(&self, system: &Tolerance) -> Tolerance {
        Tolerance {
            stages: self.stages.intersect(system.stages),
            max_distance: match (self.max_distance, system.max_distance) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) => Some(a),
                (None, b) => b,
            },
        }
    }

    /// The canonical representative of this tolerance's *closure
    /// behaviour*: two tolerances with equal verification classes close
    /// every event into bit-identical [`crate::ClosedEvent`]s, so the
    /// per-publication tolerance-class cache ([`crate::TierCache`]) keys
    /// on it instead of the raw tolerance.
    ///
    /// Two redundancies collapse: a distance bound of 0 disables the
    /// hierarchy stage outright, and without the hierarchy stage the
    /// distance bound is inert.
    #[must_use]
    pub fn verify_class(&self) -> Tolerance {
        let mut class = *self;
        if class.max_distance == Some(0) {
            class.stages = class.stages.without(StageMask::HIERARCHY);
        }
        if !class.stages.hierarchy() {
            class.max_distance = None;
        }
        class
    }
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_algebra() {
        let m = StageMask::syntactic().with(StageMask::SYNONYM).with(StageMask::MAPPING);
        assert!(m.synonym());
        assert!(!m.hierarchy());
        assert!(m.mapping());
        assert!(!m.without(StageMask::MAPPING).mapping());
        assert_eq!(m.intersect(StageMask::SYNONYM), StageMask::SYNONYM);
        assert!(StageMask::all().contains(StageMask::HIERARCHY));
        assert!(StageMask::syntactic().is_syntactic());
    }

    #[test]
    fn all_combinations_are_distinct_and_complete() {
        let combos = StageMask::all_combinations();
        assert_eq!(combos.len(), 8);
        for (i, a) in combos.iter().enumerate() {
            for b in &combos[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(combos[0], StageMask::syntactic());
        assert_eq!(combos[7], StageMask::all());
    }

    #[test]
    fn display_names_stages() {
        assert_eq!(StageMask::syntactic().to_string(), "syntactic");
        assert_eq!(StageMask::all().to_string(), "synonym+hierarchy+mapping");
        assert_eq!(StageMask::SYNONYM.with(StageMask::MAPPING).to_string(), "synonym+mapping");
    }

    #[test]
    fn tolerance_distance_bounds() {
        assert!(Tolerance::full().admits_distance(1_000_000));
        let t = Tolerance::bounded(2);
        assert!(t.admits_distance(0));
        assert!(t.admits_distance(2));
        assert!(!t.admits_distance(3));
    }

    #[test]
    fn verify_class_collapses_redundant_tolerances() {
        // Distance 0 is the same as no hierarchy stage at all.
        let zero = Tolerance { stages: StageMask::all(), max_distance: Some(0) };
        let no_hier = Tolerance {
            stages: StageMask::all().without(StageMask::HIERARCHY),
            max_distance: None,
        };
        assert_eq!(zero.verify_class(), no_hier);
        // Without the hierarchy stage the distance bound is inert.
        let bounded_syn = Tolerance { stages: StageMask::SYNONYM, max_distance: Some(5) };
        assert_eq!(bounded_syn.verify_class().max_distance, None);
        assert_eq!(bounded_syn.verify_class().stages, StageMask::SYNONYM);
        // Meaningful bounds survive.
        assert_eq!(Tolerance::bounded(2).verify_class(), Tolerance::bounded(2));
        assert_eq!(Tolerance::full().verify_class(), Tolerance::full());
        // Idempotent.
        for t in [zero, bounded_syn, Tolerance::bounded(3), Tolerance::syntactic()] {
            assert_eq!(t.verify_class().verify_class(), t.verify_class());
        }
    }

    #[test]
    fn clamping_takes_the_stricter_side() {
        let system = Tolerance { stages: StageMask::all(), max_distance: Some(3) };
        let wide = Tolerance::full().clamp_to(&system);
        assert_eq!(wide.max_distance, Some(3));
        let narrow =
            Tolerance { stages: StageMask::SYNONYM, max_distance: Some(5) }.clamp_to(&system);
        assert_eq!(narrow.stages, StageMask::SYNONYM);
        assert_eq!(narrow.max_distance, Some(3));
        let tight = Tolerance { stages: StageMask::all(), max_distance: Some(1) }.clamp_to(&system);
        assert_eq!(tight.max_distance, Some(1));
    }
}
