//! Strategy-specific machinery: event materialization (Figure 1 verbatim)
//! and subscription rewriting.

use std::collections::VecDeque;

use stopss_matching::MatchingEngine;
use stopss_ontology::SemanticSource;
use stopss_types::{
    Event, FxHashSet, Interner, Operator, Predicate, SubId, Subscription, Symbol, Value,
};

use crate::closure::synonym_resolve_event;
use crate::config::Limits;
use crate::tolerance::StageMask;

/// Outcome counters of a materializing publication.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaterializeOutcome {
    /// Derived events fed to the engine (including the root event).
    pub derived_events: usize,
    /// True if `max_derived_events` stopped the exploration.
    pub truncated: bool,
}

/// Pairs beyond this index in one event are not considered for hierarchy
/// generalization (the derived-pair bitmask is a `u64`). Real events are
/// far smaller; the cap only guards pathological generated workloads.
const MAX_TRACKED_PAIRS: usize = 64;

/// The derivation lattice of the materializing strategy: every event the
/// engine will see, in breadth-first derivation order (root first).
#[derive(Clone, Debug)]
pub struct MaterializedEvents {
    /// The derived events, deduplicated by fingerprint.
    pub events: Vec<Event>,
    /// True if `max_derived_events` stopped the exploration.
    pub truncated: bool,
}

/// The *event-side* half of the paper-faithful strategy: breadth-first
/// materialization of derived events. Each hierarchy derivation appends
/// one generalized pair ("new event from concept hierarchy"); each
/// mapping derivation appends the produced pairs ("new event from mapping
/// function"). The exploration depends only on the event, the ontology,
/// and the bounds — never on the engine — which is what lets the shared
/// front-end compute it once and hand the resulting lattice to every
/// shard ([`crate::frontend::prepare_event`]).
///
/// Because derivations append (never replace), the set of derived events
/// forms a lattice whose maximum is exactly the flattened closure of
/// `closure.rs` — at fixpoint this strategy and
/// [`GeneralizedEvent`](crate::Strategy::GeneralizedEvent) produce the
/// same match set, while
/// the event *count* explored here grows combinatorially. That cost gap,
/// bounded by `max_derived_events`, is experiment E8.
#[allow(clippy::too_many_arguments)] // strategy entry point, mirrors semantic_closure
pub fn materialize_closure(
    event_raw: &Event,
    source: &dyn SemanticSource,
    stages: StageMask,
    max_distance: Option<u32>,
    now_year: i64,
    interner: &Interner,
    limits: &Limits,
) -> MaterializedEvents {
    let admits = |d: u32| max_distance.is_none_or(|k| d <= k);
    let root = if stages.synonym() {
        synonym_resolve_event(event_raw, source).into_owned()
    } else {
        event_raw.clone()
    };

    let mut outcome = MaterializeOutcome { derived_events: 1, truncated: false };
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    seen.insert(root.fingerprint());
    // The u64 marks hierarchy-derived pairs: their ancestors are already
    // covered transitively, so they are not generalized again. The lattice
    // vec doubles as the BFS queue (derivations only append), so every
    // derived event is built exactly once.
    let mut queue: VecDeque<(usize, u64)> = VecDeque::new();
    queue.push_back((0, 0));
    let mut events: Vec<Event> = vec![root];

    while let Some((event_idx, derived_mask)) = queue.pop_front() {
        // Move the current event out so the derivation closures can push
        // new events without aliasing it; restored below.
        let event = std::mem::replace(&mut events[event_idx], Event::new());
        let mut push = |base: &Event,
                        extra: &[(Symbol, Value)],
                        mark_derived: bool,
                        outcome: &mut MaterializeOutcome,
                        queue: &mut VecDeque<(usize, u64)>,
                        events: &mut Vec<Event>| {
            let mut derived = base.clone();
            let mut mask = derived_mask;
            let mut grew = false;
            for &(a, v) in extra {
                if derived.push_unique(a, v) {
                    grew = true;
                    let idx = derived.len() - 1;
                    if mark_derived && idx < MAX_TRACKED_PAIRS {
                        mask |= 1 << idx;
                    }
                }
            }
            if !grew {
                return;
            }
            if outcome.derived_events >= limits.max_derived_events {
                outcome.truncated = true;
                return;
            }
            if seen.insert(derived.fingerprint()) {
                outcome.derived_events += 1;
                queue.push_back((events.len(), mask));
                events.push(derived);
            }
        };

        if stages.hierarchy() && max_distance != Some(0) {
            let pair_count = event.len().min(MAX_TRACKED_PAIRS);
            for idx in 0..pair_count {
                if derived_mask & (1 << idx) != 0 {
                    continue; // already a generalization; ancestors are transitive
                }
                let (attr, value) = event.pairs()[idx];
                let mut attr_alts: Vec<(Symbol, u32)> = vec![(attr, 0)];
                source.for_each_ancestor(attr, &mut |anc, d| {
                    if admits(d) {
                        attr_alts.push((anc, d));
                    }
                });
                let mut value_alts: Vec<(Value, u32)> = vec![(value, 0)];
                if let Value::Sym(v) = value {
                    source.for_each_ancestor(v, &mut |anc, d| {
                        if admits(d) {
                            value_alts.push((Value::Sym(anc), d));
                        }
                    });
                }
                for &(a, da) in &attr_alts {
                    for &(v, dv) in &value_alts {
                        if da == 0 && dv == 0 {
                            continue;
                        }
                        push(&event, &[(a, v)], true, &mut outcome, &mut queue, &mut events);
                    }
                }
            }
        }

        if stages.mapping() {
            let mut produced: Vec<Vec<(Symbol, Value)>> = Vec::new();
            source.apply_mappings(&event, interner, now_year, &mut |_, pairs| {
                produced.push(pairs);
            });
            for pairs in produced {
                let resolved: Vec<(Symbol, Value)> = pairs
                    .into_iter()
                    .map(|(attr, value)| {
                        if stages.synonym() {
                            let attr = source.resolve_synonym(attr);
                            let value = match value {
                                Value::Sym(sym) => Value::Sym(source.resolve_synonym(sym)),
                                other => other,
                            };
                            (attr, value)
                        } else {
                            (attr, value)
                        }
                    })
                    .collect();
                push(&event, &resolved, false, &mut outcome, &mut queue, &mut events);
            }
        }

        events[event_idx] = event;
    }
    MaterializedEvents { events, truncated: outcome.truncated }
}

/// The full paper-faithful strategy: materialize the derivation lattice
/// ([`materialize_closure`]) and feed every derived event to the
/// unmodified engine; `candidates` accumulates the union of the match
/// sets. Kept as the one-call entry point for single-matcher callers —
/// the sharded path splits the two halves so the lattice is derived once
/// and only the engine feeding is replicated per shard.
#[allow(clippy::too_many_arguments)] // strategy entry point, mirrors semantic_closure
pub fn materialize_match(
    event_raw: &Event,
    source: &dyn SemanticSource,
    stages: StageMask,
    max_distance: Option<u32>,
    now_year: i64,
    interner: &Interner,
    limits: &Limits,
    engine: &mut dyn MatchingEngine,
    candidates: &mut FxHashSet<SubId>,
) -> MaterializeOutcome {
    let materialized =
        materialize_closure(event_raw, source, stages, max_distance, now_year, interner, limits);
    let mut scratch: Vec<SubId> = Vec::new();
    for event in &materialized.events {
        scratch.clear();
        engine.match_event(event, interner, &mut scratch);
        candidates.extend(scratch.iter().copied());
    }
    MaterializeOutcome {
        derived_events: materialized.events.len(),
        truncated: materialized.truncated,
    }
}

/// Result of expanding one user subscription for the rewrite strategy.
#[derive(Clone, Debug)]
pub struct RewriteExpansion {
    /// Predicate lists, one per engine subscription.
    pub combos: Vec<Vec<Predicate>>,
    /// True if `max_rewrites` clipped the cross-product (recall loss,
    /// surfaced in the matcher's statistics).
    pub truncated: bool,
}

/// Expands a (synonym-resolved) subscription over taxonomy descendants:
/// each predicate's attribute — and, for `Eq` on categorical values, the
/// value — is replaced by every descendant within `max_distance`. The
/// cross-product over predicates yields the engine subscriptions: an event
/// carrying any combination of specializations then matches syntactically,
/// with no hierarchy work at publish time.
pub fn expand_subscription(
    sub: &Subscription,
    source: &dyn SemanticSource,
    use_hierarchy: bool,
    max_distance: Option<u32>,
    max_rewrites: usize,
) -> RewriteExpansion {
    let admits = |d: u32| max_distance.is_none_or(|k| d <= k);
    // Alternatives per predicate.
    let mut alternative_sets: Vec<Vec<Predicate>> = Vec::with_capacity(sub.len());
    for pred in sub.predicates() {
        let mut alts: Vec<Predicate> = vec![*pred];
        if use_hierarchy {
            let mut attr_alts: Vec<Symbol> = vec![pred.attr];
            for (desc, d) in source.descendants(pred.attr) {
                if admits(d) && !attr_alts.contains(&desc) {
                    attr_alts.push(desc);
                }
            }
            let mut value_alts: Vec<Value> = vec![pred.value];
            if pred.op == Operator::Eq {
                if let Value::Sym(v) = pred.value {
                    for (desc, d) in source.descendants(v) {
                        let candidate = Value::Sym(desc);
                        if admits(d) && !value_alts.contains(&candidate) {
                            value_alts.push(candidate);
                        }
                    }
                }
            }
            alts.clear();
            for &attr in &attr_alts {
                for &value in &value_alts {
                    alts.push(Predicate::new(attr, pred.op, value));
                }
            }
        }
        alternative_sets.push(alts);
    }

    // Cross-product with a cap.
    let mut combos: Vec<Vec<Predicate>> = vec![Vec::with_capacity(sub.len())];
    let mut truncated = false;
    for alts in &alternative_sets {
        let mut next = Vec::with_capacity(combos.len() * alts.len());
        'outer: for combo in &combos {
            for alt in alts {
                if next.len() >= max_rewrites {
                    truncated = true;
                    break 'outer;
                }
                let mut extended = combo.clone();
                extended.push(*alt);
                next.push(extended);
            }
        }
        combos = next;
    }
    RewriteExpansion { combos, truncated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stopss_matching::NaiveEngine;
    use stopss_ontology::{Expr, MappingFunction, Ontology, PatternItem, Production};
    use stopss_types::{EventBuilder, Interner, SubscriptionBuilder};

    fn degrees(i: &mut Interner) -> Ontology {
        let mut o = Ontology::new("t");
        let degree = i.intern("degree");
        let grad = i.intern("graduate_degree");
        let phd = i.intern("phd");
        o.taxonomy.add_isa(grad, degree, i).unwrap();
        o.taxonomy.add_isa(phd, grad, i).unwrap();
        o
    }

    #[test]
    fn materialization_finds_generalized_matches() {
        let mut i = Interner::new();
        let o = degrees(&mut i);
        let mut engine = NaiveEngine::new();
        engine.insert(
            SubscriptionBuilder::new(&mut i).term_eq("credential", "degree").build(SubId(1)),
        );
        engine
            .insert(SubscriptionBuilder::new(&mut i).term_eq("credential", "phd").build(SubId(2)));
        let e = EventBuilder::new(&mut i).term("credential", "phd").build();
        let mut candidates = FxHashSet::default();
        let outcome = materialize_match(
            &e,
            &o,
            StageMask::all(),
            None,
            2003,
            &i,
            &Limits::default(),
            &mut engine,
            &mut candidates,
        );
        let mut got: Vec<SubId> = candidates.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![SubId(1), SubId(2)]);
        // root, root+graduate_degree, root+degree, root+both = 4 events
        // (append semantics explores the generalization lattice).
        assert_eq!(outcome.derived_events, 4);
        assert!(!outcome.truncated);
    }

    #[test]
    fn materialization_respects_event_cap() {
        let mut i = Interner::new();
        let mut o = Ontology::new("wide");
        // A value with many ancestors → many derived events.
        let leaf = i.intern("leaf");
        for k in 0..50 {
            let anc = i.intern(&format!("anc{k}"));
            o.taxonomy.add_isa(leaf, anc, &i).unwrap();
        }
        let mut engine = NaiveEngine::new();
        let e = EventBuilder::new(&mut i).term("x", "leaf").build();
        let limits = Limits { max_derived_events: 10, ..Limits::default() };
        let mut candidates = FxHashSet::default();
        let outcome = materialize_match(
            &e,
            &o,
            StageMask::all(),
            None,
            0,
            &i,
            &limits,
            &mut engine,
            &mut candidates,
        );
        assert!(outcome.truncated);
        assert_eq!(outcome.derived_events, 10);
    }

    #[test]
    fn materialization_chains_mapping_after_hierarchy() {
        let mut i = Interner::new();
        let mut o = Ontology::new("t");
        let lang = i.intern("language");
        let java = i.intern("java");
        o.taxonomy.add_isa(java, lang, &i).unwrap();
        let skill = i.intern("skill");
        let label = i.intern("label");
        let coder = i.intern("coder");
        o.mappings
            .register(MappingFunction::new(
                "coder",
                vec![PatternItem {
                    attr: skill,
                    guard: Some(stopss_ontology::Guard {
                        op: Operator::Eq,
                        value: Value::Sym(lang),
                    }),
                }],
                vec![Production { attr: label, expr: Expr::Const(Value::Sym(coder)) }],
            ))
            .unwrap();
        let mut engine = NaiveEngine::new();
        engine.insert(SubscriptionBuilder::new(&mut i).term_eq("label", "coder").build(SubId(7)));
        let e = EventBuilder::new(&mut i).term("skill", "java").build();
        let mut candidates = FxHashSet::default();
        materialize_match(
            &e,
            &o,
            StageMask::all(),
            None,
            0,
            &i,
            &Limits::default(),
            &mut engine,
            &mut candidates,
        );
        assert!(candidates.contains(&SubId(7)), "hierarchy→mapping chain must be explored");
    }

    #[test]
    fn expansion_covers_descendant_values() {
        let mut i = Interner::new();
        let o = degrees(&mut i);
        let sub = SubscriptionBuilder::new(&mut i).term_eq("credential", "degree").build(SubId(1));
        let expansion = expand_subscription(&sub, &o, true, None, 1024);
        assert!(!expansion.truncated);
        // degree, graduate_degree, phd as values (attr has no descendants).
        assert_eq!(expansion.combos.len(), 3);
        let values: Vec<Value> = expansion.combos.iter().map(|c| c[0].value).collect();
        let phd = Value::Sym(i.get("phd").unwrap());
        assert!(values.contains(&phd));
    }

    #[test]
    fn expansion_distance_bound() {
        let mut i = Interner::new();
        let o = degrees(&mut i);
        let sub = SubscriptionBuilder::new(&mut i).term_eq("credential", "degree").build(SubId(1));
        let expansion = expand_subscription(&sub, &o, true, Some(1), 1024);
        assert_eq!(expansion.combos.len(), 2, "phd is at distance 2, excluded");
    }

    #[test]
    fn expansion_cross_product_and_cap() {
        let mut i = Interner::new();
        let o = degrees(&mut i);
        let sub = SubscriptionBuilder::new(&mut i)
            .term_eq("credential", "degree")
            .term_eq("level", "degree")
            .build(SubId(1));
        let full = expand_subscription(&sub, &o, true, None, 1024);
        assert_eq!(full.combos.len(), 9);
        let capped = expand_subscription(&sub, &o, true, None, 4);
        assert!(capped.truncated);
        assert!(capped.combos.len() <= 4);
    }

    #[test]
    fn expansion_without_hierarchy_is_identity() {
        let mut i = Interner::new();
        let o = degrees(&mut i);
        let sub = SubscriptionBuilder::new(&mut i).term_eq("credential", "degree").build(SubId(1));
        let expansion = expand_subscription(&sub, &o, false, None, 1024);
        assert_eq!(expansion.combos.len(), 1);
        assert_eq!(expansion.combos[0], sub.predicates().to_vec());
    }

    #[test]
    fn range_predicates_expand_attribute_only() {
        let mut i = Interner::new();
        let mut o = Ontology::new("t");
        let comp = i.intern("compensation");
        let salary = i.intern("salary");
        o.taxonomy.add_isa(salary, comp, &i).unwrap();
        let sub = SubscriptionBuilder::new(&mut i)
            .pred("compensation", Operator::Ge, 50_000i64)
            .build(SubId(1));
        let expansion = expand_subscription(&sub, &o, true, None, 1024);
        assert_eq!(expansion.combos.len(), 2);
        let attrs: Vec<Symbol> = expansion.combos.iter().map(|c| c[0].attr).collect();
        assert!(attrs.contains(&salary));
        assert!(attrs.contains(&comp));
    }
}
