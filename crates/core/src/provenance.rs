//! Match provenance.
//!
//! The demo's "real power … is only apparent by witnessing how seamlessly
//! unrelated objects end up matching" (§4) — which is only convincing if
//! the system can say *why* something matched. A [`MatchOrigin`] records
//! the weakest semantic machinery that suffices to produce the match; the
//! stage-ablation experiment (E1) also uses it to attribute match-count
//! uplift to individual stages.

use std::fmt;

use stopss_types::SubId;

/// Why a subscription matched a publication.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatchOrigin {
    /// Plain content-based matching; no semantics needed.
    Syntactic,
    /// Matched once synonyms were translated to root terms.
    Synonym,
    /// Matched via concept-hierarchy generalization.
    Hierarchy {
        /// The smallest per-step generalization bound that still yields
        /// the match (1 = direct parent suffices).
        distance: u32,
    },
    /// Matched only with mapping functions involved (possibly interleaved
    /// with synonym/hierarchy processing).
    Mapping,
    /// Provenance tracking was disabled.
    Unclassified,
}

impl MatchOrigin {
    /// Rank used to report "the weakest machinery that explains the
    /// match": syntactic < synonym < hierarchy < mapping.
    pub fn rank(&self) -> u8 {
        match self {
            MatchOrigin::Syntactic => 0,
            MatchOrigin::Synonym => 1,
            MatchOrigin::Hierarchy { .. } => 2,
            MatchOrigin::Mapping => 3,
            MatchOrigin::Unclassified => 4,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            MatchOrigin::Syntactic => "syntactic",
            MatchOrigin::Synonym => "synonym",
            MatchOrigin::Hierarchy { .. } => "hierarchy",
            MatchOrigin::Mapping => "mapping",
            MatchOrigin::Unclassified => "unclassified",
        }
    }
}

impl fmt::Display for MatchOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchOrigin::Hierarchy { distance } => write!(f, "hierarchy(d={distance})"),
            other => f.write_str(other.label()),
        }
    }
}

/// One matched subscription, with provenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Match {
    /// The matched subscription (the id the subscriber registered, never
    /// an internal rewrite id).
    pub sub: SubId,
    /// Why it matched.
    pub origin: MatchOrigin,
}

/// Aggregate counts of match origins, used by the experiment harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OriginCounts {
    /// Matches needing no semantics.
    pub syntactic: usize,
    /// Matches unlocked by synonym translation.
    pub synonym: usize,
    /// Matches unlocked by hierarchy generalization.
    pub hierarchy: usize,
    /// Matches requiring mapping functions.
    pub mapping: usize,
    /// Matches with provenance tracking disabled.
    pub unclassified: usize,
}

impl OriginCounts {
    /// Folds one match into the counts.
    pub fn record(&mut self, origin: MatchOrigin) {
        match origin {
            MatchOrigin::Syntactic => self.syntactic += 1,
            MatchOrigin::Synonym => self.synonym += 1,
            MatchOrigin::Hierarchy { .. } => self.hierarchy += 1,
            MatchOrigin::Mapping => self.mapping += 1,
            MatchOrigin::Unclassified => self.unclassified += 1,
        }
    }

    /// Total matches recorded.
    pub fn total(&self) -> usize {
        self.syntactic + self.synonym + self.hierarchy + self.mapping + self.unclassified
    }

    /// Folds counts from an iterator of matches.
    pub fn from_matches<'a>(matches: impl IntoIterator<Item = &'a Match>) -> Self {
        let mut counts = OriginCounts::default();
        for m in matches {
            counts.record(m.origin);
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_ranks_order_machinery() {
        assert!(MatchOrigin::Syntactic.rank() < MatchOrigin::Synonym.rank());
        assert!(MatchOrigin::Synonym.rank() < MatchOrigin::Hierarchy { distance: 1 }.rank());
        assert!(MatchOrigin::Hierarchy { distance: 9 }.rank() < MatchOrigin::Mapping.rank());
    }

    #[test]
    fn display_shows_distance() {
        assert_eq!(MatchOrigin::Hierarchy { distance: 2 }.to_string(), "hierarchy(d=2)");
        assert_eq!(MatchOrigin::Syntactic.to_string(), "syntactic");
    }

    #[test]
    fn counts_aggregate() {
        let matches = [
            Match { sub: SubId(1), origin: MatchOrigin::Syntactic },
            Match { sub: SubId(2), origin: MatchOrigin::Hierarchy { distance: 1 } },
            Match { sub: SubId(3), origin: MatchOrigin::Hierarchy { distance: 3 } },
            Match { sub: SubId(4), origin: MatchOrigin::Mapping },
        ];
        let counts = OriginCounts::from_matches(&matches);
        assert_eq!(counts.syntactic, 1);
        assert_eq!(counts.hierarchy, 2);
        assert_eq!(counts.mapping, 1);
        assert_eq!(counts.synonym, 0);
        assert_eq!(counts.total(), 4);
    }
}
