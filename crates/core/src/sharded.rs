//! Sharded concurrent matching with a shared semantic front-end.
//!
//! [`ShardedSToPSS`] partitions subscriptions across N shards by a hash of
//! their [`SubId`]; each shard owns a complete matcher core (and therefore
//! an independent [`stopss_matching::MatchingEngine`]). A publication
//! flows through a **two-stage pipeline**:
//!
//! 1. **Shared semantic front-end** — the event-side pass (synonym
//!    canonicalization, hierarchy/mapping closure, or event
//!    materialization) runs *once per publication* via
//!    [`crate::SemanticFrontEnd`], producing a [`PreparedEvent`] artifact.
//!    With provenance on, the provenance classifier's tier closures are
//!    warmed here too, and so are the verification-class closures of every
//!    registered non-system tolerance. For batches the front-end itself
//!    chunks events across the scoped worker pool.
//! 2. **Shard matching** — every shard receives only the engine-match +
//!    verify work on the precomputed artifact, fanned out on crossbeam
//!    scoped worker threads. The artifact's [`crate::TierCache`] is shared
//!    read-only across the concurrent shards: per-candidate tolerance
//!    verification and provenance classification read the same
//!    per-publication closures instead of each shard re-deriving them per
//!    candidate inside its partition.
//!
//! # Epoch-snapshot control plane
//!
//! The shard vector lives inside one immutable `ShardSet` snapshot
//! behind an atomically swapped `Arc` — a *consistent cut* across all
//! shards. Control ops (`subscribe`, `unsubscribe`, `set_stages`,
//! `reconfigure`, `set_source`) serialize on a control mutex, fork only
//! the shard(s) they touch (copy-on-write via
//! [`stopss_matching::MatchingEngine::boxed_clone`]), and publish a whole
//! new set with one pointer swap. Publishers resolve one set per
//! publication (per pipeline chunk for batches) and never block on the
//! control plane; swapping the *set* rather than individual shards is what
//! makes interleaved runs linearizable — a publication can never observe
//! shard A after a mutation but shard B before it.
//!
//! Like the single matcher, the set carries two epochs: `control_epoch`
//! (bumped by every mutation; returned by control ops and stamped on every
//! [`PublishResult`] as the linearization token) and `frontend_epoch`
//! (bumped only by `set_stages`/`reconfigure`/`set_source`, the mutations
//! that invalidate detached front-end artifacts). "Stale" therefore means
//! exactly: the artifact's front-end tag no longer equals the resolved
//! set's `frontend_epoch`. The pipelined `publish_batch` self-heals mid
//! batch — a chunk whose artifacts went stale is re-prepared against the
//! set it is about to match — and the broker's barrier path gets the same
//! atomicity via [`ShardedSToPSS::try_publish_prepared_batch`].
//!
//! The whole match path takes `&self`: shards keep their per-publication
//! mutable state (engine + scratch) behind interior mutability and the
//! counters are relaxed atomics, so stage 1 and stage 2 can run
//! concurrently. [`ShardedSToPSS::publish_batch`] exploits that with
//! **cross-batch pipelining**: the batch is cut into chunks and the
//! front-end prepares chunk *k+1* on a dedicated scoped worker while the
//! shards match chunk *k* — a true pipeline instead of the former
//! prepare-everything-then-match-everything barrier (the barrier remains
//! reachable as `frontend().prepare_batch()` + `publish_prepared_batch()`,
//! and the `sharding_scaling` bench carries the pipelined-vs-barrier
//! comparison axis).
//!
//! Per-shard match sets are merged deterministically (sorted by `SubId`),
//! so the result — matches, provenance, ordering, and aggregated
//! [`MatcherStats`] — is byte-identical to the single-threaded matcher.
//! The S-ToPSS paper treats the syntactic engine as a black box precisely
//! so the semantic layer can scale this way: semantic enrichment is a
//! per-publication transform (independent of which subscriptions a shard
//! holds), matching is the per-subscription fan-out.
//!
//! # Stats aggregation
//!
//! The shared front-end accumulates the event-side counters (`published`,
//! `derived_events`, `closure_pairs`, `truncations`) exactly once per
//! publication; shard cores accumulate only subscription-side counters
//! (`verifications`, `verify_rejections`, `rewrite_truncations`) into one
//! shared atomic block. Both blocks live *outside* the swapped snapshots,
//! so statistics survive control-plane swaps and reshards without a carry
//! step, and a plain sum reproduces the single-threaded numbers exactly.
//! The differential suite in `tests/sharded_differential.rs` pins this
//! equivalence across every engine × strategy × stage-mask combination.

use stopss_ontology::SemanticSource;
use stopss_types::sync::atomic::Ordering;
use stopss_types::sync::{mpsc, Arc, Mutex, RwLock};
use stopss_types::{fx_hash_one, Event, SharedInterner, SubId, Subscription};

use crate::config::Config;
use crate::frontend::{PreparedEvent, SemanticFrontEnd};
use crate::matcher::{AtomicStats, MatcherCore, MatcherStats, PublishResult};
use crate::provenance::Match;
use crate::tolerance::Tolerance;

/// Publications per pipeline chunk of [`ShardedSToPSS::publish_batch`]:
/// the granularity at which stage 1 (front-end preparation) of chunk
/// *k+1* overlaps stage 2 (shard matching) of chunk *k*. Large enough
/// that the front-end's own batch chunking can still engage inside one
/// chunk; small enough that a typical large batch yields several chunks
/// to overlap. Exported so the broker's publish pipeline chunks at the
/// same granularity (one constant, two call sites).
pub const PIPELINE_CHUNK: usize = 32;

/// The shard a subscription id is routed to, out of `shards`.
///
/// Stable across processes and platforms (Fx mix over the raw id), so
/// fixtures, golden tests and replicated brokers agree on placement.
pub fn shard_of(id: SubId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (fx_hash_one(&id.0) % shards as u64) as usize
}

/// One immutable incarnation of the sharded matcher: the configuration,
/// ontology handle, every shard core, and the two epochs — the consistent
/// cut a publication matches against.
struct ShardSet {
    config: Config,
    source: Arc<dyn SemanticSource>,
    shards: Vec<Arc<MatcherCore>>,
    /// Bumped by every control mutation (linearization token).
    control_epoch: u64,
    /// Bumped by mutations that invalidate detached front-end artifacts.
    frontend_epoch: u64,
}

impl ShardSet {
    /// A detachable front-end for this set, carrying the union of the
    /// shards' registered verification classes and the set's front-end
    /// epoch tag.
    fn frontend(&self, interner: &SharedInterner) -> SemanticFrontEnd {
        let mut classes: Vec<Tolerance> = Vec::new();
        for shard in &self.shards {
            shard.verify_classes_into(&mut classes);
        }
        SemanticFrontEnd::new(self.config, self.source.clone(), interner.clone())
            .with_verify_classes(classes)
            .with_epoch(self.frontend_epoch)
    }
}

/// A sharded, concurrent semantic matcher with the same observable
/// behaviour as [`crate::SToPSS`].
///
/// Subscriptions are partitioned by [`shard_of`]; publications run the
/// shared semantic front-end once, then fan out to all shards in parallel
/// (scoped worker threads, at most [`Config::effective_parallelism`] of
/// them) and merge into one ordered match set. Control ops take `&self`
/// and swap immutable `ShardSet` snapshots; publishers never block on
/// them. See the module docs for the two-stage pipeline, the epoch-swap
/// semantics, and the equivalence argument.
pub struct ShardedSToPSS {
    interner: SharedInterner,
    /// The current consistent cut. Held only long enough to clone
    /// (readers) or store (the control plane) the `Arc`.
    snapshot: RwLock<Arc<ShardSet>>,
    /// Serializes control-plane mutations; the publish path never touches
    /// it.
    control: Mutex<()>,
    /// Event-side counters from the shared front-end pass (shards only
    /// ever see subscription-side work, so these accumulate here, once
    /// per publication). Relaxed atomics so the `&self` match path can
    /// account them while another pipeline chunk is in flight.
    event_stats: Arc<AtomicStats>,
    /// Subscription-side counters, shared by every shard core across
    /// every snapshot incarnation (so reshards need no carry step).
    sub_stats: Arc<AtomicStats>,
}

impl ShardedSToPSS {
    /// Creates a matcher with `config.effective_shards()` shards over
    /// `source`, using `interner` for all terms.
    pub fn new(config: Config, source: Arc<dyn SemanticSource>, interner: SharedInterner) -> Self {
        let sub_stats = Arc::new(AtomicStats::default());
        let shards = (0..config.effective_shards())
            .map(|_| {
                Arc::new(MatcherCore::new(
                    config,
                    source.clone(),
                    interner.clone(),
                    sub_stats.clone(),
                ))
            })
            .collect();
        ShardedSToPSS {
            interner,
            snapshot: RwLock::new(Arc::new(ShardSet {
                config,
                source,
                shards,
                control_epoch: 0,
                frontend_epoch: 0,
            })),
            control: Mutex::new(()),
            event_stats: Arc::new(AtomicStats::default()),
            sub_stats,
        }
    }

    /// Resolves the current consistent cut (one brief read lock, one
    /// `Arc` clone).
    fn resolve(&self) -> Arc<ShardSet> {
        self.snapshot.read().clone()
    }

    /// The interner shared with publishers/subscribers.
    pub fn interner(&self) -> &SharedInterner {
        &self.interner
    }

    /// The active configuration (of the current snapshot).
    pub fn config(&self) -> Config {
        self.resolve().config
    }

    /// The semantic knowledge source (of the current snapshot).
    pub fn source(&self) -> Arc<dyn SemanticSource> {
        self.resolve().source.clone()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.resolve().shards.len()
    }

    /// The shard subscription `id` is (or would be) routed to.
    pub fn shard_for(&self, id: SubId) -> usize {
        shard_of(id, self.shard_count())
    }

    /// The control epoch of the current snapshot (bumped by every control
    /// mutation).
    pub fn control_epoch(&self) -> u64 {
        self.resolve().control_epoch
    }

    /// The front-end epoch of the current snapshot (bumped by mutations
    /// that invalidate detached front-end artifacts).
    pub fn frontend_epoch(&self) -> u64 {
        self.resolve().frontend_epoch
    }

    /// A detachable handle on the shared semantic front-end (see
    /// [`SemanticFrontEnd`]): the stage every publication passes through
    /// exactly once before shard matching. Carries the union of the
    /// shards' registered verification classes (so stage 1 warms them
    /// alongside the classifier tiers) and the snapshot's front-end epoch
    /// tag for staleness checks.
    pub fn frontend(&self) -> SemanticFrontEnd {
        self.resolve().frontend(&self.interner)
    }

    /// Aggregated lifetime statistics, identical to what a single
    /// [`crate::SToPSS`] over the same inputs would report (see module
    /// docs).
    pub fn stats(&self) -> MatcherStats {
        let mut agg = self.event_stats.snapshot();
        agg.merge(&self.sub_stats.snapshot());
        agg
    }

    /// Number of user subscriptions across all shards.
    pub fn len(&self) -> usize {
        self.resolve().shards.iter().map(|s| s.len()).sum()
    }

    /// True if no subscriptions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The original subscription registered under `id`.
    pub fn subscription(&self, id: SubId) -> Option<Subscription> {
        let set = self.resolve();
        set.shards[shard_of(id, set.shards.len())].subscription(id).cloned()
    }

    /// The effective (clamped) tolerance of subscription `id`.
    pub fn tolerance(&self, id: SubId) -> Option<Tolerance> {
        let set = self.resolve();
        set.shards[shard_of(id, set.shards.len())].tolerance(id)
    }

    /// Registers a subscription with the system-wide tolerance. Returns
    /// the control epoch the registration created.
    pub fn subscribe(&self, sub: Subscription) -> u64 {
        let _control = self.control.lock();
        let cur = self.resolve();
        let tolerance = cur.config.system_tolerance();
        self.swap_subscribed(&cur, sub, tolerance)
    }

    /// Registers a subscription with a subscriber-specific tolerance.
    /// Returns the control epoch the registration created.
    pub fn subscribe_with_tolerance(&self, sub: Subscription, tolerance: Tolerance) -> u64 {
        let _control = self.control.lock();
        let cur = self.resolve();
        self.swap_subscribed(&cur, sub, tolerance)
    }

    /// Forks the one shard `sub` routes to, registers it there, and swaps
    /// in the new set. Caller holds the control lock.
    fn swap_subscribed(&self, cur: &ShardSet, sub: Subscription, tolerance: Tolerance) -> u64 {
        let idx = shard_of(sub.id(), cur.shards.len());
        let mut shards = cur.shards.clone();
        let mut core = shards[idx].fork();
        core.subscribe_with_tolerance(sub, tolerance);
        shards[idx] = Arc::new(core);
        self.swap(ShardSet {
            config: cur.config,
            source: cur.source.clone(),
            shards,
            control_epoch: cur.control_epoch + 1,
            frontend_epoch: cur.frontend_epoch,
        })
    }

    /// Registers a whole batch of subscriptions (each with an optional
    /// subscriber tolerance) as **one** control mutation: each touched
    /// shard is forked exactly once, all subscriptions land on their
    /// forks, and a single snapshot swap publishes the batch under one
    /// control-epoch bump. Untouched shards keep their existing `Arc`s.
    /// Connection-scale subscribers would otherwise pay one fork+swap per
    /// subscription (O(N²) across N subscriptions); the networked broker's
    /// event loop relies on this to coalesce Subscribe frames per poll
    /// turn. An empty batch publishes nothing and returns the current
    /// control epoch.
    pub fn subscribe_batch(&self, subs: Vec<(Subscription, Option<Tolerance>)>) -> u64 {
        if subs.is_empty() {
            return self.control_epoch();
        }
        let _control = self.control.lock();
        let cur = self.resolve();
        let mut shards = cur.shards.clone();
        let mut forked: Vec<Option<MatcherCore>> = (0..shards.len()).map(|_| None).collect();
        for (sub, tolerance) in subs {
            let idx = shard_of(sub.id(), shards.len());
            let core = forked[idx].get_or_insert_with(|| shards[idx].fork());
            let tolerance = tolerance.unwrap_or_else(|| cur.config.system_tolerance());
            core.subscribe_with_tolerance(sub, tolerance);
        }
        for (idx, core) in forked.into_iter().enumerate() {
            if let Some(core) = core {
                shards[idx] = Arc::new(core);
            }
        }
        self.swap(ShardSet {
            config: cur.config,
            source: cur.source.clone(),
            shards,
            control_epoch: cur.control_epoch + 1,
            frontend_epoch: cur.frontend_epoch,
        })
    }

    /// Stores the next snapshot; returns its control epoch.
    fn swap(&self, next: ShardSet) -> u64 {
        let epoch = next.control_epoch;
        *self.snapshot.write() = Arc::new(next);
        epoch
    }

    /// Removes a subscription; returns the control epoch of the removal,
    /// or `None` if no such subscription existed.
    pub fn unsubscribe(&self, id: SubId) -> Option<u64> {
        let _control = self.control.lock();
        let cur = self.resolve();
        let idx = shard_of(id, cur.shards.len());
        if !cur.shards[idx].contains(id) {
            return None;
        }
        let mut shards = cur.shards.clone();
        let mut core = shards[idx].fork();
        core.remove_entry(id);
        shards[idx] = Arc::new(core);
        Some(self.swap(ShardSet {
            config: cur.config,
            source: cur.source.clone(),
            shards,
            control_epoch: cur.control_epoch + 1,
            frontend_epoch: cur.frontend_epoch,
        }))
    }

    /// Publishes one event, returning the matched subscriptions ordered by
    /// `SubId` — the same order the single-threaded matcher produces.
    pub fn publish(&self, event: &Event) -> Vec<Match> {
        self.publish_detailed(event).matches
    }

    /// Publishes one event, returning matches plus processing counters.
    pub fn publish_detailed(&self, event: &Event) -> PublishResult {
        self.publish_batch_detailed(std::slice::from_ref(event))
            .pop()
            .expect("invariant: one event in, one result out")
    }

    /// Publishes a batch of events through the two-stage pipeline and
    /// returns the match set of each event in order.
    pub fn publish_batch(&self, events: &[Event]) -> Vec<Vec<Match>> {
        self.publish_batch_detailed(events).into_iter().map(|r| r.matches).collect()
    }

    /// Publishes a batch of events, returning the detailed result of each.
    ///
    /// Batches larger than one pipeline chunk run the two stages as a
    /// **true pipeline**: a dedicated scoped worker prepares chunk *k+1*
    /// on the shared front-end (which itself chunks large chunks across
    /// the pool) while the shards match chunk *k*. A bounded channel
    /// (capacity 1) keeps the preparer exactly one chunk ahead. Small
    /// batches — and configurations without the worker budget or the
    /// hardware for overlap ([`Config::pipeline_overlap`]) — fall back
    /// to the plain barrier (prepare everything, then match everything),
    /// which is observably identical: chunking never crosses an event
    /// boundary, artifacts are position-stable, and the event-side
    /// counters commute (relaxed atomic sums).
    ///
    /// Each chunk resolves its own `ShardSet` at match time, so control
    /// ops racing a long batch interleave at chunk granularity; a chunk
    /// whose artifacts were prepared under a now-stale front end (a
    /// concurrent `set_stages`/`reconfigure`/`set_source`) is re-prepared
    /// against the set it is about to match — publishers self-heal
    /// instead of blocking.
    pub fn publish_batch_detailed(&self, events: &[Event]) -> Vec<PublishResult> {
        if events.is_empty() {
            return Vec::new();
        }
        let start = self.resolve();
        let frontend = start.frontend(&self.interner);
        if events.len() <= PIPELINE_CHUNK || !start.config.pipeline_overlap() {
            let prepared = frontend.prepare_batch(events);
            return self.match_chunk(events, prepared, frontend.epoch());
        }
        // Capacity 1: the preparer may finish chunk k+1 while chunk k is
        // being matched, then blocks — stage 1 never runs more than one
        // chunk ahead of stage 2.
        let (tx, rx) = mpsc::sync_channel::<Vec<PreparedEvent>>(1);
        let frontend = &frontend;
        crossbeam::thread::scope(|scope| {
            scope.spawn(move |_| {
                for chunk in events.chunks(PIPELINE_CHUNK) {
                    // The receiver only drops mid-batch on a match-stage
                    // panic; stop preparing in that case.
                    if tx.send(frontend.prepare_batch(chunk)).is_err() {
                        break;
                    }
                }
            });
            let mut results = Vec::with_capacity(events.len());
            let mut offset = 0usize;
            for prepared in rx {
                let chunk = &events[offset..offset + prepared.len()];
                offset += prepared.len();
                results.extend(self.match_chunk(chunk, prepared, frontend.epoch()));
            }
            results
        })
        .expect("invariant: pipeline scope threads do not panic")
    }

    /// Matches one chunk against a freshly resolved set, re-preparing the
    /// artifacts first if the front end they came from has gone stale.
    /// The staleness check and the match read the *same* snapshot, so a
    /// racing control op lands entirely before or entirely after the
    /// chunk — never inside it.
    fn match_chunk(
        &self,
        events: &[Event],
        prepared: Vec<PreparedEvent>,
        prepared_epoch: u64,
    ) -> Vec<PublishResult> {
        let set = self.resolve();
        let prepared = if set.frontend_epoch == prepared_epoch {
            prepared
        } else {
            set.frontend(&self.interner).prepare_batch(events)
        };
        self.match_prepared_on(&set, &prepared)
    }

    /// The matching stage: publishes precomputed front-end artifacts.
    ///
    /// Accounts the event-side counters the artifacts carry (once per
    /// publication), fans the engine-match + verify work out to the
    /// shards, and merges per-shard results sorted by `SubId`. The
    /// artifacts must have been prepared under this matcher's current
    /// configuration (see [`ShardedSToPSS::frontend`]) — callers racing
    /// the control plane should use
    /// [`ShardedSToPSS::try_publish_prepared_batch`] instead. Combined
    /// with `frontend().prepare_batch()` this is also the *barrier*
    /// composition of the two stages — the reference the pipelined
    /// `publish_batch` is differentially tested (and benchmarked)
    /// against.
    pub fn publish_prepared_batch(&self, prepared: &[PreparedEvent]) -> Vec<PublishResult> {
        let set = self.resolve();
        self.match_prepared_on(&set, prepared)
    }

    /// Atomic staleness check + match: resolves one set and, if its
    /// `frontend_epoch` still equals `frontend_epoch` (the tag of the
    /// [`SemanticFrontEnd`] that prepared `prepared`), matches every
    /// artifact against that set. Returns `None` when the front end is
    /// stale — the caller re-prepares from a fresh
    /// [`ShardedSToPSS::frontend`].
    pub fn try_publish_prepared_batch(
        &self,
        prepared: &[PreparedEvent],
        frontend_epoch: u64,
    ) -> Option<Vec<PublishResult>> {
        let set = self.resolve();
        if set.frontend_epoch != frontend_epoch {
            return None;
        }
        Some(self.match_prepared_on(&set, prepared))
    }

    fn match_prepared_on(&self, set: &ShardSet, prepared: &[PreparedEvent]) -> Vec<PublishResult> {
        if prepared.is_empty() {
            return Vec::new();
        }
        // ordering: monotone event-side stats counters; atomic adds
        // commute and no reader couples them to other memory.
        self.event_stats.published.fetch_add(prepared.len() as u64, Ordering::Relaxed);
        for artifact in prepared {
            self.event_stats
                .derived_events
                .fetch_add(artifact.derived_events as u64, Ordering::Relaxed);
            self.event_stats
                .closure_pairs
                .fetch_add(artifact.closure_pairs as u64, Ordering::Relaxed);
            if artifact.truncated {
                self.event_stats.truncations.fetch_add(1, Ordering::Relaxed);
            }
        }

        let workers = set.config.effective_parallelism();
        // Scoped workers are real OS threads, so spawning must be
        // amortized: batches always fan out; a single event (the broker's
        // per-publish path) fans out only when the caller asked for a
        // worker pool explicitly (`parallelism > 0`, e.g. candidate-heavy
        // shards where per-shard matching dwarfs a thread spawn) and
        // otherwise matches sequentially.
        let fan_out = workers > 1
            && set.shards.len() > 1
            && (prepared.len() > 1 || set.config.parallelism > 0);
        // per_shard[s][k] = shard s's result for artifact k.
        let per_shard: Vec<Vec<PublishResult>> = if !fan_out {
            set.shards.iter().map(|shard| run_shard(shard, prepared)).collect()
        } else {
            let chunk = set.shards.len().div_ceil(workers);
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = set
                    .shards
                    .chunks(chunk)
                    .map(|chunk_shards| {
                        scope.spawn(move |_| {
                            chunk_shards
                                .iter()
                                .map(|shard| run_shard(shard, prepared))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                // Handles joined in spawn order, so shard order is preserved.
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("invariant: shard workers do not panic"))
                    .collect()
            })
            .expect("invariant: shard scope threads do not panic")
        };
        merge_results(prepared, per_shard, set.control_epoch)
    }

    /// Switches the enabled stages on every shard and rebuilds their
    /// engine subscriptions. Returns the control epoch of the switch.
    pub fn set_stages(&self, stages: crate::tolerance::StageMask) -> u64 {
        let _control = self.control.lock();
        let cur = self.resolve();
        let mut config = cur.config;
        config.stages = stages;
        let shards = cur
            .shards
            .iter()
            .map(|shard| {
                let mut core = shard.fork();
                core.set_stages(stages);
                Arc::new(core)
            })
            .collect();
        self.swap(ShardSet {
            config,
            source: cur.source.clone(),
            shards,
            control_epoch: cur.control_epoch + 1,
            frontend_epoch: cur.frontend_epoch + 1,
        })
    }

    /// Replaces the configuration (engine, strategy, shard count, …). If
    /// the shard count changes, subscriptions are redistributed into
    /// fresh shard cores — verification-class refcounts (and therefore
    /// the stage-1 warm set) are rebuilt per shard from the re-routed
    /// subscriptions' requested tolerances, and lifetime statistics
    /// survive because the counters live outside the snapshots. Either
    /// way every shard rebuilds its engine state. Returns the control
    /// epoch of the swap.
    pub fn reconfigure(&self, config: Config) -> u64 {
        let _control = self.control.lock();
        let cur = self.resolve();
        let shards = if config.effective_shards() == cur.shards.len() {
            cur.shards
                .iter()
                .map(|shard| {
                    let mut core = shard.fork();
                    core.reconfigure(config);
                    Arc::new(core)
                })
                .collect()
        } else {
            let mut all: Vec<(Subscription, Tolerance)> = Vec::new();
            for shard in &cur.shards {
                all.extend(shard.subscriptions_with_tolerances());
            }
            all.sort_unstable_by_key(|(sub, _)| sub.id());
            let mut cores: Vec<MatcherCore> = (0..config.effective_shards())
                .map(|_| {
                    MatcherCore::new(
                        config,
                        cur.source.clone(),
                        self.interner.clone(),
                        self.sub_stats.clone(),
                    )
                })
                .collect();
            for (sub, tolerance) in all {
                let idx = shard_of(sub.id(), cores.len());
                cores[idx].subscribe_with_tolerance(sub, tolerance);
            }
            cores.into_iter().map(Arc::new).collect()
        };
        self.swap(ShardSet {
            config,
            source: cur.source.clone(),
            shards,
            control_epoch: cur.control_epoch + 1,
            frontend_epoch: cur.frontend_epoch + 1,
        })
    }

    /// Swaps the semantic knowledge source on every shard — live ontology
    /// evolution, see [`crate::SToPSS::set_source`]. Returns the control
    /// epoch of the swap.
    pub fn set_source(&self, source: Arc<dyn SemanticSource>) -> u64 {
        let _control = self.control.lock();
        let cur = self.resolve();
        let shards = cur
            .shards
            .iter()
            .map(|shard| {
                let mut core = shard.fork();
                core.set_source(source.clone());
                Arc::new(core)
            })
            .collect();
        self.swap(ShardSet {
            config: cur.config,
            source,
            shards,
            control_epoch: cur.control_epoch + 1,
            frontend_epoch: cur.frontend_epoch + 1,
        })
    }
}

/// Runs the whole artifact list through one shard sequentially (the
/// subscription-side half only — the front-end already ran). `&MatcherCore`
/// suffices: the shard's match path is interior-mutable.
fn run_shard(shard: &MatcherCore, prepared: &[PreparedEvent]) -> Vec<PublishResult> {
    prepared.iter().map(|artifact| shard.match_prepared(artifact)).collect()
}

/// Merges per-shard results into one result per event: matches are
/// concatenated and sorted by `SubId` (shards partition ids, so there are
/// no duplicates); event-side counters come straight from the shared
/// front-end artifact, the epoch from the set the chunk matched against.
fn merge_results(
    prepared: &[PreparedEvent],
    per_shard: Vec<Vec<PublishResult>>,
    epoch: u64,
) -> Vec<PublishResult> {
    let mut merged: Vec<PublishResult> = Vec::with_capacity(prepared.len());
    for (k, artifact) in prepared.iter().enumerate() {
        let mut result = PublishResult {
            matches: Vec::new(),
            derived_events: artifact.derived_events,
            closure_pairs: artifact.closure_pairs,
            truncated: artifact.truncated,
            epoch,
        };
        for shard_results in &per_shard {
            result.matches.extend_from_slice(&shard_results[k].matches);
        }
        result.matches.sort_unstable_by_key(|m| m.sub);
        merged.push(result);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;
    use crate::matcher::SToPSS;
    use crate::provenance::MatchOrigin;
    use crate::tolerance::StageMask;
    use stopss_matching::EngineKind;
    use stopss_ontology::Ontology;
    use stopss_types::{EventBuilder, Interner, SubscriptionBuilder};

    struct World {
        interner: SharedInterner,
        source: Arc<Ontology>,
        subs: Vec<Subscription>,
        events: Vec<Event>,
    }

    /// A taxonomy world with enough subscriptions that every shard count
    /// in the tests gets a non-empty partition.
    fn world() -> World {
        let mut i = Interner::new();
        let mut o = Ontology::new("jobs");
        let degree = i.intern("degree");
        let grad = i.intern("graduate_degree");
        let phd = i.intern("phd");
        o.taxonomy.add_isa(grad, degree, &i).unwrap();
        o.taxonomy.add_isa(phd, grad, &i).unwrap();

        let mut subs = Vec::new();
        for k in 0..16u64 {
            let term = ["degree", "graduate_degree", "phd"][k as usize % 3];
            subs.push(
                SubscriptionBuilder::new(&mut i).term_eq("credential", term).build(SubId(k + 1)),
            );
        }
        let events = vec![
            EventBuilder::new(&mut i).term("credential", "phd").build(),
            EventBuilder::new(&mut i).term("credential", "degree").build(),
            EventBuilder::new(&mut i).term("credential", "other").build(),
        ];
        World { interner: SharedInterner::from_interner(i), source: Arc::new(o), subs, events }
    }

    fn matchers(w: &World, shards: usize) -> (SToPSS, ShardedSToPSS) {
        let config = Config::default().with_shards(shards);
        let single = SToPSS::new(config, w.source.clone(), w.interner.clone());
        let sharded = ShardedSToPSS::new(config, w.source.clone(), w.interner.clone());
        for sub in &w.subs {
            single.subscribe(sub.clone());
            sharded.subscribe(sub.clone());
        }
        (single, sharded)
    }

    #[test]
    fn shard_routing_is_stable_and_total() {
        for shards in [1usize, 2, 3, 8] {
            for id in 0..100u64 {
                let s = shard_of(SubId(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(SubId(id), shards), "routing must be deterministic");
            }
        }
    }

    #[test]
    fn sharded_matches_equal_single_threaded() {
        let w = world();
        for shards in [1usize, 2, 5, 8] {
            let (single, sharded) = matchers(&w, shards);
            assert_eq!(sharded.shard_count(), shards);
            assert_eq!(sharded.len(), single.len());
            for event in &w.events {
                let want = single.publish(event);
                let got = sharded.publish(event);
                assert_eq!(got, want, "shards={shards} diverged");
            }
            assert_eq!(sharded.stats(), single.stats(), "shards={shards} stats diverged");
        }
    }

    #[test]
    fn batch_equals_per_event_publish() {
        let w = world();
        let (single, sharded) = matchers(&w, 4);
        let batched = sharded.publish_batch(&w.events);
        let sequential: Vec<Vec<Match>> = w.events.iter().map(|e| single.publish(e)).collect();
        assert_eq!(batched, sequential);
        assert_eq!(sharded.publish_batch(&[]), Vec::<Vec<Match>>::new());
    }

    #[test]
    fn prepared_batch_equals_publish_batch() {
        let w = world();
        let (single, sharded) = matchers(&w, 4);
        let prepared = sharded.frontend().prepare_batch(&w.events);
        let got = sharded.publish_prepared_batch(&prepared);
        let want: Vec<PublishResult> =
            w.events.iter().map(|e| single.publish_detailed(e)).collect();
        for (g, s) in got.iter().zip(&want) {
            assert_eq!(g.matches, s.matches);
            assert_eq!(g.derived_events, s.derived_events);
            assert_eq!(g.closure_pairs, s.closure_pairs);
            assert_eq!(g.truncated, s.truncated);
        }
        assert_eq!(sharded.stats(), single.stats(), "prepared path must account event-side stats");
        assert!(sharded.publish_prepared_batch(&[]).is_empty());
    }

    #[test]
    fn subscribe_batch_equals_sequential_subscribes() {
        let w = world();
        for shards in [1usize, 4, 8] {
            let config = Config::default().with_shards(shards);
            let batched = ShardedSToPSS::new(config, w.source.clone(), w.interner.clone());
            let sequential = ShardedSToPSS::new(config, w.source.clone(), w.interner.clone());
            let mut batch = Vec::new();
            for (k, sub) in w.subs.iter().enumerate() {
                if k % 2 == 0 {
                    sequential.subscribe(sub.clone());
                    batch.push((sub.clone(), None));
                } else {
                    sequential.subscribe_with_tolerance(sub.clone(), Tolerance::bounded(1));
                    batch.push((sub.clone(), Some(Tolerance::bounded(1))));
                }
            }
            let before = batched.control_epoch();
            assert_eq!(batched.subscribe_batch(Vec::new()), before, "empty batch must not publish");
            let epoch = batched.subscribe_batch(batch);
            assert_eq!(epoch, before + 1, "one batch, one control-epoch bump");
            assert_eq!(batched.len(), sequential.len());
            for sub in &w.subs {
                assert_eq!(batched.tolerance(sub.id()), sequential.tolerance(sub.id()));
            }
            for event in &w.events {
                assert_eq!(batched.publish(event), sequential.publish(event), "shards={shards}");
            }
        }
    }

    #[test]
    fn parallelism_cap_does_not_change_results() {
        let w = world();
        for parallelism in [1usize, 2, 3] {
            let config = Config::default().with_shards(8).with_parallelism(parallelism);
            let sharded = ShardedSToPSS::new(config, w.source.clone(), w.interner.clone());
            let single = SToPSS::new(config, w.source.clone(), w.interner.clone());
            for sub in &w.subs {
                sharded.subscribe(sub.clone());
                single.subscribe(sub.clone());
            }
            assert_eq!(sharded.publish_batch(&w.events), single.publish_batch(&w.events));
            // Explicit parallelism also fans out single-event publishes;
            // results must not change.
            assert_eq!(sharded.publish(&w.events[0]), single.publish(&w.events[0]));
        }
    }

    #[test]
    fn stats_survive_resharding() {
        let w = world();
        let (single, sharded) = matchers(&w, 2);
        for event in &w.events {
            single.publish(event);
            sharded.publish(event);
        }
        let before = sharded.stats();
        assert_eq!(before, single.stats());
        assert!(before.published > 0);
        sharded.reconfigure(Config::default().with_shards(5));
        single.reconfigure(Config::default());
        let after = sharded.stats();
        assert_eq!(after.published, before.published, "reshard must not zero lifetime stats");
        assert_eq!(after, single.stats(), "stats must track the single-threaded matcher");
        // New publishes keep accumulating on top of the carried baseline.
        sharded.publish(&w.events[0]);
        single.publish(&w.events[0]);
        assert_eq!(sharded.stats(), single.stats());
    }

    #[test]
    fn subscription_lookup_and_unsubscribe_route_by_hash() {
        let w = world();
        let (_, sharded) = matchers(&w, 8);
        let id = w.subs[0].id();
        assert_eq!(sharded.subscription(id), Some(w.subs[0].clone()));
        assert!(sharded.tolerance(id).is_some());
        assert!(sharded.unsubscribe(id).is_some());
        assert!(sharded.unsubscribe(id).is_none());
        assert_eq!(sharded.subscription(id), None);
        assert_eq!(sharded.len(), w.subs.len() - 1);
        assert!(!sharded.is_empty());
    }

    #[test]
    fn set_stages_switches_all_shards() {
        let w = world();
        let (_, sharded) = matchers(&w, 4);
        let semantic = sharded.publish(&w.events[0]).len();
        sharded.set_stages(StageMask::syntactic());
        let syntactic = sharded.publish(&w.events[0]).len();
        assert!(syntactic < semantic, "hierarchy matches must vanish in syntactic mode");
        sharded.set_stages(StageMask::all());
        assert_eq!(sharded.publish(&w.events[0]).len(), semantic);
    }

    #[test]
    fn reconfigure_can_reshard() {
        let w = world();
        let (single, sharded) = matchers(&w, 2);
        let want: Vec<Vec<Match>> = w.events.iter().map(|e| single.publish(e)).collect();
        sharded.reconfigure(
            Config::default()
                .with_shards(7)
                .with_engine(EngineKind::Trie)
                .with_strategy(Strategy::SubscriptionRewrite),
        );
        assert_eq!(sharded.shard_count(), 7);
        assert_eq!(sharded.len(), w.subs.len());
        let got = sharded.publish_batch(&w.events);
        for (g, s) in got.iter().zip(&want) {
            assert_eq!(g, s, "match sets must survive resharding + engine swap");
        }
        // Same shard count: reconfigure in place.
        sharded.reconfigure(Config::default().with_shards(7));
        assert_eq!(sharded.len(), w.subs.len());
    }

    #[test]
    fn shards_share_one_tier_cache_per_artifact() {
        let w = world();
        let config = Config::default().with_shards(4).with_parallelism(4);
        let sharded = ShardedSToPSS::new(config, w.source.clone(), w.interner.clone());
        for (k, sub) in w.subs.iter().enumerate() {
            // Mixed tolerances so several shards verify concurrently.
            let tolerance = match k % 3 {
                0 => Tolerance::full(),
                1 => Tolerance::bounded(1),
                _ => Tolerance::stages(StageMask::SYNONYM),
            };
            sharded.subscribe_with_tolerance(sub.clone(), tolerance);
        }
        let prepared = sharded.frontend().prepare_batch(&w.events);
        assert!(prepared[0].tiers.classifier_tiers_ready(), "stage 1 warms classifier tiers");
        let first = sharded.publish_prepared_batch(&prepared);
        // Two distinct non-system verification classes across all shards,
        // computed on the shared per-publication cache (not per shard or
        // per candidate).
        assert!(prepared[0].tiers.class_count() <= 2, "classes dedupe across shards");
        // Re-publishing the same artifacts reuses the filled caches and
        // stays deterministic.
        let second = sharded.publish_prepared_batch(&prepared);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.matches, b.matches);
        }
    }

    #[test]
    fn per_subscription_tolerance_respected_across_shards() {
        let w = world();
        let config = Config::default().with_shards(8);
        let sharded = ShardedSToPSS::new(config, w.source.clone(), w.interner.clone());
        for sub in &w.subs {
            sharded.subscribe_with_tolerance(sub.clone(), Tolerance::syntactic());
        }
        let matches = sharded.publish(&w.events[0]);
        assert!(
            matches.iter().all(|m| m.origin == MatchOrigin::Syntactic),
            "syntactic tolerance must filter semantic matches on every shard"
        );
        let stats = sharded.stats();
        assert!(stats.verifications >= stats.verify_rejections);
        assert!(stats.verify_rejections > 0);
    }

    #[test]
    fn frontend_warms_registered_verify_classes_in_stage_1() {
        let w = world();
        let config = Config::default().with_shards(4);
        let sharded = ShardedSToPSS::new(config, w.source.clone(), w.interner.clone());
        for (k, sub) in w.subs.iter().enumerate() {
            let tolerance = match k % 3 {
                0 => Tolerance::full(), // system tolerance: no verify class
                1 => Tolerance::bounded(1),
                _ => Tolerance::stages(StageMask::SYNONYM),
            };
            sharded.subscribe_with_tolerance(sub.clone(), tolerance);
        }
        // The detached handle carries the two distinct non-system classes;
        // stage 1 closes them eagerly, before any shard matches.
        let prepared = sharded.frontend().prepare(&w.events[0]);
        assert_eq!(
            prepared.tiers.class_count(),
            2,
            "both registered verification classes are warmed at prepare time"
        );
        // Unsubscribing every bounded-tolerance subscriber drops its class
        // from the next snapshot.
        for (k, sub) in w.subs.iter().enumerate() {
            if k % 3 == 1 {
                sharded.unsubscribe(sub.id());
            }
        }
        let prepared = sharded.frontend().prepare(&w.events[0]);
        assert_eq!(prepared.tiers.class_count(), 1, "unsubscribe retires the class");
        // Warming must not change results: compare against a cold handle.
        let cold = SemanticFrontEnd::new(config, w.source.clone(), w.interner.clone())
            .prepare_batch(&w.events);
        let warm = sharded.frontend().prepare_batch(&w.events);
        let from_warm = sharded.publish_prepared_batch(&warm);
        let from_cold = sharded.publish_prepared_batch(&cold);
        for (a, b) in from_warm.iter().zip(&from_cold) {
            assert_eq!(a.matches, b.matches, "warming is behaviourally invisible");
        }
    }

    /// Regression (control-plane bugfix pass): verification classes and
    /// the stage-1 warm set must survive a reshard exactly — no leaked
    /// class from the old shard vector, no double-retire when members
    /// unsubscribe afterwards.
    #[test]
    fn verify_classes_survive_resharding() {
        let w = world();
        let sharded = ShardedSToPSS::new(
            Config::default().with_shards(2),
            w.source.clone(),
            w.interner.clone(),
        );
        for (k, sub) in w.subs.iter().enumerate() {
            let tolerance = match k % 3 {
                0 => Tolerance::full(),
                1 => Tolerance::bounded(1),
                _ => Tolerance::stages(StageMask::SYNONYM),
            };
            sharded.subscribe_with_tolerance(sub.clone(), tolerance);
        }
        let warm_before = sharded.frontend().prepare(&w.events[0]).tiers.class_count();
        assert_eq!(warm_before, 2, "two non-system classes registered");
        sharded.reconfigure(Config::default().with_shards(5));
        let warm_after = sharded.frontend().prepare(&w.events[0]).tiers.class_count();
        assert_eq!(warm_after, 2, "classes re-routed with their subscriptions");
        // Retiring every member of one class removes exactly that class —
        // a leaked refcount would keep it warm, a double-retire would
        // have already dropped it.
        for (k, sub) in w.subs.iter().enumerate() {
            if k % 3 == 1 {
                assert!(sharded.unsubscribe(sub.id()).is_some());
            }
        }
        let warm_retired = sharded.frontend().prepare(&w.events[0]).tiers.class_count();
        assert_eq!(warm_retired, 1, "the bounded class retires with its last member");
        // The surviving class still verifies correctly after the reshard.
        let matches = sharded.publish(&w.events[0]);
        assert!(!matches.is_empty());
    }

    #[test]
    fn pipelined_large_batch_equals_barrier_and_single() {
        let w = world();
        // Explicit parallelism forces the stage overlap even on
        // single-core hosts (see `Config::pipeline_overlap`).
        let config = Config::default().with_shards(4).with_parallelism(4);
        // A batch wide enough for several pipeline chunks (> 2 ×
        // PIPELINE_CHUNK), with mixed tolerances in play.
        let batch: Vec<Event> =
            w.events.iter().cycle().take(3 * PIPELINE_CHUNK + 5).cloned().collect();
        let single = SToPSS::new(config, w.source.clone(), w.interner.clone());
        let pipelined = ShardedSToPSS::new(config, w.source.clone(), w.interner.clone());
        let barrier = ShardedSToPSS::new(config, w.source.clone(), w.interner.clone());
        for (k, sub) in w.subs.iter().enumerate() {
            let tolerance = tolerance_cycle(k);
            single.subscribe_with_tolerance(sub.clone(), tolerance);
            pipelined.subscribe_with_tolerance(sub.clone(), tolerance);
            barrier.subscribe_with_tolerance(sub.clone(), tolerance);
        }
        let want: Vec<PublishResult> = batch.iter().map(|e| single.publish_detailed(e)).collect();
        // Barrier: prepare the whole batch, then match it.
        let prepared = barrier.frontend().prepare_batch(&batch);
        let from_barrier = barrier.publish_prepared_batch(&prepared);
        // Pipeline: stage 1 of chunk k+1 overlaps stage 2 of chunk k.
        let from_pipeline = pipelined.publish_batch_detailed(&batch);
        assert_eq!(from_pipeline.len(), want.len());
        for (k, (got, reference)) in from_pipeline.iter().zip(&want).enumerate() {
            assert_eq!(got.matches, reference.matches, "event #{k} diverged from single");
            assert_eq!(got.derived_events, reference.derived_events, "event #{k}");
            assert_eq!(got.closure_pairs, reference.closure_pairs, "event #{k}");
            assert_eq!(got.truncated, reference.truncated, "event #{k}");
        }
        for (k, (got, reference)) in from_pipeline.iter().zip(&from_barrier).enumerate() {
            assert_eq!(got.matches, reference.matches, "event #{k}: pipeline vs barrier");
        }
        assert_eq!(pipelined.stats(), single.stats(), "pipelined stats");
        assert_eq!(barrier.stats(), single.stats(), "barrier stats");
    }

    /// Control ops bump the set's control epoch consecutively and stamp
    /// publish results with the epoch they matched under; the sharded
    /// front end carries the set's staleness tag.
    #[test]
    fn epochs_are_consecutive_and_stamped() {
        let w = world();
        let sharded = ShardedSToPSS::new(
            Config::default().with_shards(4),
            w.source.clone(),
            w.interner.clone(),
        );
        assert_eq!(sharded.control_epoch(), 0);
        assert_eq!(sharded.subscribe(w.subs[0].clone()), 1);
        assert_eq!(sharded.subscribe(w.subs[1].clone()), 2);
        assert_eq!(sharded.unsubscribe(w.subs[1].id()), Some(3));
        assert_eq!(sharded.unsubscribe(w.subs[1].id()), None);
        assert_eq!(sharded.control_epoch(), 3);
        assert_eq!(sharded.frontend_epoch(), 0, "subscription churn keeps artifacts valid");
        let result = sharded.publish_detailed(&w.events[0]);
        assert_eq!(result.epoch, 3);
        assert_eq!(sharded.set_stages(StageMask::syntactic()), 4);
        assert_eq!(sharded.frontend_epoch(), 1);
        assert_eq!(sharded.frontend().epoch(), 1);
        // A stale artifact is refused atomically.
        let frontend = sharded.frontend();
        let prepared = frontend.prepare_batch(&w.events);
        assert!(sharded.try_publish_prepared_batch(&prepared, frontend.epoch()).is_some());
        sharded.reconfigure(Config::default().with_shards(4));
        assert!(sharded.try_publish_prepared_batch(&prepared, frontend.epoch()).is_none());
    }

    /// Mixed tolerances for the pipeline tests: verify-needing and
    /// default subscribers interleaved.
    fn tolerance_cycle(k: usize) -> Tolerance {
        match k % 3 {
            0 => Tolerance::full(),
            1 => Tolerance::bounded(1),
            _ => Tolerance::stages(StageMask::SYNONYM),
        }
    }
}
